"""Ablation — attacker strategies against full MOAS detection.

The paper analyses three attacker counter-moves (§4.1, §4.3): forging a
superset list, copying the genuine list, and manipulating the AS path
while keeping the correct origin.  This bench quantifies each strategy's
success against full deployment on the 46-AS topology, confirming the
paper's claims: list forgeries are caught; path spoofing is the scheme's
acknowledged blind spot.

For path spoofing the poisoned-AS metric is computed from the forwarding
next hop (the route claims the genuine origin, so the origin-based metric
would read zero even though traffic flows to the attacker).
"""

from conftest import TOPOLOGY_SEED, emit

from repro.attack.models import (
    ExactListForgery,
    NaiveFalseOrigin,
    PathSpoofing,
    SubPrefixHijack,
    SupersetListForgery,
)
from repro.bgp.forwarding import DeliveryOutcome, delivery_census
from repro.attack.placement import place_attackers, place_origins
from repro.core.moas_list import MoasList, extract_moas_list
from repro.eventsim.rng import RandomStreams
from repro.experiments.runner import (
    DeploymentKind,
    HijackScenario,
    run_hijack_scenario,
    TARGET_PREFIX,
)

N_RUNS = 10
ATTACKER_FRACTION = 0.10


def run_strategy_matrix(graph, seed=TOPOLOGY_SEED):
    strategies = [
        NaiveFalseOrigin(),
        SupersetListForgery(),
        ExactListForgery(),
        PathSpoofing(),
    ]
    streams = RandomStreams(seed)
    n_attackers = max(1, round(ATTACKER_FRACTION * len(graph)))
    results = {s.name: [] for s in strategies}
    for run_index in range(N_RUNS):
        origins = place_origins(graph, 1, streams.stream(f"o/{run_index}"))
        attackers = place_attackers(
            graph, n_attackers, streams.stream(f"a/{run_index}"), exclude=origins
        )
        for strategy in strategies:
            outcome = run_hijack_scenario(
                HijackScenario(
                    graph=graph,
                    origins=origins,
                    attackers=attackers,
                    deployment=DeploymentKind.FULL,
                    strategy=strategy,
                    seed=seed + run_index,
                )
            )
            results[strategy.name].append(outcome.poisoned_fraction)
    return {name: sum(vals) / len(vals) for name, vals in results.items()}


def measure_path_spoofing_hijack(graph, seed=TOPOLOGY_SEED):
    """Fraction of ASes whose forwarding next hop leads to an attacker
    under path spoofing (origin looks genuine, so count by peer)."""
    streams = RandomStreams(seed)
    n_attackers = max(1, round(ATTACKER_FRACTION * len(graph)))
    fractions = []
    for run_index in range(N_RUNS):
        origins = place_origins(graph, 1, streams.stream(f"o/{run_index}"))
        attackers = set(
            place_attackers(
                graph, n_attackers, streams.stream(f"a/{run_index}"),
                exclude=origins,
            )
        )
        # Re-run one scenario and inspect next hops.
        from repro.bgp.network import Network
        from repro.core.deployment import DeploymentPlan
        from repro.core.origin_verification import (
            GroundTruthOracle,
            PrefixOriginRegistry,
        )

        registry = PrefixOriginRegistry()
        registry.register(TARGET_PREFIX, origins)
        net = Network(graph, seed=seed + run_index)
        DeploymentPlan.full(graph.asns()).apply(net, GroundTruthOracle(registry))
        net.establish_sessions()
        for origin in origins:
            net.originate(origin, TARGET_PREFIX)
        for attacker in sorted(attackers):
            PathSpoofing().launch(net, attacker, TARGET_PREFIX, frozenset(origins))
        net.run_to_convergence()
        poisoned = 0
        remaining = 0
        for asn, speaker in net.speakers.items():
            if asn in attackers:
                continue
            remaining += 1
            best = speaker.best_route(TARGET_PREFIX)
            if best is not None and best.peer in attackers:
                poisoned += 1
        fractions.append(poisoned / remaining)
    return sum(fractions) / len(fractions)


def measure_subprefix_hijack(graph, seed=TOPOLOGY_SEED):
    """Data-plane capture of the hijacked /24 under a sub-prefix attack
    with full MOAS deployment (which cannot see it at all)."""
    from repro.bgp.network import Network
    from repro.core.deployment import DeploymentPlan
    from repro.core.origin_verification import (
        GroundTruthOracle,
        PrefixOriginRegistry,
    )

    streams = RandomStreams(seed)
    # A single attacker suffices: the more-specific wins everywhere by
    # longest match, and one announcer means not even attacker-vs-attacker
    # MOAS noise arises — total silence.
    n_attackers = 1
    strategy = SubPrefixHijack(specific_length=26)
    fractions = []
    alarms_total = 0
    for run_index in range(N_RUNS):
        origins = place_origins(graph, 1, streams.stream(f"o/{run_index}"))
        attackers = place_attackers(
            graph, n_attackers, streams.stream(f"a/{run_index}"),
            exclude=origins,
        )
        registry = PrefixOriginRegistry()
        registry.register(TARGET_PREFIX, origins)
        net = Network(graph, seed=seed + run_index)
        checkers = DeploymentPlan.full(graph.asns()).apply(
            net, GroundTruthOracle(registry)
        )
        net.establish_sessions()
        for origin in origins:
            net.originate(origin, TARGET_PREFIX)
        specific = strategy.more_specific_of(TARGET_PREFIX)
        for attacker in sorted(attackers):
            strategy.launch(net, attacker, TARGET_PREFIX, frozenset(origins))
        net.run_to_convergence()
        census = delivery_census(
            net, specific, legitimate_origins=origins, exclude=attackers
        )
        remaining = len(graph) - len(attackers)
        fractions.append(len(census[DeliveryOutcome.HIJACKED]) / remaining)
        alarms_total += sum(len(c.alarms) for c in checkers.values())
    return sum(fractions) / len(fractions), alarms_total


def test_bench_ablation_strategies(benchmark, paper_topologies, results_dir):
    graph = paper_topologies[46]
    means = benchmark.pedantic(
        run_strategy_matrix, args=(graph,), rounds=1, iterations=1
    )
    spoof_hijack = measure_path_spoofing_hijack(graph)
    subprefix_hijack, subprefix_alarms = measure_subprefix_hijack(graph)

    lines = [
        "Ablation — attacker strategies vs full MOAS detection "
        f"(46-AS, {ATTACKER_FRACTION:.0%} attackers, {N_RUNS} runs)",
        f"{'strategy':28s} {'poisoned (origin metric)':>26s}",
    ]
    for name, value in means.items():
        lines.append(f"{name:28s} {value * 100:>25.2f}%")
    lines.append("")
    lines.append(
        f"path-spoofing, next-hop metric: {spoof_hijack * 100:.2f}% "
        "(the scheme cannot see this attack — §4.3)"
    )
    lines.append(
        f"sub-prefix hijack, data-plane capture of the more-specific: "
        f"{subprefix_hijack * 100:.2f}% with {subprefix_alarms} alarms "
        "(no MOAS conflict exists — §4.3)"
    )
    emit(results_dir, "ablation_strategies", "\n".join(lines))

    # List forgeries are contained to low single digits...
    assert means["naive-false-origin"] < 0.10
    assert means["superset-list-forgery"] < 0.10
    assert means["exact-list-forgery"] < 0.10
    # ...while path spoofing sails through detection unnoticed.
    assert spoof_hijack > means["naive-false-origin"]
    # The sub-prefix hijack captures its more-specific nearly everywhere.
    assert subprefix_hijack > 0.8
    assert subprefix_alarms == 0
