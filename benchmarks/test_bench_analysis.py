"""Analytic validation — disjoint paths predict the detection residual.

The paper's §6 open question ("we are currently seeking a formal
validation proof of this phenomenon") answered empirically: the Menger
disjoint-path estimate of announcement blocking tracks the simulated
detection-arm residual across attacker densities and topology sizes, and
explains *why* larger samples are more robust (higher min-cuts, shorter
paths).
"""

from conftest import TOPOLOGY_SEED, emit

from repro.analysis import predicted_cutoff, profile_topology
from repro.attack.placement import place_attackers, place_origins
from repro.eventsim.rng import RandomStreams
from repro.experiments.runner import (
    DeploymentKind,
    HijackScenario,
    run_hijack_scenario,
)

FRACTIONS = (0.10, 0.20, 0.30)
N_RUNS = 10


def measure_and_predict(graphs, seed=TOPOLOGY_SEED):
    streams = RandomStreams(seed)
    rows = []
    for size, graph in sorted(graphs.items()):
        mean_cut = sum(
            p.min_cut
            for p in profile_topology(graph, graph.stub_asns()[0]).values()
        ) / (len(graph) - 1)
        for fraction in FRACTIONS:
            simulated = []
            predicted = []
            n_attackers = max(1, round(fraction * len(graph)))
            for run_index in range(N_RUNS):
                tag = f"{size}/{fraction}/{run_index}"
                origins = place_origins(graph, 1, streams.stream(f"o/{tag}"))
                attackers = place_attackers(
                    graph, n_attackers, streams.stream(f"a/{tag}"),
                    exclude=origins,
                )
                outcome = run_hijack_scenario(
                    HijackScenario(
                        graph=graph, origins=origins, attackers=attackers,
                        deployment=DeploymentKind.FULL, seed=seed + run_index,
                    )
                )
                simulated.append(outcome.poisoned_fraction)
                predicted.append(predicted_cutoff(graph, origins[0], fraction))
            rows.append(
                (
                    size,
                    mean_cut,
                    fraction,
                    sum(predicted) / len(predicted),
                    sum(simulated) / len(simulated),
                )
            )
    return rows


def test_bench_analysis(benchmark, paper_topologies, results_dir):
    graphs = {25: paper_topologies[25], 63: paper_topologies[63]}
    rows = benchmark.pedantic(
        measure_and_predict, args=(graphs,), rounds=1, iterations=1
    )

    lines = [
        "Analytic validation — Menger disjoint-path prediction vs "
        "simulated detection residual",
        f"{'size':>6s} {'mean min-cut':>13s} {'attackers':>10s} "
        f"{'predicted cutoff':>17s} {'simulated residual':>19s}",
    ]
    for size, mean_cut, fraction, predicted, simulated in rows:
        lines.append(
            f"{size:>6d} {mean_cut:>13.2f} {fraction:>9.0%} "
            f"{predicted:>16.1%} {simulated:>18.1%}"
        )
    emit(results_dir, "analysis", "\n".join(lines))

    by_key = {(size, f): (pred, sim) for size, _, f, pred, sim in rows}
    for fraction in FRACTIONS:
        pred_small, sim_small = by_key[(25, fraction)]
        pred_large, sim_large = by_key[(63, fraction)]
        # The analytic estimate orders the topologies the same way the
        # simulation does: richer sample -> lower cutoff and residual.
        assert pred_large < pred_small
        assert sim_large <= sim_small + 0.02
    # Within each size, both grow with attacker density.
    for size in (25, 63):
        predictions = [by_key[(size, f)][0] for f in FRACTIONS]
        assert predictions == sorted(predictions)
    # The prediction is an upper-bound-flavoured estimate: the simulated
    # residual should not exceed it wildly (factor-2 headroom allowed for
    # the single-visible-attacker-origin subtlety).
    for (size, fraction), (pred, sim) in by_key.items():
        assert sim <= 2 * pred + 0.05