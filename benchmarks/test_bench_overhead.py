"""§4.3 — MOAS list overhead accounting.

Paper reference values: fewer than 3,000 routes originate from multiple
ASes; ~99 % of MOAS cases involve three or fewer origin ASes (96.14 % two,
2.7 % three), so the attached MOAS list stays short and routes from a
single AS carry no list at all.
"""

import random

from conftest import emit

from repro.core.moas_list import MoasList
from repro.measurement.stats import moas_list_overhead_bytes
from repro.measurement.trace import TraceConfig, TraceGenerator


def build_final_day_table():
    """The last day of the calibrated trace, background included — a
    full-table snapshot like the one the paper sizes its overhead on."""
    config = TraceConfig(include_background=True)
    generator = TraceGenerator(config, random.Random(42))
    snapshot = None
    for _, snapshot in generator.snapshots():
        pass
    return snapshot


def test_bench_overhead(benchmark, results_dir):
    snapshot = benchmark.pedantic(build_final_day_table, rounds=1, iterations=1)

    moas = {p: o for p, o in snapshot.items() if len(o) > 1}
    total_routes = len(snapshot)
    by_size = {}
    for origins in moas.values():
        by_size[len(origins)] = by_size.get(len(origins), 0) + 1
    at_most_three = sum(v for k, v in by_size.items() if k <= 3) / len(moas)
    overhead = moas_list_overhead_bytes(snapshot)

    lines = [
        "§4.3 — MOAS list overhead (paper vs measured)",
        f"{'metric':44s} {'paper':>9s} {'measured':>10s}",
        f"{'prefixes in table':44s} {'~100k':>9s} {total_routes:>10d}",
        f"{'multi-origin routes':44s} {'<3000':>9s} {len(moas):>10d}",
        f"{'MOAS cases with <=3 origins':44s} {'~99%':>9s} "
        f"{at_most_three * 100:>9.1f}%",
        f"{'total community bytes added':44s} {'':>9s} {overhead:>10d}",
        f"{'bytes per MOAS route (mean)':44s} {'8-12':>9s} "
        f"{overhead / len(moas):>10.1f}",
        f"{'bytes for single-origin routes':44s} {'0':>9s} "
        f"{moas_list_overhead_bytes({p: o for p, o in snapshot.items() if len(o) == 1}):>10d}",
    ]
    emit(results_dir, "overhead", "\n".join(lines))

    assert len(moas) < 3000
    # The paper's ~99% figure is measured over all observed cases (fault
    # bursts included, which are all two-origin); a single organic-day
    # snapshot sits slightly lower.
    assert at_most_three > 0.95
    # Single-origin routes attach nothing.
    singles = {p: o for p, o in snapshot.items() if len(o) == 1}
    assert moas_list_overhead_bytes(singles) == 0
