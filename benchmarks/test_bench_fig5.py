"""Figure 5 — histogram of MOAS case durations.

Paper reference values: most cases are short-lived; 1373 cases (35.9 % of
the total) lasted exactly one day, 82.7 % of those attributable to the
April 7 1998 fault; a small number of valid multi-homing cases last for
hundreds of days.
"""

from conftest import emit

from repro.experiments.ascii_chart import render_histogram
from repro.experiments.measurement_repro import run_measurement_study


def test_bench_figure5(benchmark, results_dir):
    study = benchmark.pedantic(run_measurement_study, rounds=1, iterations=1)
    tracker = study.tracker

    bins = tracker.binned_histogram([1, 2, 5, 10, 30, 100, 300])
    one_day = tracker.one_day_fraction()
    lines = [
        "Figure 5 — MOAS duration histogram (paper vs measured)",
        f"{'metric':38s} {'paper':>10s} {'measured':>10s}",
        f"{'total MOAS cases':38s} {'~3824':>10s} {tracker.total_cases():>10d}",
        f"{'one-day cases':38s} {'35.9%':>10s} {one_day * 100:>9.1f}%",
        "",
        render_histogram(
            bins, title="Figure 5 (rendered) — duration (days) vs cases:"
        ),
    ]
    emit(results_dir, "figure5", "\n".join(lines))

    # Shape: one-day cases dominate the short end; a long tail exists.
    histogram = tracker.histogram()
    assert one_day == max(
        count / tracker.total_cases() for count in histogram.values()
    )
    assert max(histogram) > 300  # persistent multi-homing cases
    assert abs(one_day - 0.359) < 0.08
