"""Substrate validation — the MRAI convergence trade-off.

Not a figure from the paper, but the property that makes the BGP substrate
credible: RFC 4271's MinRouteAdvertisementInterval trades convergence time
for message count, most visibly during withdrawal path-exploration.  The
paper's simulator (SSFnet) implements the same machinery.
"""

from conftest import emit

from repro.experiments.convergence import (
    measure_announcement_convergence,
    measure_withdrawal_convergence,
)

MRAI_GRID = (0.0, 5.0, 15.0, 30.0)


def run_grid(graph):
    rows = []
    for mrai in MRAI_GRID:
        up = measure_announcement_convergence(graph, mrai=mrai)
        down = measure_withdrawal_convergence(graph, mrai=mrai)
        rows.append((mrai, up, down))
    return rows


def test_bench_convergence(benchmark, paper_topologies, results_dir):
    graph = paper_topologies[46]
    rows = benchmark.pedantic(run_grid, args=(graph,), rounds=1, iterations=1)

    lines = [
        "MRAI convergence trade-off (46-AS topology, one prefix)",
        f"{'MRAI':>6s} {'announce t':>11s} {'announce msgs':>14s} "
        f"{'withdraw t':>11s} {'withdraw msgs':>14s}",
    ]
    for mrai, up, down in rows:
        lines.append(
            f"{mrai:>5.0f}s {up.converged_at:>10.2f}s {up.updates_sent:>14d} "
            f"{down.converged_at:>10.2f}s {down.updates_sent:>14d}"
        )
    emit(results_dir, "convergence", "\n".join(lines))

    no_mrai = rows[0]
    max_mrai = rows[-1]
    # Pacing cuts messages (or at worst matches) and slows convergence.
    assert max_mrai[2].updates_sent <= no_mrai[2].updates_sent
    assert max_mrai[2].converged_at >= no_mrai[2].converged_at
    # The final state is identical regardless of pacing.
    for _, up, down in rows:
        assert up.ases_with_route == len(graph)
        assert down.ases_with_route == 0
