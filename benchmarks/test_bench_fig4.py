"""Figure 4 — daily number of observed MOAS cases, 11/1997-7/2001.

Paper reference values: median 683/day in 1998 rising to 1294/day in 2001;
spikes on 4/7/1998 (AS 8584 fault) and 4/6/2001 (AS 3561/15412, 5532 of
6627 cases).
"""

from conftest import emit

from repro.experiments.ascii_chart import render_line_chart
from repro.experiments.measurement_repro import run_measurement_study
from repro.experiments.reporting import format_series_table
from repro.measurement.trace import DAY_1998_FAULT, DAY_2001_FAULT


def test_bench_figure4(benchmark, results_dir):
    study = benchmark.pedantic(run_measurement_study, rounds=1, iterations=1)
    series = study.figure4_series()
    summary = study.summary

    counts = dict(series)
    lines = [
        "Figure 4 — daily MOAS cases (paper vs measured)",
        f"{'metric':38s} {'paper':>10s} {'measured':>10s}",
        f"{'days observed':38s} {'1279':>10s} {summary.days_observed:>10d}",
        f"{'median daily count, 1998':38s} {'683':>10s} "
        f"{summary.median_daily_first_year:>10.0f}",
        f"{'median daily count, 2001':38s} {'1294':>10s} "
        f"{summary.median_daily_last_year:>10.0f}",
        f"{'count on 1998-04-07 fault day':38s} {'(spike)':>10s} "
        f"{counts[DAY_1998_FAULT]:>10d}",
        f"{'count on 2001-04-06 fault day':38s} {'6627':>10s} "
        f"{counts[DAY_2001_FAULT]:>10d}",
        "",
        format_series_table(
            series, headers=("day", "MOAS cases"),
            title="series (downsampled):", max_rows=26,
        ),
        "",
        render_line_chart(
            {"daily MOAS cases": series},
            title="Figure 4 (rendered):",
            x_label="day since 11/8/1997",
            y_label="# of MOAS cases",
        ),
    ]
    emit(results_dir, "figure4", "\n".join(lines))

    # Shape assertions: growth and the two spikes.
    assert summary.median_daily_last_year > summary.median_daily_first_year
    assert counts[DAY_2001_FAULT] > 4 * summary.median_daily_last_year
    assert counts[DAY_1998_FAULT] > 2 * summary.median_daily_first_year
