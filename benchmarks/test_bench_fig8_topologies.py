"""Figure 8 — the simulation topologies.

The paper samples 25-, 46- and 63-AS topologies from the RouteViews-
inferred AS graph (Figure 8 draws the 25- and 63-AS ones).  This bench
regenerates all three via the same sampling procedure over the synthetic
Internet graph and reports their structure.
"""

from conftest import TOPOLOGY_SEED, emit

from repro.topology.generators import generate_paper_topology


def test_bench_figure8(benchmark, results_dir):
    def build_all():
        return {
            size: generate_paper_topology(size, seed=TOPOLOGY_SEED)
            for size in (25, 46, 63)
        }

    graphs = benchmark.pedantic(build_all, rounds=1, iterations=1)

    lines = [
        "Figure 8 — simulation topologies (paper samples vs regenerated)",
        f"{'size':>6s} {'links':>6s} {'transit':>8s} {'stubs':>6s} "
        f"{'avg deg':>8s} {'connected':>10s}",
    ]
    for size, graph in sorted(graphs.items()):
        lines.append(
            f"{size:>6d} {graph.num_links():>6d} "
            f"{len(graph.transit_asns()):>8d} {len(graph.stub_asns()):>6d} "
            f"{graph.average_degree():>8.2f} {str(graph.is_connected()):>10s}"
        )
    emit(results_dir, "figure8", "\n".join(lines))

    for size, graph in graphs.items():
        assert len(graph) == size
        assert graph.is_connected()
        # The paper's pruning invariant.
        assert all(graph.degree(a) >= 2 for a in graph.transit_asns())
    # Figure 8 character: the 63-AS sample is richer than the 25-AS one.
    assert graphs[63].average_degree() > graphs[25].average_degree()
