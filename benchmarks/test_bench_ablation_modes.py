"""Ablation — design choices of the detection pipeline.

DESIGN.md §4 calls out two choices this bench quantifies:

1. **Suppression vs alarm-only** — the paper's experiments assume a
   detecting node stops the false route; alarm-only checking (the §4.2
   off-line deployment) detects the same conflicts but leaves adoption at
   Normal-BGP levels.
2. **Attack timing** — the figures race valid and false announcements
   from a cold start; hijacking an already-converged prefix is strictly
   easier to defend because every router already holds the genuine list.
"""

from conftest import TOPOLOGY_SEED, emit

from repro.attack.placement import place_attackers, place_origins
from repro.core.checker import CheckerMode
from repro.eventsim.rng import RandomStreams
from repro.experiments.runner import (
    AttackTiming,
    DeploymentKind,
    HijackScenario,
    run_hijack_scenario,
)

N_RUNS = 10
ATTACKER_FRACTION = 0.20

ARMS = {
    "normal BGP": dict(deployment=DeploymentKind.NONE),
    "alarm-only checking": dict(
        deployment=DeploymentKind.FULL, checker_mode=CheckerMode.ALARM_ONLY
    ),
    "detect-and-suppress": dict(deployment=DeploymentKind.FULL),
    "suppress, post-convergence attack": dict(
        deployment=DeploymentKind.FULL, timing=AttackTiming.POST_CONVERGENCE
    ),
}


def run_matrix(graph, seed=TOPOLOGY_SEED):
    streams = RandomStreams(seed)
    n_attackers = max(1, round(ATTACKER_FRACTION * len(graph)))
    out = {}
    for name, overrides in ARMS.items():
        poisoned, alarms = [], []
        for run_index in range(N_RUNS):
            origins = place_origins(graph, 1, streams.stream(f"o/{name}/{run_index}"))
            attackers = place_attackers(
                graph, n_attackers,
                streams.stream(f"a/{name}/{run_index}"), exclude=origins,
            )
            outcome = run_hijack_scenario(
                HijackScenario(
                    graph=graph, origins=origins, attackers=attackers,
                    seed=seed + run_index, **overrides,
                )
            )
            poisoned.append(outcome.poisoned_fraction)
            alarms.append(outcome.alarms)
        out[name] = (
            sum(poisoned) / len(poisoned),
            sum(alarms) / len(alarms),
        )
    return out


def test_bench_ablation_modes(benchmark, paper_topologies, results_dir):
    graph = paper_topologies[46]
    matrix = benchmark.pedantic(run_matrix, args=(graph,), rounds=1, iterations=1)

    lines = [
        "Ablation — detection pipeline design choices "
        f"(46-AS, {ATTACKER_FRACTION:.0%} attackers, {N_RUNS} runs)",
        f"{'arm':38s} {'poisoned':>10s} {'alarms/run':>12s}",
    ]
    for name, (poisoned, alarms) in matrix.items():
        lines.append(f"{name:38s} {poisoned * 100:>9.2f}% {alarms:>12.1f}")
    emit(results_dir, "ablation_modes", "\n".join(lines))

    # Alarm-only detects (alarms fire) but does not protect.
    assert matrix["alarm-only checking"][1] > 0
    assert (
        matrix["alarm-only checking"][0]
        > 3 * matrix["detect-and-suppress"][0]
    )
    # Suppression is what delivers the figure-9 gap.
    assert matrix["detect-and-suppress"][0] < matrix["normal BGP"][0] / 3
    # Post-convergence hijack is the easier case.
    assert (
        matrix["suppress, post-convergence attack"][0]
        <= matrix["detect-and-suppress"][0]
    )
