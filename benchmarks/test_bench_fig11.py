"""Figure 11 — Experiment 3: partial deployment of MOAS checking.

Paper reference: with 50 % of nodes MOAS-capable, the capable nodes stop
false routes from propagating through them, protecting others too — in
the 63-AS topology partial deployment cuts the share of poisoned ASes by
more than 63 % in the presence of 30 % attackers; larger topologies do
better under partial deployment.
"""

from conftest import TOPOLOGY_SEED, emit

from repro.experiments.exp_partial import figure11
from repro.experiments.reporting import format_sweep_table

FRACTIONS = (0.05, 0.10, 0.20, 0.30, 0.40)


def test_bench_figure11(benchmark, paper_topologies, results_dir):
    result = benchmark.pedantic(
        figure11,
        kwargs=dict(
            sizes=(46, 63),
            attacker_fractions=FRACTIONS,
            seed=TOPOLOGY_SEED,
            graphs=paper_topologies,
        ),
        rounds=1,
        iterations=1,
    )

    sections = ["Figure 11 — Experiment 3: partial (50%) deployment"]
    for size, curves in sorted(result.panels.items()):
        reduction = result.reduction_from_partial(size, 0.30) * 100
        sections.append(
            format_sweep_table(
                curves,
                title=f"(panel {'a' if size == 46 else 'b'}) {size}-AS "
                f"topology; measured reduction from partial deployment at "
                f"30% attackers: {reduction:.0f}% (paper: >63% for 63-AS)",
            )
        )
    emit(results_dir, "figure11", "\n\n".join(sections))

    for size, (normal, partial, full) in result.panels.items():
        for n_pt, p_pt, f_pt in zip(normal.points, partial.points, full.points):
            # Partial deployment sits between the two extremes.
            assert f_pt.mean_poisoned_fraction <= p_pt.mean_poisoned_fraction
            assert p_pt.mean_poisoned_fraction <= n_pt.mean_poisoned_fraction
        # Partial deployment provides a substantial (>25 %) reduction.
        assert result.reduction_from_partial(size, 0.30) > 0.25
