"""Micro-benchmarks for the simulator's hot paths.

These are conventional pytest-benchmark timings (many rounds) for the
operations every experiment run executes millions of times: best-path
selection, MOAS-list checking, prefix algebra and event-queue churn.
"""

import random

from repro.bgp.attributes import AsPath, PathAttributes
from repro.bgp.decision import DecisionProcess
from repro.bgp.rib import RibEntry
from repro.core.moas_list import MoasList, extract_moas_list, moas_communities
from repro.eventsim.event import Event
from repro.eventsim.queue import EventQueue
from repro.net.addresses import Prefix

P = Prefix.parse("10.0.0.0/16")


def test_bench_decision_process(benchmark):
    rng = random.Random(0)
    candidates = [
        RibEntry(
            P,
            PathAttributes(
                as_path=AsPath.from_asns(
                    [100 + i] + [rng.randint(1, 500) for _ in range(rng.randint(1, 5))]
                )
            ),
            peer=100 + i,
            installed_at=float(i),
            installed_seq=i,
        )
        for i in range(16)
    ]
    dp = DecisionProcess()
    best = benchmark(dp.select_best, candidates)
    assert best is not None


def test_bench_moas_consistency_check(benchmark):
    genuine = MoasList([1, 2])
    observed = [MoasList([1, 2]), MoasList([2, 1]), MoasList([1, 2, 3])]

    def check():
        return [genuine.consistent_with(other) for other in observed]

    results = benchmark(check)
    assert results == [True, True, False]


def test_bench_moas_list_extraction(benchmark):
    attrs = PathAttributes(
        as_path=AsPath.from_asns([7, 8]),
        communities=moas_communities([1, 2, 3]),
    )
    extracted = benchmark(extract_moas_list, attrs)
    assert extracted == MoasList([1, 2, 3])


def test_bench_prefix_parse(benchmark):
    parsed = benchmark(Prefix.parse, "192.168.100.0/24")
    assert parsed.length == 24


def test_bench_prefix_containment(benchmark):
    parent = Prefix.parse("10.0.0.0/8")
    children = [Prefix((10 << 24) | (i << 8), 24) for i in range(256)]

    def contain_all():
        return sum(1 for c in children if parent.contains(c))

    assert benchmark(contain_all) == 256


def test_bench_event_queue_churn(benchmark):
    def churn():
        queue = EventQueue()
        for i in range(1000):
            queue.push(Event((i * 7919) % 1000 / 10.0, lambda: None))
        count = 0
        while queue.pop() is not None:
            count += 1
        return count

    assert benchmark(churn) == 1000


def test_bench_as_path_prepend(benchmark):
    path = AsPath.from_asns([2, 3, 4, 5])
    out = benchmark(path.prepend, 1)
    assert out.length == 5
