"""Query subsystem benchmark — indexing overhead and point-query rate.

Two measurements back the looking-glass design:

1. **Index-build overhead**: the checkpointed stream service over a
   120-day refresh-mode feed with and without ``--index``.  Maintaining
   the per-prefix index at checkpoint boundaries must cost under the
   budget (``REPRO_BENCH_QUERY_OVERHEAD_BUDGET``, default 15% for noisy
   CI boxes; the on-box target is <10% of ingest).
2. **Warm point-query throughput**: ``prefix_report`` against a loaded
   :class:`QueryIndex` across every indexed prefix, in queries/sec.  The
   floor (``REPRO_BENCH_QUERY_QPS_FLOOR``, default 10 000/sec) is
   asserted unconditionally — answers come from in-memory folded state,
   so even a single-core box clears it by orders of magnitude.

Results land in ``benchmarks/results/BENCH_query.json``.
"""

from __future__ import annotations

import itertools
import json
import os
import random
import time

from conftest import emit

from repro.measurement.trace import FaultSpike, TraceConfig, TraceGenerator
from repro.query import QueryIndex
from repro.query.model import prefix_report
from repro.stream.feed import FeedWriter, snapshot_deltas
from repro.stream.service import StreamService

BENCH_CONFIG = TraceConfig(
    days=120,
    faults=(FaultSpike(day=60, faulty_as=8584, n_prefixes=300),),
    n_background_prefixes=500,
    include_background=True,
)
BENCH_SEED = 11

OVERHEAD_BUDGET_ENV = "REPRO_BENCH_QUERY_OVERHEAD_BUDGET"
QPS_FLOOR_ENV = "REPRO_BENCH_QUERY_QPS_FLOOR"


def _write_feed(path):
    generator = TraceGenerator(BENCH_CONFIG, random.Random(BENCH_SEED))
    with FeedWriter(path) as writer:
        return writer.write_all(
            snapshot_deltas(generator.snapshots(), refresh=True)
        )


def _run_service(feed, out_dir, tag, index=None):
    service = StreamService(
        feed,
        out_dir / f"alarms_{tag}.jsonl",
        out_dir / f"cp_{tag}.json",
        checkpoint_every=2000,
        full_every=32,
        batch_size=1024,
        index=index,
    )
    started = time.perf_counter()
    summary = service.run()
    return time.perf_counter() - started, summary


def test_bench_query(results_dir, tmp_path):
    feed = tmp_path / "feed.jsonl"
    records = _write_feed(feed)

    # Warm the page cache, then best-of-three for each variant.
    _run_service(feed, tmp_path, "warm")
    plain_secs, plain = min(
        (_run_service(feed, tmp_path, f"plain{i}") for i in range(3)),
        key=lambda pair: pair[0],
    )
    indexed_secs, indexed = min(
        (
            _run_service(
                feed, tmp_path, f"idx{i}", index=tmp_path / f"idx{i}"
            )
            for i in range(3)
        ),
        key=lambda pair: pair[0],
    )
    assert plain.records == indexed.records == records
    assert plain.alarms_emitted == indexed.alarms_emitted > 0

    plain_rate = records / plain_secs if plain_secs > 0 else 0.0
    indexed_rate = records / indexed_secs if indexed_secs > 0 else 0.0
    overhead_pct = (
        (plain_rate / indexed_rate - 1.0) * 100.0 if indexed_rate > 0 else 0.0
    )

    # Warm point queries: cycle through every indexed prefix.
    index = QueryIndex(tmp_path / "idx0")
    state = index.state
    prefixes = sorted(state.prefixes)
    assert prefixes
    pool = list(itertools.islice(itertools.cycle(prefixes), 20_000))
    for prefix in pool[:100]:  # warm-up
        prefix_report(state, prefix)
    started = time.perf_counter()
    for prefix in pool:
        prefix_report(state, prefix)
    query_secs = time.perf_counter() - started
    qps = len(pool) / query_secs if query_secs > 0 else 0.0

    cores = os.cpu_count() or 1
    record = {
        "days": BENCH_CONFIG.days,
        "feed_records": records,
        "alarms_emitted": plain.alarms_emitted,
        "cores": cores,
        "ingest_plain": {
            "wall_seconds": round(plain_secs, 3),
            "updates_per_sec": round(plain_rate, 1),
        },
        "ingest_indexed": {
            "checkpoint_every": 2000,
            "segments": index.generation,
            "wall_seconds": round(indexed_secs, 3),
            "updates_per_sec": round(indexed_rate, 1),
            "overhead_pct": round(overhead_pct, 1),
        },
        "point_queries": {
            "indexed_prefixes": len(prefixes),
            "queries": len(pool),
            "wall_seconds": round(query_secs, 3),
            "queries_per_sec": round(qps, 1),
        },
    }
    (results_dir / "BENCH_query.json").write_text(
        json.dumps(record, indent=2) + "\n"
    )

    lines = [
        "Query index: build overhead and warm point-query rate",
        f"  feed records: {records:,}   alarms: {plain.alarms_emitted}"
        f"   cores: {cores}",
        f"  ingest plain   {plain_secs:7.2f} s   {plain_rate:,.0f} updates/sec",
        f"  ingest +index  {indexed_secs:7.2f} s   {indexed_rate:,.0f} "
        f"updates/sec (overhead {overhead_pct:+.1f}%)",
        f"  point queries  {query_secs:7.2f} s   {qps:,.0f} queries/sec "
        f"over {len(prefixes)} prefixes",
    ]
    emit(results_dir, "BENCH_query", "\n".join(lines))

    budget = float(os.environ.get(OVERHEAD_BUDGET_ENV, "15.0"))
    assert overhead_pct <= budget, (
        f"index overhead {overhead_pct:.1f}% blew the {budget:.1f}% budget "
        f"(plain {plain_rate:,.0f}/s vs indexed {indexed_rate:,.0f}/s)"
    )
    floor = float(os.environ.get(QPS_FLOOR_ENV, "10000.0"))
    assert qps >= floor, (
        f"warm point-query rate {qps:,.0f}/s is under the {floor:,.0f}/s floor"
    )
