"""Warm-start cache benchmark — cold vs warm repeat-topology sweep.

The cache's value case: a POST_CONVERGENCE sweep re-runs the expensive
establish-and-converge baseline once per (origin set, attacker set) pair,
but the baseline depends only on the origin set — every attacker draw
reuses it.  The sweep below (2-origin sets x 12 attacker sets per fraction)
is timed cold and then with a fresh :class:`WarmStartCache`; the warm run
must produce bit-identical points and be >= 2x faster, the acceptance bar
from the issue.

Both runs are serial so the comparison isolates the cache — pool speedups
are `BENCH_parallel.json`'s business.  Results land in
``benchmarks/results/BENCH_warmstart.json``.
"""

from __future__ import annotations

import json
import time

from conftest import TOPOLOGY_SEED, emit

from repro.experiments.runner import AttackTiming, DeploymentKind
from repro.experiments.sweep import SweepConfig, run_sweep
from repro.warmstart import WarmStartCache

#: Small attacker fractions: the paper's curves start here, and with 1-2
#: attackers the pre-attack baseline dominates each run's cost — the regime
#: the cache targets.  Large fractions shift the cost into the recovery
#: convergence, which warm-starting rightly cannot skip.
FRACS = (0.02, 0.03)


def _sweep_config(graph):
    return SweepConfig(
        graph=graph,
        # Two genuine origins: a genuine-MOAS baseline is the paper's
        # multihoming case and is costlier to converge than the attack
        # phase, so it shows the cache's best-case clearly.
        n_origins=2,
        attacker_fractions=FRACS,
        deployment=DeploymentKind.FULL,
        timing=AttackTiming.POST_CONVERGENCE,
        n_origin_sets=1,
        n_attacker_sets=12,
        seed=TOPOLOGY_SEED,
    )


def _time_sweep(graph, warm_start):
    started = time.perf_counter()
    result = run_sweep(_sweep_config(graph), workers=1, warm_start=warm_start)
    return time.perf_counter() - started, result


def test_bench_warmstart(paper_topologies, results_dir):
    graph = paper_topologies[63]

    cold_secs, cold = _time_sweep(graph, warm_start=None)
    cache = WarmStartCache()
    warm_secs, warm = _time_sweep(graph, warm_start=cache)

    # The safety property is unconditional: the cache never changes points.
    assert warm.points == cold.points

    stats = cache.stats()
    lookups = int(stats["warmstart.hits"]) + int(stats["warmstart.misses"])
    hit_rate = stats["warmstart.hits"] / lookups if lookups else 0.0
    runs = sum(point.runs for point in cold.points)
    speedup = cold_secs / warm_secs if warm_secs > 0 else 0.0

    record = {
        "topology_size": len(graph),
        "timing": "post-convergence",
        "sweep_runs": runs,
        "cold_seconds": round(cold_secs, 3),
        "warm_seconds": round(warm_secs, 3),
        "speedup": round(speedup, 2),
        "points_identical": warm.points == cold.points,
        "cache": {
            "hits": stats["warmstart.hits"],
            "misses": stats["warmstart.misses"],
            "puts": stats["warmstart.puts"],
            "uncacheable": stats["warmstart.uncacheable"],
            "hit_rate": round(hit_rate, 3),
        },
        "cold_scenarios_per_sec": round(runs / cold_secs, 2),
        "warm_scenarios_per_sec": round(runs / warm_secs, 2),
    }
    (results_dir / "BENCH_warmstart.json").write_text(
        json.dumps(record, indent=2) + "\n"
    )

    lines = [
        "Warm-start cache: cold vs warm sweep "
        "(63-AS, full deployment, post-convergence)",
        f"  runs={runs}  (1 origin set x 12 attacker sets x {len(FRACS)} "
        "fractions, serial)",
        f"  cold   {cold_secs:7.2f} s   "
        f"{runs / cold_secs:6.2f} scenarios/sec",
        f"  warm   {warm_secs:7.2f} s   "
        f"{runs / warm_secs:6.2f} scenarios/sec   speedup {speedup:4.2f}x",
        f"  cache: {stats['warmstart.hits']} hits / {lookups} lookups "
        f"(hit rate {hit_rate:.0%}), {stats['warmstart.puts']} baselines "
        "captured",
        "  points bit-identical: yes",
    ]
    emit(results_dir, "BENCH_warmstart", "\n".join(lines))

    # One baseline per (fraction, origin set): everything else is a hit.
    assert hit_rate >= 0.75
    assert speedup >= 2.0, (
        f"expected >= 2x from warm-started baselines, measured {speedup:.2f}x"
    )
