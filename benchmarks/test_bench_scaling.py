"""Extension — robustness vs topology size beyond the paper's 63 ASes.

The paper conjectures (§6) that the scheme's robustness keeps improving
with network size and richness.  This bench measures the detection-arm
residual at 30 % attackers on topologies up to 150 ASes, averaged over
multiple independent samples per size.
"""

from conftest import emit

from repro.experiments.ascii_chart import render_line_chart
from repro.experiments.exp_scaling import run_scaling_experiment

SIZES = (25, 46, 63, 100, 150)


def test_bench_scaling(benchmark, results_dir):
    result = benchmark.pedantic(
        run_scaling_experiment,
        kwargs=dict(sizes=SIZES, topologies_per_size=3, runs_per_topology=6),
        rounds=1,
        iterations=1,
    )

    lines = [
        "Scaling — detection residual vs topology size "
        f"(30% attackers, 3 topologies x 6 runs per size)",
        f"{'size':>6s} {'normal BGP':>12s} {'detection':>12s} "
        f"{'protection factor':>18s}",
    ]
    for point in result.points:
        factor = point.protection_factor
        factor_text = "inf" if factor == float("inf") else f"{factor:.0f}x"
        lines.append(
            f"{point.size:>6d} {point.mean_poisoned_normal * 100:>11.1f}% "
            f"{point.mean_poisoned_detect * 100:>11.1f}% {factor_text:>18s}"
        )
    lines.append("")
    lines.append(
        render_line_chart(
            {"detection residual %": result.detection_series()},
            title="detection residual vs size:",
            x_label="topology size (ASes)",
            y_label="% poisoned",
            height=10,
        )
    )
    emit(results_dir, "scaling", "\n".join(lines))

    by_size = {p.size: p for p in result.points}
    # The paper's trend, extended: the largest topology is more robust
    # than the smallest, and detection always dominates normal BGP.
    assert (
        by_size[max(by_size)].mean_poisoned_detect
        < by_size[min(by_size)].mean_poisoned_detect
    )
    for point in result.points:
        assert point.mean_poisoned_detect < point.mean_poisoned_normal
