"""Sharded simulator benchmark — shard-count curve on scale topologies.

One hijack scenario per topology size, run serially and with 1, 2 and 4
shards.  Three things are on record:

1. **Bit-identity** (unconditional): every shard count reproduces the
   serial outcome exactly — poisoned set, alarm count, event and update
   counters.  A speedup that changes results is a correctness bug.
2. **The shard curve**: wall seconds and events/sec per shard count,
   plus the coordination costs that explain them — barrier ticks, solo
   ticks, cross-shard messages, batch sizes and barrier-stall seconds
   from :class:`repro.experiments.sharded_run.ShardStats`.
3. **Honest speedup**: on >= 4 cores the 4-shard run must clear 2x over
   serial and 2 shards must clear 1.3x; on 1-2 cores sharding *loses*
   (barrier RTTs and pickling with no parallel hardware underneath) and
   the JSON records the sub-1.0x factor rather than hiding it.

Sizes default to 1000 and 5000 ASes; override with a comma-separated
``REPRO_BENCH_SHARD_SIZES``.  Results land in
``benchmarks/results/BENCH_sharded.json``.
"""

from __future__ import annotations

import json
import os
import time

from conftest import TOPOLOGY_SEED, emit

from repro.experiments.runner import (
    DeploymentKind,
    HijackScenario,
    run_hijack_scenario,
)
from repro.experiments.sharded_run import run_sharded
from repro.topology.generators import generate_scale_topology

DEFAULT_SIZES = (1000, 5000)
SHARD_COUNTS = (1, 2, 4)


def _bench_sizes() -> tuple:
    raw = os.environ.get("REPRO_BENCH_SHARD_SIZES", "")
    if not raw.strip():
        return DEFAULT_SIZES
    return tuple(int(part) for part in raw.split(",") if part.strip())


def _scenario(size: int) -> HijackScenario:
    graph = generate_scale_topology(size, seed=TOPOLOGY_SEED)
    ases = sorted(graph.asns())
    return HijackScenario(
        graph=graph,
        origins=[ases[10]],
        attackers=[ases[40]],
        deployment=DeploymentKind.FULL,
        seed=3,
    )


def _outcome_fields(outcome) -> dict:
    return {
        "poisoned": sorted(int(asn) for asn in outcome.poisoned),
        "alarms": outcome.alarms,
        "routes_suppressed": outcome.routes_suppressed,
        "events_processed": outcome.events_processed,
        "updates_sent": outcome.updates_sent,
    }


def test_bench_sharded_curve(results_dir):
    cores = os.cpu_count() or 1
    sizes = _bench_sizes()
    lines = [
        "Sharded simulator: shard-count curve (full deployment hijack)",
        f"  cores={cores}  shard counts={list(SHARD_COUNTS)}",
    ]
    points = []
    speedups: dict = {}

    for size in sizes:
        scenario = _scenario(size)

        started = time.perf_counter()
        serial = run_hijack_scenario(scenario)
        serial_secs = time.perf_counter() - started
        reference = _outcome_fields(serial)

        curve = []
        for n_shards in SHARD_COUNTS:
            started = time.perf_counter()
            sharded = run_sharded(scenario, n_shards=n_shards)
            secs = time.perf_counter() - started

            # Identity before anything else: the curve is meaningless if
            # a shard count changes the simulation.
            assert _outcome_fields(sharded.outcome) == reference, (
                f"{size}-AS outcome diverged at {n_shards} shards"
            )

            stats = sharded.stats.to_dict()
            speedup = serial_secs / secs if secs > 0 else 0.0
            speedups[(size, n_shards)] = speedup
            curve.append(
                {
                    "shards": n_shards,
                    "wall_seconds": round(secs, 3),
                    "speedup_vs_serial": round(speedup, 2),
                    "events_per_sec": round(
                        sharded.outcome.events_processed / secs, 1
                    )
                    if secs > 0
                    else 0.0,
                    "shard_sizes": stats["shard_sizes"],
                    "cut_edges": stats["cut_edges"],
                    "total_edges": stats["total_edges"],
                    "ticks": stats["ticks"],
                    "solo_ticks": stats["solo_ticks"],
                    "cross_messages": stats["cross_messages"],
                    "cross_batches": stats["cross_batches"],
                    "max_batch_size": stats["max_batch_size"],
                    "mean_batch_size": stats["mean_batch_size"],
                    "barrier_wait_seconds": stats["barrier_wait_seconds"],
                }
            )
            lines.append(
                f"  {size:>5} AS  {n_shards} shard(s)  {secs:7.2f} s  "
                f"{speedup:4.2f}x  cut {stats['cut_edges']}/"
                f"{stats['total_edges']} edges  "
                f"{stats['cross_messages']} msgs/"
                f"{stats['cross_batches']} batches  "
                f"barrier {stats['barrier_wait_seconds']:.2f} s"
            )

        points.append(
            {
                "ases": size,
                "serial_seconds": round(serial_secs, 3),
                "serial_events_per_sec": round(
                    serial.events_processed / serial_secs, 1
                )
                if serial_secs > 0
                else 0.0,
                "outcome": reference,
                "curve": curve,
            }
        )
        lines.append(f"  {size:>5} AS  serial      {serial_secs:7.2f} s")

    record = {
        "cores": cores,
        "shard_counts": list(SHARD_COUNTS),
        "bit_identical": True,
        "points": points,
    }
    (results_dir / "BENCH_sharded.json").write_text(
        json.dumps(record, indent=2) + "\n"
    )
    emit(results_dir, "BENCH_sharded", "\n".join(lines))

    # Core-gated speedup floors, largest size only (coordination is a
    # fixed cost; the big topology is what sharding exists for).  On a
    # 1-2 core box the sub-1.0x factors above are the honest record —
    # there is no parallel hardware for the barrier protocol to buy back.
    big = max(sizes)
    if cores >= 4:
        assert speedups[(big, 4)] >= 2.0, (
            f"expected >= 2x at 4 shards on {cores} cores, "
            f"measured {speedups[(big, 4)]:.2f}x"
        )
        assert speedups[(big, 2)] >= 1.3, (
            f"expected >= 1.3x at 2 shards on {cores} cores, "
            f"measured {speedups[(big, 2)]:.2f}x"
        )
