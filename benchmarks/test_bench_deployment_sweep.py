"""Extension — the full deployment-fraction curve.

Figure 11 evaluates exactly one partial-deployment point (50 %).  This
bench sweeps the MOAS-capable fraction from 0 to 100 % on the 46-AS
topology, showing the incremental-deployment story §6 claims: every
increment of deployment buys protection, with no cliff.
"""

from conftest import TOPOLOGY_SEED, emit

from repro.attack.placement import place_attackers, place_origins
from repro.eventsim.rng import RandomStreams
from repro.experiments.ascii_chart import render_line_chart
from repro.experiments.runner import (
    DeploymentKind,
    HijackScenario,
    run_hijack_scenario,
)

FRACTIONS = (0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 1.0)
ATTACKER_FRACTION = 0.20
N_RUNS = 12


def run_curve(graph, seed=TOPOLOGY_SEED):
    streams = RandomStreams(seed)
    n_attackers = round(ATTACKER_FRACTION * len(graph))
    draws = []
    for run_index in range(N_RUNS):
        origins = place_origins(graph, 1, streams.stream(f"o/{run_index}"))
        attackers = place_attackers(
            graph, n_attackers, streams.stream(f"a/{run_index}"),
            exclude=origins,
        )
        draws.append((origins, attackers))

    curve = []
    for fraction in FRACTIONS:
        if fraction == 0.0:
            deployment = DeploymentKind.NONE
        elif fraction == 1.0:
            deployment = DeploymentKind.FULL
        else:
            deployment = DeploymentKind.PARTIAL
        values = []
        for run_index, (origins, attackers) in enumerate(draws):
            outcome = run_hijack_scenario(
                HijackScenario(
                    graph=graph,
                    origins=origins,
                    attackers=attackers,
                    deployment=deployment,
                    partial_fraction=fraction,
                    seed=seed + run_index,
                )
            )
            values.append(outcome.poisoned_fraction)
        curve.append((fraction, sum(values) / len(values)))
    return curve


def test_bench_deployment_sweep(benchmark, paper_topologies, results_dir):
    graph = paper_topologies[46]
    curve = benchmark.pedantic(run_curve, args=(graph,), rounds=1, iterations=1)

    lines = [
        "Extension — poisoned share vs MOAS deployment fraction "
        f"(46-AS, {ATTACKER_FRACTION:.0%} attackers, {N_RUNS} runs/point)",
        f"{'deployed':>9s} {'poisoned':>10s}",
    ]
    for fraction, poisoned in curve:
        lines.append(f"{fraction:>8.0%} {poisoned:>9.1%}")
    lines.append("")
    lines.append(
        render_line_chart(
            {"poisoned %": [(f * 100, p * 100) for f, p in curve]},
            title="deployment benefit curve:",
            x_label="% of ASes MOAS-capable",
            y_label="% poisoned",
            height=10,
        )
    )
    emit(results_dir, "deployment_sweep", "\n".join(lines))

    values = dict(curve)
    # Broad monotone decrease: each big step of deployment helps.
    assert values[0.5] < values[0.0]
    assert values[1.0] < values[0.5]
    # Incremental deployability: even 25% capable removes >=20% of damage.
    assert values[0.25] < values[0.0] * 0.8
    # The curve never increases by more than noise between adjacent points.
    ordered = [p for _, p in curve]
    for left, right in zip(ordered, ordered[1:]):
        assert right <= left + 0.10