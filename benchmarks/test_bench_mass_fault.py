"""The April-1998 event replayed in the live simulator.

§3.3: AS 8584's erroneous mass origination caused "noticeable disturbance
to the Internet operation."  This bench replays that event class against
the 46-AS network with a full prefix table, comparing the disturbance with
and without MOAS checking, and confirms the attached collector records the
Figure-4-style MOAS burst.
"""

from conftest import TOPOLOGY_SEED, emit

from repro.experiments.exp_mass_fault import run_mass_fault

N_SEEDS = 5


def run_arms(graph, seed=TOPOLOGY_SEED):
    rows = {}
    for detect in (False, True):
        results = [
            run_mass_fault(
                graph,
                fault_share=0.5,
                prefixes_per_stub=2,
                detect=detect,
                seed=seed + i,
            )
            for i in range(N_SEEDS)
        ]
        rows[detect] = results
    return rows


def mean(values):
    return sum(values) / len(values)


def test_bench_mass_fault(benchmark, paper_topologies, results_dir):
    graph = paper_topologies[46]
    rows = benchmark.pedantic(run_arms, args=(graph,), rounds=1, iterations=1)

    lines = [
        "Mass-origination fault replay (46-AS, half the table falsely "
        f"originated, {N_SEEDS} seeds)",
        f"{'arm':18s} {'disturbed prefixes':>19s} {'mean poisoned':>14s} "
        f"{'alarms':>8s} {'collector MOAS':>15s}",
    ]
    for detect, results in rows.items():
        label = "MOAS detection" if detect else "normal BGP"
        lines.append(
            f"{label:18s} "
            f"{mean([r.disturbance_rate for r in results]):>18.1%} "
            f"{mean([r.mean_poisoned_share for r in results]):>13.1%} "
            f"{mean([r.alarms for r in results]):>8.0f} "
            f"{mean([r.collector_moas_cases for r in results]):>15.1f}"
        )
    emit(results_dir, "mass_fault", "\n".join(lines))

    normal, detected = rows[False], rows[True]
    # The fault disturbs a large share of the table without checking...
    assert mean([r.disturbance_rate for r in normal]) > 0.5
    # ...and detection contains it by an order of magnitude.
    assert mean([r.mean_poisoned_share for r in detected]) < mean(
        [r.mean_poisoned_share for r in normal]
    ) / 5
    # Checking raised alarms; the collector saw the MOAS burst either way.
    assert all(r.alarms > 0 for r in detected)
    assert all(r.collector_moas_cases > 0 for r in normal)