"""Stream service benchmark — sustained update throughput and checkpoint cost.

Two measurements back the online detector's viability:

1. **Throughput**: a refresh-mode feed (every live pair re-announced every
   day — the worst-case cooperative workload) over a paper-scale trace
   segment, measured end-to-end through ``StreamService`` in sustained
   updates/sec.
2. **Checkpoint overhead**: the same feed with checkpointing every 2 000
   records versus none at all; the delta plus the service's own
   ``checkpoint_seconds`` accounting make the durability cost visible
   across PRs.

Results land in ``benchmarks/results/BENCH_stream.json``.
"""

from __future__ import annotations

import json
import random
import time

from conftest import emit

from repro.measurement.trace import FaultSpike, TraceConfig, TraceGenerator
from repro.stream.feed import FeedWriter, snapshot_deltas
from repro.stream.service import StreamService

#: A 120-day paper-calibrated segment with one fault spike; refresh mode
#: turns this into a few hundred thousand update records.
BENCH_CONFIG = TraceConfig(
    days=120,
    faults=(FaultSpike(day=60, faulty_as=8584, n_prefixes=300),),
    n_background_prefixes=500,
    include_background=True,
)
BENCH_SEED = 11


def _write_feed(path):
    generator = TraceGenerator(BENCH_CONFIG, random.Random(BENCH_SEED))
    with FeedWriter(path) as writer:
        return writer.write_all(
            snapshot_deltas(generator.snapshots(), refresh=True)
        )


def _run_service(feed, out_dir, tag, checkpoint_every=None):
    kwargs = {}
    if checkpoint_every is not None:
        kwargs["checkpoint"] = out_dir / f"cp_{tag}.json"
        kwargs["checkpoint_every"] = checkpoint_every
    service = StreamService(
        feed, out_dir / f"alarms_{tag}.jsonl", batch_size=1024, **kwargs
    )
    started = time.perf_counter()
    summary = service.run()
    return time.perf_counter() - started, summary


def test_bench_stream_throughput(results_dir, tmp_path):
    feed = tmp_path / "feed.jsonl"
    records = _write_feed(feed)

    # Warm the page cache, then best-of-three for each variant.
    _run_service(feed, tmp_path, "warm")
    plain_secs, plain = min(
        (_run_service(feed, tmp_path, f"plain{i}") for i in range(3)),
        key=lambda pair: pair[0],
    )
    ckpt_secs, ckpt = min(
        (
            _run_service(feed, tmp_path, f"ckpt{i}", checkpoint_every=2000)
            for i in range(3)
        ),
        key=lambda pair: pair[0],
    )

    assert plain.records == ckpt.records == records
    assert plain.alarms_emitted == ckpt.alarms_emitted > 0

    plain_rate = records / plain_secs if plain_secs > 0 else 0.0
    ckpt_rate = records / ckpt_secs if ckpt_secs > 0 else 0.0
    overhead_pct = (
        (plain_rate / ckpt_rate - 1.0) * 100.0 if ckpt_rate > 0 else 0.0
    )

    record = {
        "days": BENCH_CONFIG.days,
        "feed_records": records,
        "alarms_emitted": plain.alarms_emitted,
        "plain": {
            "wall_seconds": round(plain_secs, 3),
            "updates_per_sec": round(plain_rate, 1),
        },
        "checkpointed": {
            "checkpoint_every": 2000,
            "checkpoints": ckpt.checkpoints,
            "wall_seconds": round(ckpt_secs, 3),
            "updates_per_sec": round(ckpt_rate, 1),
            "checkpoint_seconds": round(ckpt.checkpoint_seconds, 3),
            "overhead_pct": round(overhead_pct, 1),
        },
    }
    (results_dir / "BENCH_stream.json").write_text(
        json.dumps(record, indent=2) + "\n"
    )

    lines = [
        "Stream service: sustained throughput (120-day refresh-mode feed)",
        f"  feed records: {records:,}   alarms: {plain.alarms_emitted}",
        f"  plain        {plain_secs:7.2f} s   {plain_rate:,.0f} updates/sec",
        f"  checkpointed {ckpt_secs:7.2f} s   {ckpt_rate:,.0f} updates/sec "
        f"({ckpt.checkpoints} checkpoints, "
        f"{ckpt.checkpoint_seconds:.2f} s in checkpointing, "
        f"overhead {overhead_pct:+.1f}%)",
    ]
    emit(results_dir, "BENCH_stream", "\n".join(lines))

    assert plain_rate > 0.0
    # Checkpoints land on batch boundaries, so the cadence is the first
    # multiple of batch_size at or past checkpoint_every (2048 here).
    assert ckpt.checkpoints >= records // (2 * 2048)
