"""Stream service benchmark — throughput, checkpoint overhead, sharding.

Four measurements back the online detector's viability:

1. **Throughput**: a refresh-mode feed (every live pair re-announced every
   day — the worst-case cooperative workload) over a paper-scale trace
   segment, measured end-to-end through ``StreamService`` in sustained
   updates/sec.
2. **Chain checkpoint overhead**: the same feed with delta-encoded
   incremental checkpoints every 2 000 records versus none at all.  The
   overhead is asserted against a budget
   (``REPRO_BENCH_STREAM_OVERHEAD_BUDGET``, default 15% for noisy CI
   boxes; the on-box target is <10%).
3. **Legacy full-snapshot cost**: the identical cadence with
   ``full_every=1`` — every boundary a full snapshot, the pre-chain
   behaviour — to keep the win visible (it used to cost ~60%).
4. **Sharded aggregate**: the 4-shard :class:`FeedRouter` over the same
   feed.  The aggregate rate is recorded unconditionally; the ≥3× scaling
   assertion only runs on boxes with ≥4 cores (the CI container is
   single-core, where sharding can only add IPC cost).

Results land in ``benchmarks/results/BENCH_stream.json``.
"""

from __future__ import annotations

import json
import os
import random
import time

from conftest import emit

from repro.measurement.trace import FaultSpike, TraceConfig, TraceGenerator
from repro.stream.feed import FeedWriter, snapshot_deltas
from repro.stream.router import FeedRouter
from repro.stream.service import StreamService

#: A 120-day paper-calibrated segment with one fault spike; refresh mode
#: turns this into a few hundred thousand update records.
BENCH_CONFIG = TraceConfig(
    days=120,
    faults=(FaultSpike(day=60, faulty_as=8584, n_prefixes=300),),
    n_background_prefixes=500,
    include_background=True,
)
BENCH_SEED = 11

OVERHEAD_BUDGET_ENV = "REPRO_BENCH_STREAM_OVERHEAD_BUDGET"


def _write_feed(path):
    generator = TraceGenerator(BENCH_CONFIG, random.Random(BENCH_SEED))
    with FeedWriter(path) as writer:
        return writer.write_all(
            snapshot_deltas(generator.snapshots(), refresh=True)
        )


def _run_service(feed, out_dir, tag, checkpoint_every=None, full_every=32):
    kwargs = {}
    if checkpoint_every is not None:
        kwargs["checkpoint"] = out_dir / f"cp_{tag}.json"
        kwargs["checkpoint_every"] = checkpoint_every
        kwargs["full_every"] = full_every
    service = StreamService(
        feed, out_dir / f"alarms_{tag}.jsonl", batch_size=1024, **kwargs
    )
    started = time.perf_counter()
    summary = service.run()
    return time.perf_counter() - started, summary


def _run_router(feed, out_dir, tag, shards):
    router = FeedRouter(
        [feed],
        out_dir / f"alarms_{tag}.jsonl",
        out_dir / f"cp_{tag}.json",
        shards=shards,
        checkpoint_every=2000,
    )
    started = time.perf_counter()
    summary = router.run()
    return time.perf_counter() - started, summary


def test_bench_stream_throughput(results_dir, tmp_path):
    feed = tmp_path / "feed.jsonl"
    records = _write_feed(feed)

    # Warm the page cache, then best-of-three for each variant.
    _run_service(feed, tmp_path, "warm")
    plain_secs, plain = min(
        (_run_service(feed, tmp_path, f"plain{i}") for i in range(3)),
        key=lambda pair: pair[0],
    )
    ckpt_secs, ckpt = min(
        (
            _run_service(feed, tmp_path, f"ckpt{i}", checkpoint_every=2000)
            for i in range(3)
        ),
        key=lambda pair: pair[0],
    )
    legacy_secs, legacy = min(
        (
            _run_service(
                feed, tmp_path, f"legacy{i}", checkpoint_every=2000,
                full_every=1,
            )
            for i in range(2)
        ),
        key=lambda pair: pair[0],
    )
    shard_secs, sharded = min(
        (_run_router(feed, tmp_path, f"shard{i}", shards=4) for i in range(2)),
        key=lambda pair: pair[0],
    )

    assert plain.records == ckpt.records == legacy.records == records
    assert plain.alarms_emitted == ckpt.alarms_emitted > 0
    assert sharded.alarms_emitted == plain.alarms_emitted
    assert ckpt.checkpoint_deltas > ckpt.checkpoint_fulls  # chains in use
    assert legacy.checkpoint_deltas == 0  # every boundary a full snapshot

    plain_rate = records / plain_secs if plain_secs > 0 else 0.0
    ckpt_rate = records / ckpt_secs if ckpt_secs > 0 else 0.0
    legacy_rate = records / legacy_secs if legacy_secs > 0 else 0.0
    shard_rate = records / shard_secs if shard_secs > 0 else 0.0
    overhead_pct = (
        (plain_rate / ckpt_rate - 1.0) * 100.0 if ckpt_rate > 0 else 0.0
    )
    legacy_overhead_pct = (
        (plain_rate / legacy_rate - 1.0) * 100.0 if legacy_rate > 0 else 0.0
    )
    cores = os.cpu_count() or 1

    record = {
        "days": BENCH_CONFIG.days,
        "feed_records": records,
        "alarms_emitted": plain.alarms_emitted,
        "cores": cores,
        "plain": {
            "wall_seconds": round(plain_secs, 3),
            "updates_per_sec": round(plain_rate, 1),
        },
        "checkpointed": {
            "checkpoint_every": 2000,
            "checkpoints": ckpt.checkpoints,
            "fulls": ckpt.checkpoint_fulls,
            "deltas": ckpt.checkpoint_deltas,
            "wall_seconds": round(ckpt_secs, 3),
            "updates_per_sec": round(ckpt_rate, 1),
            "checkpoint_seconds": round(ckpt.checkpoint_seconds, 3),
            "overhead_pct": round(overhead_pct, 1),
        },
        "legacy_full_snapshots": {
            "checkpoint_every": 2000,
            "checkpoints": legacy.checkpoints,
            "wall_seconds": round(legacy_secs, 3),
            "updates_per_sec": round(legacy_rate, 1),
            "overhead_pct": round(legacy_overhead_pct, 1),
        },
        "sharded": {
            "shards": 4,
            "wall_seconds": round(shard_secs, 3),
            "updates_per_sec": round(shard_rate, 1),
            "speedup_vs_single": round(
                shard_rate / ckpt_rate if ckpt_rate > 0 else 0.0, 2
            ),
        },
    }
    (results_dir / "BENCH_stream.json").write_text(
        json.dumps(record, indent=2) + "\n"
    )

    lines = [
        "Stream service: sustained throughput (120-day refresh-mode feed)",
        f"  feed records: {records:,}   alarms: {plain.alarms_emitted}"
        f"   cores: {cores}",
        f"  plain        {plain_secs:7.2f} s   {plain_rate:,.0f} updates/sec",
        f"  chain ckpt   {ckpt_secs:7.2f} s   {ckpt_rate:,.0f} updates/sec "
        f"({ckpt.checkpoint_fulls} fulls + {ckpt.checkpoint_deltas} deltas, "
        f"overhead {overhead_pct:+.1f}%)",
        f"  legacy fulls {legacy_secs:7.2f} s   {legacy_rate:,.0f} "
        f"updates/sec (overhead {legacy_overhead_pct:+.1f}%)",
        f"  4 shards     {shard_secs:7.2f} s   {shard_rate:,.0f} updates/sec "
        f"aggregate ({record['sharded']['speedup_vs_single']}x single)",
    ]
    emit(results_dir, "BENCH_stream", "\n".join(lines))

    assert plain_rate > 0.0
    # Checkpoints land on batch boundaries, so the cadence is the first
    # multiple of batch_size at or past checkpoint_every (2048 here).
    assert ckpt.checkpoints >= records // (2 * 2048)
    # The delta chain must keep checkpointing cheap: the budget is
    # generous for noisy CI boxes, the on-box target is <10%.
    budget = float(os.environ.get(OVERHEAD_BUDGET_ENV, "15.0"))
    assert overhead_pct <= budget, (
        f"checkpoint overhead {overhead_pct:.1f}% blew the {budget:.1f}% "
        f"budget (plain {plain_rate:,.0f}/s vs chain {ckpt_rate:,.0f}/s)"
    )
    # Scaling is only demonstrable with real cores under the shards.
    if cores >= 4:
        assert shard_rate >= 3.0 * ckpt_rate, (
            f"4-shard aggregate {shard_rate:,.0f}/s is under 3x the "
            f"single-engine {ckpt_rate:,.0f}/s on a {cores}-core box"
        )
