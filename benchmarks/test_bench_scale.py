"""Scaling benchmark — events/sec and memory from 63 to 10,000 ASes.

Two measurements:

1. **Scaling curve**: for each size (63-AS paper sample, then generated
   1k/5k/10k Internet-like graphs) build a network, establish sessions,
   originate one prefix and run cold convergence, recording wall time,
   events processed, events/sec and the process's peak RSS.  This is the
   curve the hot-path work (incremental decision process, calendar queue,
   route interning, batched delivery) is meant to bend.
2. **63-AS micro**: the single-scenario hijack benchmark every perf PR
   compares against (same scenario as BENCH_parallel.json), so the
   events/sec history stays comparable across optimisation passes.

Results land in ``benchmarks/results/BENCH_scale.json``.  Sizes are
env-configurable so CI smoke jobs can run a subset::

    REPRO_BENCH_SCALE_SIZES=63,2000 pytest benchmarks/test_bench_scale.py

Peak RSS is ``ru_maxrss`` — a process-lifetime high-water mark, so each
point reports the peak *after* that size converged (sizes run ascending;
the increment over the previous point is the size's own footprint).
"""

from __future__ import annotations

import json
import os
import resource
import time

from conftest import TOPOLOGY_SEED, emit

from repro.bgp.network import Network
from repro.bgp.speaker import SpeakerConfig
from repro.experiments.runner import (
    DeploymentKind,
    HijackScenario,
    run_hijack_scenario,
)
from repro.net.addresses import Prefix
from repro.topology.generators import (
    generate_paper_topology,
    generate_scale_topology,
)

DEFAULT_SIZES = (63, 1000, 5000, 10000)

#: events/sec recorded for the 63-AS single-scenario benchmark before the
#: hot-path optimisation pass (BENCH_parallel.json at the time this
#: benchmark was introduced; a different machine than later reruns).
RECORDED_BASELINE_EPS = 38177.3

#: events/sec per size recorded immediately before the GC-suspension fix
#: in ``Simulator.run`` (automatic gen-2 collections scanned the whole
#: O(topology) object graph O(events) times, a superlinear term that
#: dragged throughput from ~32k ev/s at 63 ASes to ~17k at 5000).  Kept
#: in the JSON record so the before/after comparison travels with it.
RECORDED_PRE_GC_FIX_EPS = {
    63: 31874.6,
    1000: 23091.7,
    5000: 17272.1,
    10000: 13420.9,
}

BENCH_PREFIX = Prefix.parse("10.0.0.0/16")


def _bench_sizes() -> tuple:
    raw = os.environ.get("REPRO_BENCH_SCALE_SIZES", "")
    if not raw.strip():
        return DEFAULT_SIZES
    return tuple(int(part) for part in raw.split(",") if part.strip())


def _peak_rss_mb() -> float:
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0


def _converge_once(size: int) -> dict:
    """Build, establish and cold-converge one topology of ``size`` ASes."""
    if size <= 100:
        graph = generate_paper_topology(size, seed=TOPOLOGY_SEED)
    else:
        graph = generate_scale_topology(size, seed=TOPOLOGY_SEED)
    build_started = time.perf_counter()
    network = Network(graph, config=SpeakerConfig(mrai=0.0), link_delay=0.01)
    network.establish_sessions()
    establish_seconds = time.perf_counter() - build_started

    origin = sorted(graph.asns())[10]
    converge_started = time.perf_counter()
    network.originate(origin, BENCH_PREFIX)
    events = network.run_to_convergence()
    converge_seconds = time.perf_counter() - converge_started

    covered = sum(
        1
        for best in network.best_origins(BENCH_PREFIX).values()
        if best is not None
    )
    assert covered == len(graph), (
        f"{size}-AS topology did not fully converge: "
        f"{covered}/{len(graph)} ASes hold a route"
    )
    return {
        "ases": len(graph),
        "links": len(network.links),
        "establish_seconds": round(establish_seconds, 3),
        "converge_seconds": round(converge_seconds, 3),
        "converge_events": events,
        "events_per_sec": round(events / converge_seconds, 1)
        if converge_seconds > 0
        else 0.0,
        "interner_entries": len(network.interner),
        "peak_rss_mb": round(_peak_rss_mb(), 1),
        "pre_gc_fix_events_per_sec": RECORDED_PRE_GC_FIX_EPS.get(size),
    }


def _micro_63as() -> dict:
    """The comparable single-scenario benchmark (see BENCH_parallel)."""
    graph = generate_paper_topology(63, seed=TOPOLOGY_SEED)
    ases = sorted(graph.asns())
    scenario = HijackScenario(
        graph=graph,
        origins=[ases[10]],
        attackers=[ases[40]],
        deployment=DeploymentKind.FULL,
        seed=3,
    )
    run_hijack_scenario(scenario)  # warm parse/topology caches
    best = max(
        (run_hijack_scenario(scenario) for _ in range(5)),
        key=lambda outcome: outcome.events_per_sec,
    )
    return {
        "events_processed": best.events_processed,
        "wall_seconds": round(best.wall_seconds, 4),
        "events_per_sec": round(best.events_per_sec, 1),
        "recorded_baseline_eps": RECORDED_BASELINE_EPS,
        "speedup_vs_recorded": round(
            best.events_per_sec / RECORDED_BASELINE_EPS, 2
        ),
    }


def test_bench_scale(results_dir):
    sizes = _bench_sizes()
    curve = [_converge_once(size) for size in sizes]
    micro = _micro_63as()

    record = {
        "sizes": list(sizes),
        "curve": curve,
        "micro_63as": micro,
    }
    (results_dir / "BENCH_scale.json").write_text(
        json.dumps(record, indent=2) + "\n"
    )

    lines = [
        "Scaling curve: cold convergence, one originated prefix",
        f"  {'ASes':>6} {'links':>7} {'estab s':>8} {'conv s':>7} "
        f"{'events':>8} {'ev/s':>8} {'rss MB':>7}",
    ]
    for point in curve:
        lines.append(
            f"  {point['ases']:>6} {point['links']:>7} "
            f"{point['establish_seconds']:>8.3f} "
            f"{point['converge_seconds']:>7.3f} "
            f"{point['converge_events']:>8} "
            f"{point['events_per_sec']:>8,.0f} "
            f"{point['peak_rss_mb']:>7.1f}"
        )
    lines.append(
        f"  63-AS micro: {micro['events_processed']} events, "
        f"{micro['events_per_sec']:,.0f} events/sec "
        f"({micro['speedup_vs_recorded']:.2f}x the recorded "
        f"{RECORDED_BASELINE_EPS:,.0f} baseline)"
    )
    emit(results_dir, "BENCH_scale", "\n".join(lines))

    assert micro["events_per_sec"] > 0.0
    # Every requested size must have fully converged (asserted per point).
    assert len(curve) == len(sizes)
