"""Baseline comparison — MOAS list vs the §2 related-work approaches.

Quantifies the trade-offs the paper argues qualitatively: IRR filtering is
only as good as the registry (coverage, staleness); S-BGP-style origin
attestation is strong exactly where certificates exist; per-update DNS
checking matches the MOAS list's protection when the DNS is reachable but
pays a per-update query cost and collapses when routing to the DNS breaks.
"""

import random

from conftest import TOPOLOGY_SEED, emit

from repro.attack.placement import place_attackers, place_origins
from repro.baselines.dns_checking import PerUpdateDnsValidator
from repro.baselines.irr import IrrRegistry, IrrValidator
from repro.baselines.origin_auth import AttestationAuthority, OriginAuthValidator
from repro.bgp.network import Network
from repro.core.checker import MoasChecker
from repro.core.origin_verification import GroundTruthOracle, PrefixOriginRegistry
from repro.eventsim.rng import RandomStreams
from repro.experiments.runner import TARGET_PREFIX

N_RUNS = 10
ATTACKER_FRACTION = 0.20


def run_arm(graph, arm, origins, attackers, seed):
    """One simulation with the given protection arm installed everywhere."""
    prefix = TARGET_PREFIX
    registry = PrefixOriginRegistry()
    registry.register(prefix, origins)
    oracle = GroundTruthOracle(registry)

    net = Network(graph, seed=seed)
    queries = [0]

    communities = ()
    if arm == "none":
        pass
    elif arm == "moas-list":
        for asn in graph.asns():
            MoasChecker(oracle=oracle).attach(net.speaker(asn))
    elif arm.startswith("irr"):
        _, coverage, staleness = arm.split("/")
        irr = IrrRegistry.from_ground_truth(
            {prefix: frozenset(origins)},
            coverage=float(coverage),
            staleness=float(staleness),
            rng=random.Random(seed),
            stale_origin_pool=[9999],
        )
        for asn in graph.asns():
            net.speaker(asn).add_import_validator(IrrValidator(irr))
    elif arm.startswith("origin-auth"):
        _, cert_coverage = arm.split("/")
        authority = AttestationAuthority()
        if random.Random(seed ^ 0xC0DE).random() < float(cert_coverage):
            authority.certify(prefix, origins)
            communities = authority.issue(prefix, min(origins))
        for asn in graph.asns():
            net.speaker(asn).add_import_validator(OriginAuthValidator(authority))
    elif arm == "per-update-dns":
        for asn in graph.asns():
            validator = PerUpdateDnsValidator(oracle)
            net.speaker(asn).add_import_validator(validator)
    else:
        raise ValueError(arm)

    net.establish_sessions()
    for origin in sorted(origins):
        net.originate(origin, prefix, communities=communities)
    for attacker in sorted(attackers):
        net.speaker(attacker).originate(prefix)
    net.run_to_convergence()

    best_origins = net.best_origins(prefix)
    remaining = len(graph) - len(attackers)
    poisoned = sum(
        1
        for asn, best in best_origins.items()
        if asn not in attackers and best in attackers
    )
    unreachable = sum(
        1
        for asn, best in best_origins.items()
        if asn not in attackers and best is None
    )
    return poisoned / remaining, unreachable / remaining, oracle.lookups


ARMS = (
    "none",
    "moas-list",
    "irr/1.0/0.0",      # fully maintained registry
    "irr/0.5/0.0",      # half the prefixes registered
    "irr/1.0/0.3",      # 30% of records stale
    "origin-auth/1.0",  # every prefix certified
    "origin-auth/0.5",  # half certified
    "per-update-dns",
)


def run_matrix(graph, seed=TOPOLOGY_SEED):
    streams = RandomStreams(seed)
    n_attackers = max(1, round(ATTACKER_FRACTION * len(graph)))
    draws = []
    for run_index in range(N_RUNS):
        origins = place_origins(graph, 1, streams.stream(f"o/{run_index}"))
        attackers = place_attackers(
            graph, n_attackers, streams.stream(f"a/{run_index}"), exclude=origins
        )
        draws.append((origins, attackers))

    matrix = {}
    for arm in ARMS:
        poisoned, unreachable, lookups = [], [], []
        for run_index, (origins, attackers) in enumerate(draws):
            p, u, q = run_arm(graph, arm, origins, attackers, seed + run_index)
            poisoned.append(p)
            unreachable.append(u)
            lookups.append(q)
        matrix[arm] = (
            sum(poisoned) / len(poisoned),
            sum(unreachable) / len(unreachable),
            sum(lookups) / len(lookups),
        )
    return matrix


def test_bench_baselines(benchmark, paper_topologies, results_dir):
    graph = paper_topologies[46]
    matrix = benchmark.pedantic(run_matrix, args=(graph,), rounds=1, iterations=1)

    lines = [
        "Baseline comparison "
        f"(46-AS, {ATTACKER_FRACTION:.0%} attackers, {N_RUNS} runs)",
        f"{'arm':22s} {'poisoned':>10s} {'unreachable':>12s} "
        f"{'oracle queries/run':>20s}",
    ]
    for arm, (poisoned, unreachable, lookups) in matrix.items():
        lines.append(
            f"{arm:22s} {poisoned * 100:>9.2f}% {unreachable * 100:>11.2f}% "
            f"{lookups:>20.1f}"
        )
    emit(results_dir, "baselines", "\n".join(lines))

    # A perfectly maintained IRR or full PKI matches MOAS-list protection...
    assert matrix["irr/1.0/0.0"][0] <= matrix["moas-list"][0] + 0.02
    assert matrix["origin-auth/1.0"][0] <= matrix["moas-list"][0] + 0.02
    # ...but degrade with coverage/staleness, unlike the MOAS list which
    # needs no registry at all.
    assert matrix["irr/0.5/0.0"][0] > matrix["irr/1.0/0.0"][0]
    assert matrix["origin-auth/0.5"][0] > matrix["origin-auth/1.0"][0]
    # IRR staleness has a cost the poisoned metric misses: stale records
    # block the GENUINE route, stranding ASes with no route at all.
    assert matrix["irr/1.0/0.3"][1] > matrix["moas-list"][1] + 0.02
    # MOAS checking consults the oracle only on conflicts: far fewer
    # queries than per-update DNS checking at equal protection.
    assert matrix["moas-list"][2] < matrix["per-update-dns"][2] / 3
    assert abs(matrix["per-update-dns"][0] - matrix["moas-list"][0]) < 0.05
    # Everything beats doing nothing on the poisoned metric.
    for arm in ARMS[1:]:
        assert matrix[arm][0] <= matrix["none"][0] + 0.02
