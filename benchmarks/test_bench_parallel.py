"""Parallel executor benchmark — serial vs pooled sweep wall time.

Two measurements back the executor's existence:

1. **Macro**: one full-deployment sweep (2 fractions x 3 origin sets x
   5 attacker sets = 30 runs on the 63-AS topology) timed serially and
   with a process pool sized to the machine.  The points must be
   bit-identical; on a >= 4-core machine the pooled run must be >= 2x
   faster.  On smaller machines (CI containers are often 1-2 cores) the
   speedup assertion is skipped — pool startup would dominate — but the
   identity assertion always holds.
2. **Micro**: single-scenario simulator throughput (events/sec), the
   metric the hot-path optimisation pass moves — measured plain and with
   the observability layer enabled, so the metrics/span overhead (and the
   no-op cost of the disabled guard) stays visible across PRs.

Results land in ``benchmarks/results/BENCH_parallel.json`` so successive
optimisation PRs have a comparable artifact.
"""

from __future__ import annotations

import json
import os
import time

from conftest import TOPOLOGY_SEED, emit

from repro.experiments.runner import (
    DeploymentKind,
    HijackScenario,
    run_hijack_scenario,
)
from repro.experiments.sweep import SweepConfig, run_sweep

FRACS = (0.10, 0.30)


def _sweep_config(graph):
    return SweepConfig(
        graph=graph,
        attacker_fractions=FRACS,
        deployment=DeploymentKind.FULL,
        seed=TOPOLOGY_SEED,
    )


def _time_sweep(graph, workers):
    started = time.perf_counter()
    result = run_sweep(_sweep_config(graph), workers=workers)
    return time.perf_counter() - started, result


def test_bench_parallel_executor(paper_topologies, results_dir):
    graph = paper_topologies[63]
    cores = os.cpu_count() or 1
    pool_workers = max(2, min(cores, 8))

    serial_secs, serial = _time_sweep(graph, workers=1)
    pooled_secs, pooled = _time_sweep(graph, workers=pool_workers)

    # Determinism is unconditional: same points, any worker count.
    assert pooled.points == serial.points

    speedup = serial_secs / pooled_secs if pooled_secs > 0 else 0.0
    runs = sum(point.runs for point in serial.points)

    # Single-scenario throughput (micro): best of three, warm caches.
    ases = sorted(graph.asns())
    scenario = HijackScenario(
        graph=graph, origins=[ases[10]], attackers=[ases[40]],
        deployment=DeploymentKind.FULL, seed=3,
    )
    run_hijack_scenario(scenario)  # warm parse/topology caches
    micro = max(
        (run_hijack_scenario(scenario) for _ in range(3)),
        key=lambda outcome: outcome.events_per_sec,
    )

    # Same scenario with metrics + spans enabled: the observability
    # overhead, and a determinism check that instrumentation never
    # perturbs the simulation.
    from repro.experiments.runner import run_hijack_scenario_instrumented

    instrumented = max(
        (run_hijack_scenario_instrumented(scenario) for _ in range(3)),
        key=lambda run: run.outcome.events_per_sec,
    )
    assert instrumented.outcome.equivalent_to(micro)
    overhead_pct = (
        (micro.events_per_sec / instrumented.outcome.events_per_sec - 1.0)
        * 100.0
        if instrumented.outcome.events_per_sec > 0
        else 0.0
    )

    record = {
        "topology_size": len(graph),
        "cores": cores,
        "pool_workers": pool_workers,
        "sweep_runs": runs,
        "serial_seconds": round(serial_secs, 3),
        "parallel_seconds": round(pooled_secs, 3),
        "speedup": round(speedup, 2),
        "points_identical": pooled.points == serial.points,
        "single_scenario": {
            "events_processed": micro.events_processed,
            "updates_sent": micro.updates_sent,
            "wall_seconds": round(micro.wall_seconds, 4),
            "events_per_sec": round(micro.events_per_sec, 1),
        },
        "instrumented_scenario": {
            "events_per_sec": round(
                instrumented.outcome.events_per_sec, 1
            ),
            "overhead_pct": round(overhead_pct, 1),
        },
    }
    (results_dir / "BENCH_parallel.json").write_text(
        json.dumps(record, indent=2) + "\n"
    )

    lines = [
        "Parallel executor: serial vs pooled sweep (63-AS, full deployment)",
        f"  cores={cores}  pool_workers={pool_workers}  runs={runs}",
        f"  serial   {serial_secs:7.2f} s",
        f"  pooled   {pooled_secs:7.2f} s   speedup {speedup:4.2f}x",
        "  points bit-identical: yes",
        f"  single scenario: {micro.events_processed} events, "
        f"{micro.events_per_sec:,.0f} events/sec",
        f"  instrumented:    "
        f"{instrumented.outcome.events_per_sec:,.0f} events/sec "
        f"(metrics+spans overhead {overhead_pct:+.1f}%)",
    ]
    emit(results_dir, "BENCH_parallel", "\n".join(lines))

    assert micro.events_per_sec > 0.0
    if cores >= 4:
        assert speedup >= 2.0, (
            f"expected >= 2x on {cores} cores, measured {speedup:.2f}x"
        )
    elif cores >= 2:
        # Two workers on two real cores must clear 1.5x now that workers
        # fork warm (COW caches) and graphs ship once per worker.
        assert speedup >= 1.5, (
            f"expected >= 1.5x on {cores} cores, measured {speedup:.2f}x"
        )
    # On a 1-core box there is no parallelism to win; two busy workers
    # pay pure scheduling overhead (~10-20% measured), so only the
    # bit-identity assertion above is meaningful.
