"""§4.3 — community dropping: false alarms, never false accepts.

The paper's claim to validate: routers dropping the optional-transitive
community attribute cause *false alarms* on valid MOAS, but "should not
cause an invalid case to be considered valid" — and, with origin-database
adjudication, never cost the genuine origins their reachability.
"""

from conftest import TOPOLOGY_SEED, emit

from repro.experiments.exp_false_alarms import run_false_alarm_experiment


def test_bench_false_alarms(benchmark, paper_topologies, results_dir):
    graph = paper_topologies[46]
    points = benchmark.pedantic(
        run_false_alarm_experiment,
        kwargs=dict(graph=graph, n_runs=10, seed=TOPOLOGY_SEED),
        rounds=1,
        iterations=1,
    )

    lines = [
        "§4.3 — community stripping on a VALID two-origin MOAS "
        "(46-AS, 10 runs per point)",
        f"{'transit stripping':>18s} {'false-alarm rate':>17s} "
        f"{'valid routes suppressed':>24s} {'unreachable':>12s}",
    ]
    for point in points:
        lines.append(
            f"{point.strip_fraction:>17.0%} "
            f"{point.false_alarm_rate:>16.1%} "
            f"{point.suppressed_valid_routes:>24d} "
            f"{point.unreachable_fraction:>11.1%}"
        )
    emit(results_dir, "false_alarms", "\n".join(lines))

    by_fraction = {p.strip_fraction: p for p in points}
    # No stripping, no alarms.
    assert by_fraction[0.0].false_alarm_rate == 0.0
    # Stripping produces false alarms, growing with the stripping rate.
    assert by_fraction[0.5].false_alarm_rate > by_fraction[0.1].false_alarm_rate
    assert by_fraction[0.5].false_alarm_rate > 0.05
    # The paper's safety property: alarms are noise, not harm — genuine
    # origins are never suppressed and reachability is never lost.
    for point in points:
        assert point.suppressed_valid_routes == 0
        assert point.unreachable_fraction == 0.0
