"""Figure 9 — Experiment 1: spoof-resilience in the 46-AS topology.

Paper reference points (1-origin panel): at ~4 % attackers, Normal BGP
loses >36 % of the remaining ASes to false routes while Full MOAS
Detection loses ~0.15 %; at 30 % attackers, 51 % vs ~9.8 %.
"""

from conftest import TOPOLOGY_SEED, emit

from repro.experiments.ascii_chart import render_line_chart
from repro.experiments.exp_effectiveness import figure9
from repro.experiments.reporting import format_sweep_table

FRACTIONS = (0.05, 0.10, 0.20, 0.30, 0.40)


def test_bench_figure9(benchmark, paper_topologies, results_dir):
    result = benchmark.pedantic(
        figure9,
        kwargs=dict(
            graph=paper_topologies[46],
            attacker_fractions=FRACTIONS,
            seed=TOPOLOGY_SEED,
        ),
        rounds=1,
        iterations=1,
    )

    sections = ["Figure 9 — Experiment 1: effectiveness of the MOAS list"]
    for n_origins, curves in sorted(result.panels.items()):
        sections.append(
            format_sweep_table(
                curves,
                title=f"(panel {'a' if n_origins == 1 else 'b'}) "
                f"{n_origins} origin AS(es); paper: normal 36-51%, "
                f"detection 0.15-9.8%",
            )
        )
        sections.append(
            render_line_chart(
                {
                    curve.deployment.value: curve.as_percent_series()
                    for curve in curves
                },
                title=f"Figure 9 panel ({n_origins} origin) rendered:",
                x_label="% attackers",
                y_label="% ASes adopting false route",
                height=12,
            )
        )
    emit(results_dir, "figure9", "\n\n".join(sections))

    for n_origins, (normal, detect) in result.panels.items():
        for n_point, d_point in zip(normal.points, detect.points):
            # Detection must dominate Normal BGP at every grid point.
            assert d_point.mean_poisoned_fraction <= n_point.mean_poisoned_fraction
        # Low attacker fractions: detection nearly eliminates adoption
        # (paper: 0.15% at 4%); we allow up to 3%.
        assert detect.point_at(0.05).mean_poisoned_fraction < 0.03
        # Normal BGP loses a large share even with few attackers.
        assert normal.point_at(0.05).mean_poisoned_fraction > 0.15
