"""Figure 10 — Experiment 2: topology size and robustness.

Paper observations to reproduce: (1) without the scheme the attacker
impact is similar across the 25/46/63-AS topologies; (2) with the scheme,
the larger topology is markedly more robust (paper: at ~35 % attackers,
31.2 % of remaining ASes poisoned in the 25-AS topology vs 7.8 % in the
63-AS one).
"""

from conftest import TOPOLOGY_SEED, emit

from repro.experiments.exp_topology_size import figure10
from repro.experiments.reporting import format_sweep_table

FRACTIONS = (0.05, 0.10, 0.20, 0.30, 0.35)


def test_bench_figure10(benchmark, paper_topologies, results_dir):
    result = benchmark.pedantic(
        figure10,
        kwargs=dict(
            sizes=(25, 46, 63),
            origin_counts=(1, 2),
            attacker_fractions=FRACTIONS,
            seed=TOPOLOGY_SEED,
            graphs=paper_topologies,
        ),
        rounds=1,
        iterations=1,
    )

    sections = ["Figure 10 — Experiment 2: 25-AS vs 46-AS vs 63-AS"]
    for n_origins, per_size in sorted(result.panels.items()):
        curves = [curve for size in sorted(per_size) for curve in per_size[size]]
        sections.append(
            format_sweep_table(
                curves,
                title=f"(panel {'a' if n_origins == 1 else 'b'}) "
                f"{n_origins} origin AS(es); paper: detection residual "
                f"31.2% (25-AS) vs 7.8% (63-AS) at 35% attackers",
            )
        )
    emit(results_dir, "figure10", "\n\n".join(sections))

    # Observation 2: larger topology more robust under detection.
    small = result.detection_at(1, 25, 0.35)
    large = result.detection_at(1, 63, 0.35)
    assert large < small
    # Observation 1: Normal-BGP curves bunch (within 25 percentage points)
    # while detection curves differ by a factor.
    normals = {
        size: curves[0].point_at(0.35).mean_poisoned_fraction * 100
        for size, curves in result.panels[1].items()
    }
    assert max(normals.values()) - min(normals.values()) < 25
