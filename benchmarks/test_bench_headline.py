"""The §1/§5.2 headline numbers, side by side with the paper.

"When up to 4% of the AS's are injecting false routing data, more than
36% of the remaining AS's will adopt false routes.  With our solution, on
average only .15% of the AS's adopt false routes in the same simulation
setting.  Even when the number of attackers increases to 30% of the
network, only about 9.8% of the remaining AS's adopt false routes,
compared to 51% when without validation."
"""

from conftest import TOPOLOGY_SEED, emit

from repro.experiments.exp_effectiveness import figure9


def test_bench_headline(benchmark, paper_topologies, results_dir):
    result = benchmark.pedantic(
        figure9,
        kwargs=dict(
            graph=paper_topologies[46],
            origin_counts=(1,),
            attacker_fractions=(0.05, 0.30),
            seed=TOPOLOGY_SEED,
        ),
        rounds=1,
        iterations=1,
    )
    headline = result.headline()

    rows = [
        ("poisoned, ~4-5% attackers, normal BGP", ">36%", headline["normal@4%"]),
        ("poisoned, ~4-5% attackers, MOAS detection", "0.15%", headline["detect@4%"]),
        ("poisoned, 30% attackers, normal BGP", "51%", headline["normal@30%"]),
        ("poisoned, 30% attackers, MOAS detection", "9.8%", headline["detect@30%"]),
    ]
    lines = [
        "Headline comparison (46-AS topology, 1 origin AS)",
        f"{'metric':46s} {'paper':>8s} {'measured':>10s}",
    ]
    for label, paper, measured in rows:
        lines.append(f"{label:46s} {paper:>8s} {measured:>9.2f}%")
    factor_low = (
        headline["normal@4%"] / headline["detect@4%"]
        if headline["detect@4%"] > 0
        else float("inf")
    )
    factor_high = (
        headline["normal@30%"] / headline["detect@30%"]
        if headline["detect@30%"] > 0
        else float("inf")
    )
    lines.append("")
    lines.append(
        f"improvement factor: {factor_low:.0f}x at ~4% attackers "
        f"(paper: ~240x), {factor_high:.0f}x at 30% (paper: ~5x)"
    )
    emit(results_dir, "headline", "\n".join(lines))

    # Who-wins and by-what-factor assertions.
    assert headline["detect@4%"] < headline["normal@4%"] / 10
    assert headline["detect@30%"] < headline["normal@30%"] / 2
    assert headline["normal@4%"] > 20.0
    assert headline["detect@4%"] < 3.0
    assert headline["detect@30%"] < 15.0
