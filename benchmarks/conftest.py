"""Shared benchmark fixtures.

Each figure benchmark regenerates one of the paper's figures, printing the
rows/series the paper plots and writing them to ``benchmarks/results/``.
Topologies are generated once per session: the paper likewise uses one
sampled topology per size.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.topology.generators import generate_paper_topology

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: The seed of the representative topology sample used by all figure
#: benches (the paper, too, evaluates one sample per size).
TOPOLOGY_SEED = 8


@pytest.fixture(scope="session")
def paper_topologies():
    return {
        size: generate_paper_topology(size, seed=TOPOLOGY_SEED)
        for size in (25, 46, 63)
    }


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def emit(results_dir: pathlib.Path, name: str, text: str) -> None:
    """Print a result table and persist it under benchmarks/results/."""
    print()
    print(text)
    (results_dir / f"{name}.txt").write_text(text + "\n")
