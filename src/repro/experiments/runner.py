"""One hijack simulation run.

The paper's unit of measurement: on a given topology, a prefix is
legitimately originated by one or two stub ASes; M attacker ASes falsely
originate it; after convergence we measure the percentage of the remaining
(non-attacker) ASes whose best route leads to an attacker.
"""

from __future__ import annotations

import dataclasses
import enum
import os
import random
import time
from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import Any, ContextManager, Dict, FrozenSet, List, Optional, Sequence

from repro.attack.models import AttackStrategy, NaiveFalseOrigin
from repro.bgp.network import Network
from repro.bgp.speaker import SpeakerConfig
from repro.core.alarms import AlarmLog
from repro.core.checker import CheckerMode, MoasChecker
from repro.core.deployment import DeploymentPlan
from repro.core.moas_list import moas_communities
from repro.core.origin_verification import GroundTruthOracle, PrefixOriginRegistry
from repro.eventsim.simulator import Simulator
from repro.net.addresses import Prefix
from repro.net.asn import ASN
from repro.obs.metrics import MetricsRegistry
from repro.obs.spans import SpanTracer
from repro.topology.asgraph import ASGraph


class DeploymentKind(enum.Enum):
    """The three arms of the paper's figures."""

    NONE = "normal-bgp"
    PARTIAL = "partial-moas-detection"
    FULL = "full-moas-detection"


#: The prefix under attack in every run (its identity is arbitrary).
TARGET_PREFIX = Prefix.parse("198.51.100.0/24")


class AttackTiming(enum.Enum):
    """When the false origination is injected.

    The paper's experiments race valid and false announcements from a cold
    start (``SIMULTANEOUS``) — this is what leaves a residual of poisoned
    ASes even under full deployment: nodes the valid announcement never
    reaches see no conflict.  ``POST_CONVERGENCE`` models hijacking an
    established prefix instead; detection is then near-perfect because
    every AS already holds the genuine MOAS list.
    """

    SIMULTANEOUS = "simultaneous"
    POST_CONVERGENCE = "post-convergence"


@dataclass
class HijackScenario:
    """Everything one run needs."""

    graph: ASGraph
    origins: Sequence[ASN]
    attackers: Sequence[ASN]
    deployment: DeploymentKind = DeploymentKind.NONE
    partial_fraction: float = 0.5
    strategy: AttackStrategy = field(default_factory=NaiveFalseOrigin)
    checker_mode: CheckerMode = CheckerMode.DETECT_AND_SUPPRESS
    timing: AttackTiming = AttackTiming.SIMULTANEOUS
    prefix: Prefix = TARGET_PREFIX
    seed: int = 0

    def validate(self) -> None:
        overlap = set(self.origins) & set(self.attackers)
        if overlap:
            raise ValueError(f"origins and attackers overlap: {sorted(overlap)}")
        for asn in list(self.origins) + list(self.attackers):
            if asn not in self.graph:
                raise ValueError(f"AS{asn} is not in the topology")
        if not self.origins:
            raise ValueError("need at least one genuine origin")


@dataclass(frozen=True)
class HijackOutcome:
    """The measured result of one run.

    Besides the paper's measurements, every outcome carries throughput
    counters (simulator events processed, BGP updates sent, wall-clock
    seconds) so benchmarks and perf work have a stable metric surface.
    The counters are deterministic except ``wall_seconds``, which is a
    measurement of this process, not of the simulated system.
    """

    poisoned: FrozenSet[ASN]
    n_remaining: int
    alarms: int
    routes_suppressed: int
    capable: FrozenSet[ASN]
    events_processed: int = 0
    updates_sent: int = 0
    wall_seconds: float = 0.0

    @property
    def poisoned_fraction(self) -> float:
        """Fraction of non-attacker ASes adopting a false route — the
        y-axis of Figures 9-11."""
        if self.n_remaining == 0:
            return 0.0
        return len(self.poisoned) / self.n_remaining

    @property
    def events_per_sec(self) -> float:
        """Simulator events processed per wall-clock second of this run."""
        if self.wall_seconds <= 0.0:
            return 0.0
        return self.events_processed / self.wall_seconds

    def masked_timing(self) -> "HijackOutcome":
        """A copy with every timing field zeroed.

        ``wall_seconds`` measures this process, not the simulated system;
        any determinism comparison between outcomes must go through this
        helper (or :func:`outcomes_equivalent`) or it will flake.
        """
        return dataclasses.replace(self, wall_seconds=0.0)

    def equivalent_to(self, other: "HijackOutcome") -> bool:
        """Equality modulo timing fields — the determinism comparison."""
        return self.masked_timing() == other.masked_timing()

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe rendering for run manifests."""
        return {
            "poisoned": sorted(self.poisoned),
            "n_remaining": self.n_remaining,
            "poisoned_fraction": self.poisoned_fraction,
            "alarms": self.alarms,
            "routes_suppressed": self.routes_suppressed,
            "capable_count": len(self.capable),
            "events_processed": self.events_processed,
            "updates_sent": self.updates_sent,
            "wall_seconds": self.wall_seconds,
        }


def outcomes_equivalent(
    a: Sequence[HijackOutcome], b: Sequence[HijackOutcome]
) -> bool:
    """Element-wise outcome equality with timing fields masked."""
    if len(a) != len(b):
        return False
    return all(x.equivalent_to(y) for x, y in zip(a, b))


def scenario_spec(scenario: HijackScenario) -> Dict[str, Any]:
    """A JSON-safe description of a scenario for run manifests.

    Carries everything needed to attribute (and with the original topology
    generator, re-create) the run; the graph itself is summarised by size.
    """
    return {
        "topology_size": len(scenario.graph),
        "origins": sorted(scenario.origins),
        "attackers": sorted(scenario.attackers),
        "n_attackers": len(scenario.attackers),
        "deployment": scenario.deployment.value,
        "partial_fraction": scenario.partial_fraction,
        "strategy": type(scenario.strategy).__name__,
        "checker_mode": scenario.checker_mode.value,
        "timing": scenario.timing.value,
        "prefix": str(scenario.prefix),
        "seed": scenario.seed,
    }


@dataclass
class InstrumentedRun:
    """One scenario's outcome plus its observability payload.

    ``metrics`` is the per-run instrument snapshot (deterministic);
    ``spans`` is the phase-span forest (wall fields quarantined);
    ``worker`` identifies the producing process (nondeterministic by
    nature, masked in manifest comparisons).
    """

    outcome: HijackOutcome
    metrics: Dict[str, Any] = field(default_factory=dict)
    spans: List[Dict[str, Any]] = field(default_factory=list)
    worker: int = 0


def _execute_scenario(
    scenario: HijackScenario,
    sim: Optional[Simulator] = None,
    tracer: Optional[SpanTracer] = None,
) -> HijackOutcome:
    """The run itself; ``sim``/``tracer`` are None on the plain path."""
    # wall_seconds is the one documented nondeterministic outcome field: it
    # measures this process, not the simulated system.
    started = time.perf_counter()  # repro-lint: disable=R002
    scenario.validate()
    origins = frozenset(scenario.origins)
    attackers = frozenset(scenario.attackers)
    prefix = scenario.prefix

    def span(name: str) -> ContextManager[Any]:
        return tracer.span(name) if tracer is not None else nullcontext()

    registry = PrefixOriginRegistry()
    registry.register(prefix, origins)
    oracle = GroundTruthOracle(registry)
    alarm_log = AlarmLog()

    with span("topology_build"):
        network = Network(
            scenario.graph,
            sim=sim,
            config=SpeakerConfig(mrai=0.0),
            seed=scenario.seed,
        )

        if scenario.deployment is DeploymentKind.FULL:
            plan = DeploymentPlan.full(scenario.graph.asns())
        elif scenario.deployment is DeploymentKind.PARTIAL:
            plan = DeploymentPlan.random_fraction(
                scenario.graph.asns(),
                scenario.partial_fraction,
                random.Random(scenario.seed ^ 0x5EED),
            )
        else:
            plan = DeploymentPlan.none()

        checkers: Dict[ASN, MoasChecker] = plan.apply(
            network, oracle, mode=scenario.checker_mode, shared_alarm_log=alarm_log
        )

    with span("establish_sessions"):
        network.establish_sessions()

    # Genuine origination: multiple origins agree on and attach the MOAS
    # list; a single origin attaches nothing (§4.3: "routes that originate
    # from a single AS need not attach a MOAS list").
    with span("origination"):
        communities = moas_communities(origins) if len(origins) > 1 else ()
        for origin in sorted(origins):
            network.originate(origin, prefix, communities=communities)
    if scenario.timing is AttackTiming.POST_CONVERGENCE:
        with span("initial_convergence"):
            network.run_to_convergence()

    with span("fault_injection"):
        for attacker in sorted(attackers):
            scenario.strategy.launch(network, attacker, prefix, origins)
    # Recovery: the network re-converges with the false originations (and
    # any MOAS-triggered suppression) in play.
    with span("recovery_convergence"):
        network.run_to_convergence()

    with span("measurement"):
        poisoned = frozenset(
            asn
            for asn, best_origin in network.best_origins(prefix).items()
            if asn not in attackers and best_origin in attackers
        )
    n_remaining = len(scenario.graph) - len(attackers)
    return HijackOutcome(
        poisoned=poisoned,
        n_remaining=n_remaining,
        alarms=len(alarm_log),
        routes_suppressed=sum(c.routes_suppressed for c in checkers.values()),
        capable=plan.capable,
        events_processed=network.sim.events_processed,
        updates_sent=network.total_updates_sent(),
        wall_seconds=time.perf_counter() - started,  # repro-lint: disable=R002
    )


def run_hijack_scenario(scenario: HijackScenario) -> HijackOutcome:
    """Execute one run and measure false-route adoption."""
    return _execute_scenario(scenario)


def run_hijack_scenario_instrumented(scenario: HijackScenario) -> InstrumentedRun:
    """Execute one run with metrics and phase spans enabled.

    The simulated behaviour — and therefore the outcome and the metric
    snapshot — is bit-identical to :func:`run_hijack_scenario`;
    instrumentation only observes.  Module-level and single-argument, so
    the executor can fan it out across the process pool.
    """
    metrics = MetricsRegistry()
    sim = Simulator(seed=scenario.seed, metrics=metrics)
    tracer = SpanTracer(clock=lambda: sim.now)
    outcome = _execute_scenario(scenario, sim=sim, tracer=tracer)
    return InstrumentedRun(
        outcome=outcome,
        metrics=metrics.snapshot(),
        spans=tracer.as_dicts(),
        worker=os.getpid(),
    )
