"""One hijack simulation run.

The paper's unit of measurement: on a given topology, a prefix is
legitimately originated by one or two stub ASes; M attacker ASes falsely
originate it; after convergence we measure the percentage of the remaining
(non-attacker) ASes whose best route leads to an attacker.
"""

from __future__ import annotations

import dataclasses
import enum
import os
import random
import time
from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import (
    Any,
    ContextManager,
    Dict,
    FrozenSet,
    List,
    Optional,
    Sequence,
    Union,
)

from repro.attack.models import AttackStrategy, NaiveFalseOrigin
from repro.bgp.network import Network
from repro.bgp.speaker import SpeakerConfig
from repro.core.alarms import Alarm, AlarmLog
from repro.core.checker import CheckerMode, MoasChecker
from repro.core.deployment import DeploymentPlan
from repro.core.moas_list import moas_communities
from repro.core.origin_verification import GroundTruthOracle, PrefixOriginRegistry
from repro.eventsim.simulator import Simulator
from repro.net.addresses import Prefix
from repro.net.asn import ASN
from repro.obs.metrics import MetricsRegistry
from repro.obs.spans import SpanTracer
from repro.topology.asgraph import ASGraph
from repro.warmstart import (
    BaselineKey,
    BaselineSnapshot,
    WarmStartCache,
    compute_baseline_key,
    resolve_warm_start,
    snapshot_is_seed_free,
)

#: Link propagation delay used by every harness run (the Network default,
#: pinned here because it participates in the warm-start baseline key).
LINK_DELAY = 0.01

#: A warm-start spec: a ready cache, a mode string for
#: :func:`repro.warmstart.resolve_warm_start`, or None (environment decides).
WarmStartSpec = Union[None, str, WarmStartCache]


class DeploymentKind(enum.Enum):
    """The three arms of the paper's figures."""

    NONE = "normal-bgp"
    PARTIAL = "partial-moas-detection"
    FULL = "full-moas-detection"


#: The prefix under attack in every run (its identity is arbitrary).
TARGET_PREFIX = Prefix.parse("198.51.100.0/24")


class AttackTiming(enum.Enum):
    """When the false origination is injected.

    The paper's experiments race valid and false announcements from a cold
    start (``SIMULTANEOUS``) — this is what leaves a residual of poisoned
    ASes even under full deployment: nodes the valid announcement never
    reaches see no conflict.  ``POST_CONVERGENCE`` models hijacking an
    established prefix instead; detection is then near-perfect because
    every AS already holds the genuine MOAS list.
    """

    SIMULTANEOUS = "simultaneous"
    POST_CONVERGENCE = "post-convergence"


@dataclass
class HijackScenario:
    """Everything one run needs."""

    graph: ASGraph
    origins: Sequence[ASN]
    attackers: Sequence[ASN]
    deployment: DeploymentKind = DeploymentKind.NONE
    partial_fraction: float = 0.5
    strategy: AttackStrategy = field(default_factory=NaiveFalseOrigin)
    checker_mode: CheckerMode = CheckerMode.DETECT_AND_SUPPRESS
    timing: AttackTiming = AttackTiming.SIMULTANEOUS
    prefix: Prefix = TARGET_PREFIX
    seed: int = 0

    def validate(self) -> None:
        overlap = set(self.origins) & set(self.attackers)
        if overlap:
            raise ValueError(f"origins and attackers overlap: {sorted(overlap)}")
        for asn in list(self.origins) + list(self.attackers):
            if asn not in self.graph:
                raise ValueError(f"AS{asn} is not in the topology")
        if not self.origins:
            raise ValueError("need at least one genuine origin")


@dataclass(frozen=True)
class HijackOutcome:
    """The measured result of one run.

    Besides the paper's measurements, every outcome carries throughput
    counters (simulator events processed, BGP updates sent, wall-clock
    seconds) so benchmarks and perf work have a stable metric surface.
    The counters are deterministic except ``wall_seconds``, which is a
    measurement of this process, not of the simulated system.
    """

    poisoned: FrozenSet[ASN]
    n_remaining: int
    alarms: int
    routes_suppressed: int
    capable: FrozenSet[ASN]
    events_processed: int = 0
    updates_sent: int = 0
    wall_seconds: float = 0.0

    @property
    def poisoned_fraction(self) -> float:
        """Fraction of non-attacker ASes adopting a false route — the
        y-axis of Figures 9-11."""
        if self.n_remaining == 0:
            return 0.0
        return len(self.poisoned) / self.n_remaining

    @property
    def events_per_sec(self) -> float:
        """Simulator events processed per wall-clock second of this run."""
        if self.wall_seconds <= 0.0:
            return 0.0
        return self.events_processed / self.wall_seconds

    def masked_timing(self) -> "HijackOutcome":
        """A copy with every timing field zeroed.

        ``wall_seconds`` measures this process, not the simulated system;
        any determinism comparison between outcomes must go through this
        helper (or :func:`outcomes_equivalent`) or it will flake.
        """
        return dataclasses.replace(self, wall_seconds=0.0)

    def equivalent_to(self, other: "HijackOutcome") -> bool:
        """Equality modulo timing fields — the determinism comparison."""
        return self.masked_timing() == other.masked_timing()

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe rendering for run manifests."""
        return {
            "poisoned": sorted(self.poisoned),
            "n_remaining": self.n_remaining,
            "poisoned_fraction": self.poisoned_fraction,
            "alarms": self.alarms,
            "routes_suppressed": self.routes_suppressed,
            "capable_count": len(self.capable),
            "events_processed": self.events_processed,
            "updates_sent": self.updates_sent,
            "wall_seconds": self.wall_seconds,
        }


def outcomes_equivalent(
    a: Sequence[HijackOutcome], b: Sequence[HijackOutcome]
) -> bool:
    """Element-wise outcome equality with timing fields masked."""
    if len(a) != len(b):
        return False
    return all(x.equivalent_to(y) for x, y in zip(a, b))


def scenario_spec(scenario: HijackScenario) -> Dict[str, Any]:
    """A JSON-safe description of a scenario for run manifests.

    Carries everything needed to attribute (and with the original topology
    generator, re-create) the run; the graph itself is summarised by size.
    """
    return {
        "topology_size": len(scenario.graph),
        "origins": sorted(scenario.origins),
        "attackers": sorted(scenario.attackers),
        "n_attackers": len(scenario.attackers),
        "deployment": scenario.deployment.value,
        "partial_fraction": scenario.partial_fraction,
        "strategy": type(scenario.strategy).__name__,
        "checker_mode": scenario.checker_mode.value,
        "timing": scenario.timing.value,
        "prefix": str(scenario.prefix),
        "seed": scenario.seed,
    }


@dataclass
class InstrumentedRun:
    """One scenario's outcome plus its observability payload.

    ``metrics`` is the per-run instrument snapshot (deterministic);
    ``spans`` is the phase-span forest (wall fields quarantined);
    ``worker`` identifies the producing process (nondeterministic by
    nature, masked in manifest comparisons).
    """

    outcome: HijackOutcome
    metrics: Dict[str, Any] = field(default_factory=dict)
    spans: List[Dict[str, Any]] = field(default_factory=list)
    worker: int = 0
    alarms: List[Alarm] = field(default_factory=list)
    warm_start: Dict[str, Any] = field(default_factory=dict)


def _deployment_plan(scenario: HijackScenario) -> DeploymentPlan:
    """Materialise the scenario's deployment plan (PARTIAL draws from the
    scenario seed, so the capable set is a deterministic scenario fact)."""
    if scenario.deployment is DeploymentKind.FULL:
        return DeploymentPlan.full(scenario.graph.asns())
    if scenario.deployment is DeploymentKind.PARTIAL:
        return DeploymentPlan.random_fraction(
            scenario.graph.asns(),
            scenario.partial_fraction,
            random.Random(scenario.seed ^ 0x5EED),
        )
    return DeploymentPlan.none()


def _originate_genuine(
    network: Network, origins: FrozenSet[ASN], prefix: Prefix
) -> None:
    # Genuine origination: multiple origins agree on and attach the MOAS
    # list; a single origin attaches nothing (§4.3: "routes that originate
    # from a single AS need not attach a MOAS list").
    communities = moas_communities(origins) if len(origins) > 1 else ()
    for origin in sorted(origins):
        network.originate(origin, prefix, communities=communities)


def _capture_baseline(
    network: Network,
    checkers: Dict[ASN, MoasChecker],
    alarm_log: AlarmLog,
    key: BaselineKey,
    sim: Optional[Simulator],
) -> Optional[BaselineSnapshot]:
    """Snapshot the converged baseline, or None if it is seed-dependent."""
    network_state = network.snapshot_state()
    if not snapshot_is_seed_free(network_state):
        # The baseline key omits the scenario seed; state that consumed
        # randomness must not be shared across seeds.
        return None
    metrics_state = None
    if sim is not None and sim.metrics is not None:
        metrics_state = sim.metrics.snapshot()
    return BaselineSnapshot(
        key_digest=key.digest(),
        network=network_state,
        checkers={asn: checkers[asn].snapshot_state() for asn in sorted(checkers)},
        alarms=alarm_log.snapshot_state(),
        metrics=metrics_state,
    )


def _execute_scenario(
    scenario: HijackScenario,
    sim: Optional[Simulator] = None,
    tracer: Optional[SpanTracer] = None,
    warm: Optional[WarmStartCache] = None,
    artifacts: Optional[Dict[str, Any]] = None,
) -> HijackOutcome:
    """The run itself; ``sim``/``tracer`` are None on the plain path.

    With ``warm`` set, the pre-attack baseline is looked up in (and on a
    miss, captured into) the cache.  ``artifacts``, when given, receives
    the run's alarm log and warm-start attribution for the instrumented
    wrapper — the returned outcome is identical either way.
    """
    # wall_seconds is the one documented nondeterministic outcome field: it
    # measures this process, not the simulated system.
    started = time.perf_counter()  # repro-lint: disable=R002
    scenario.validate()
    if sim is None:
        # Plain path: the scenario runner never reads the trace, so record
        # nothing — category-filtered recording is a single set probe per
        # call site.  Tracing is a Simulator argument, not a Network one,
        # which is why the sim is built here rather than left to Network.
        sim = Simulator(seed=scenario.seed, trace_categories=frozenset())
    origins = frozenset(scenario.origins)
    attackers = frozenset(scenario.attackers)
    prefix = scenario.prefix

    def span(name: str) -> ContextManager[Any]:
        return tracer.span(name) if tracer is not None else nullcontext()

    registry = PrefixOriginRegistry()
    registry.register(prefix, origins)
    oracle = GroundTruthOracle(registry)
    alarm_log = AlarmLog()
    plan = _deployment_plan(scenario)
    config = SpeakerConfig(mrai=0.0)
    instrumented = sim is not None and sim.metrics is not None

    warm_info: Dict[str, Any] = {
        "enabled": warm is not None,
        "hit": False,
        "key": None,
        "restore_seconds": 0.0,
    }
    key: Optional[BaselineKey] = None
    cached: Optional[BaselineSnapshot] = None
    if warm is not None:
        key = compute_baseline_key(
            scenario, plan.capable, config, LINK_DELAY, instrumented
        )
        warm_info["key"] = key.digest()
        cached = warm.get(key)

    if cached is not None:
        assert warm is not None
        restore_started = time.perf_counter()  # repro-lint: disable=R002
        with span("baseline_restore"):
            network = Network(
                scenario.graph,
                sim=sim,
                config=config,
                link_delay=LINK_DELAY,
                seed=scenario.seed,
            )
            checkers: Dict[ASN, MoasChecker] = plan.apply(
                network,
                oracle,
                mode=scenario.checker_mode,
                shared_alarm_log=alarm_log,
            )
            network.restore_state(cached.network)
            for asn in sorted(cached.checkers):
                checkers[asn].restore_state(cached.checkers[asn])
            alarm_log.restore_state(cached.alarms)
            if instrumented and cached.metrics is not None:
                assert sim is not None and sim.metrics is not None
                sim.metrics.restore_snapshot(cached.metrics)
        restore_seconds = time.perf_counter() - restore_started  # repro-lint: disable=R002
        warm.observe_restore_seconds(restore_seconds)
        warm_info["hit"] = True
        warm_info["restore_seconds"] = restore_seconds
    else:
        with span("topology_build"):
            network = Network(
                scenario.graph,
                sim=sim,
                config=config,
                link_delay=LINK_DELAY,
                seed=scenario.seed,
            )
            checkers = plan.apply(
                network,
                oracle,
                mode=scenario.checker_mode,
                shared_alarm_log=alarm_log,
            )
        with span("establish_sessions"):
            network.establish_sessions()
        if scenario.timing is AttackTiming.POST_CONVERGENCE:
            with span("origination"):
                _originate_genuine(network, origins, prefix)
            with span("initial_convergence"):
                network.run_to_convergence()
        if warm is not None:
            assert key is not None
            baseline = _capture_baseline(network, checkers, alarm_log, key, sim)
            if baseline is None:
                warm.note_uncacheable()
            else:
                warm.put(key, baseline)

    if scenario.timing is AttackTiming.SIMULTANEOUS:
        with span("origination"):
            _originate_genuine(network, origins, prefix)

    with span("fault_injection"):
        for attacker in sorted(attackers):
            scenario.strategy.launch(network, attacker, prefix, origins)
    # Recovery: the network re-converges with the false originations (and
    # any MOAS-triggered suppression) in play.
    with span("recovery_convergence"):
        network.run_to_convergence()

    with span("measurement"):
        poisoned = frozenset(
            asn
            for asn, best_origin in network.best_origins(prefix).items()
            if asn not in attackers and best_origin in attackers
        )
    n_remaining = len(scenario.graph) - len(attackers)
    if artifacts is not None:
        artifacts["alarm_log"] = alarm_log
        artifacts["warm_info"] = warm_info
    return HijackOutcome(
        poisoned=poisoned,
        n_remaining=n_remaining,
        alarms=len(alarm_log),
        routes_suppressed=sum(c.routes_suppressed for c in checkers.values()),
        capable=plan.capable,
        events_processed=network.sim.events_processed,
        updates_sent=network.total_updates_sent(),
        wall_seconds=time.perf_counter() - started,  # repro-lint: disable=R002
    )


def run_hijack_scenario(
    scenario: HijackScenario,
    warm_start: WarmStartSpec = None,
    shards: int = 1,
) -> HijackOutcome:
    """Execute one run and measure false-route adoption.

    ``warm_start`` selects a baseline cache (see
    :func:`repro.warmstart.resolve_warm_start`); the default None defers to
    the ``REPRO_WARMSTART`` environment variable.  Warm or cold, the
    outcome is bit-identical (timing fields aside).

    ``shards > 1`` executes the run across that many forked worker
    processes (see :mod:`repro.experiments.sharded_run`) — bit-identical
    to the serial engine, faster on multi-core machines for large
    topologies.  The baseline cache is shared between the two paths.
    """
    if shards < 1:
        raise ValueError(f"shard count must be >= 1, got {shards}")
    if shards > 1:
        # Imported lazily: sharded_run imports this module for the shared
        # scenario/outcome types.
        from repro.experiments.sharded_run import run_hijack_scenario_sharded

        return run_hijack_scenario_sharded(scenario, shards, warm_start=warm_start)
    warm = resolve_warm_start(warm_start)
    return _execute_scenario(scenario, warm=warm)


def run_hijack_scenario_instrumented(
    scenario: HijackScenario,
    warm_start: WarmStartSpec = None,
    shards: int = 1,
) -> InstrumentedRun:
    """Execute one run with metrics and phase spans enabled.

    The simulated behaviour — and therefore the outcome and the metric
    snapshot — is bit-identical to :func:`run_hijack_scenario`;
    instrumentation only observes.  Module-level and single-argument, so
    the executor can fan it out across the process pool.

    With ``shards > 1`` the metric snapshot is the cross-shard merge
    (counters and histogram buckets sum; compare against serial snapshots
    through :func:`repro.experiments.sharded_run.masked_metrics`) and the
    span list is empty — phase spans are a single-process observation.
    """
    if shards < 1:
        raise ValueError(f"shard count must be >= 1, got {shards}")
    if shards > 1:
        from repro.experiments.sharded_run import run_sharded

        sharded = run_sharded(
            scenario, shards, warm_start=warm_start, instrumented=True
        )
        assert sharded.metrics is not None
        return InstrumentedRun(
            outcome=sharded.outcome,
            metrics=sharded.metrics,
            spans=[],
            worker=os.getpid(),
            alarms=sharded.alarms,
            warm_start=sharded.warm_info,
        )
    warm = resolve_warm_start(warm_start)
    metrics = MetricsRegistry()
    sim = Simulator(
        seed=scenario.seed, metrics=metrics, trace_categories=frozenset()
    )
    tracer = SpanTracer(clock=lambda: sim.now)
    artifacts: Dict[str, Any] = {}
    outcome = _execute_scenario(
        scenario, sim=sim, tracer=tracer, warm=warm, artifacts=artifacts
    )
    alarm_log: AlarmLog = artifacts["alarm_log"]
    return InstrumentedRun(
        outcome=outcome,
        metrics=metrics.snapshot(),
        spans=tracer.as_dicts(),
        worker=os.getpid(),
        alarms=alarm_log.all(),
        warm_start=artifacts["warm_info"],
    )
