"""One hijack run, sharded across forked worker processes.

The driver behind ``--shards N``: speakers are partitioned across N
workers (:func:`repro.eventsim.sharded.partition_speakers`), each worker
owning a :class:`~repro.bgp.shardnet.ShardNetwork` slice on its own
:class:`~repro.eventsim.sharded.ShardSimulator`.  The parent process is a
pure coordinator — it holds no network state, only the barrier clock,
the mail router and the merged logs.

Barrier protocol (one *tick* = one simulated instant, two round trips):

1. Workers finish a tick and report **status**: their drained outbox
   (cross-shard mail, batched per destination) and the time of their next
   local event.
2. The coordinator routes the mail and picks the next tick time ``T`` —
   the minimum over reported next-event times and routed delivery times.
   Positive link delay is the *lookahead*: mail produced at a tick is
   always due strictly later, so once every status is in, the set of
   events due at ``T`` is closed.  No times and no mail means global
   quiescence.
3. Workers that may have events due at ``T`` receive the tick (plus their
   inbound mail), insert the mail, and reply with their sorted due-key
   lists; the coordinator k-way merges the lists into global ranks and
   sends each worker its slice; workers fire the tick's events with exact
   global ranks and report status again.  When only one worker can be due
   at ``T`` its local order *is* the global order, so the rank exchange is
   skipped (a **solo tick**, one round trip — the common case once a
   wavefront localises).

Determinism: every scheduled event carries an order key that reproduces
the serial engine's ``(time, priority, seq)`` total order (see
``repro.eventsim.sharded``), so outcomes, alarm logs and masked metric
snapshots are bit-identical to the serial engine's.  Alarms are tagged
with their firing's ``(epoch, rank)`` at raise time and merged back into
emission order; metric counters and histogram buckets sum across shards.

POSIX only: workers are started with the ``fork`` method so the graph and
scenario are inherited copy-on-write instead of pickled.
"""

from __future__ import annotations

import gc
import multiprocessing
import multiprocessing.connection
import os
import time
import traceback
from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Any,
    Dict,
    FrozenSet,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from repro.bgp.shardnet import (
    MailRecord,
    ShardNetwork,
    merge_network_snapshots,
    split_network_snapshot,
)
from repro.bgp.speaker import SpeakerConfig
from repro.core.alarms import Alarm, AlarmLog
from repro.core.checker import MoasChecker
from repro.core.moas_list import moas_communities
from repro.core.origin_verification import GroundTruthOracle, PrefixOriginRegistry
from repro.eventsim.sharded import ShardSimulator, partition_speakers
from repro.net.asn import ASN
from repro.obs.metrics import MetricsRegistry
from repro.warmstart import (
    BaselineKey,
    BaselineSnapshot,
    WarmStartCache,
    compute_baseline_key,
    resolve_warm_start,
    snapshot_is_seed_free,
)

if TYPE_CHECKING:  # runner imports this module lazily; avoid the cycle
    from repro.experiments.runner import (
        HijackOutcome,
        HijackScenario,
        WarmStartSpec,
    )

#: An alarm's merge tag: the raising firing's (epoch, rank) plus a local
#: emission index — sorting merged per-shard logs by tag reproduces the
#: serial emission order exactly (a firing runs on exactly one shard).
AlarmTag = Tuple[int, int, int]

#: Metric names whose values are legitimately shard-dependent and are
#: dropped by :func:`masked_metrics` before serial-vs-sharded comparison:
#: ``sim.queue_depth`` is sampled per *process-local* event cadence, and
#: ``shard.*`` instruments do not exist serially at all.
NONPORTABLE_METRICS = ("sim.queue_depth",)
SHARD_METRIC_PREFIX = "shard."


class ShardProtocolError(RuntimeError):
    """A worker died or the barrier protocol was violated."""


@dataclass
class ShardStats:
    """Coordinator-side counters for one sharded run (stats only — never
    part of an outcome or a metrics comparison)."""

    n_shards: int = 0
    shard_sizes: List[int] = field(default_factory=list)
    cut_edges: int = 0
    total_edges: int = 0
    ticks: int = 0
    solo_ticks: int = 0
    cross_messages: int = 0
    cross_batches: int = 0
    max_batch_size: int = 0
    barrier_wait_seconds: float = 0.0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "n_shards": self.n_shards,
            "shard_sizes": list(self.shard_sizes),
            "cut_edges": self.cut_edges,
            "total_edges": self.total_edges,
            "ticks": self.ticks,
            "solo_ticks": self.solo_ticks,
            "cross_messages": self.cross_messages,
            "cross_batches": self.cross_batches,
            "max_batch_size": self.max_batch_size,
            "mean_batch_size": (
                self.cross_messages / self.cross_batches
                if self.cross_batches
                else 0.0
            ),
            "barrier_wait_seconds": round(self.barrier_wait_seconds, 4),
        }


@dataclass
class ShardedRun:
    """Everything a sharded execution produced."""

    outcome: "HijackOutcome"
    alarms: List[Alarm]
    metrics: Optional[Dict[str, Any]]
    warm_info: Dict[str, Any]
    stats: ShardStats


def masked_metrics(snapshot: Mapping[str, Any]) -> Dict[str, Any]:
    """A metrics snapshot with shard-dependent instruments removed.

    Serial-vs-sharded determinism comparisons must go through this (the
    moral twin of ``HijackOutcome.masked_timing``) or they will flake on
    queue-depth sampling and shard-only instruments.
    """
    return {
        name: value
        for name, value in snapshot.items()
        if name not in NONPORTABLE_METRICS
        and not name.startswith(SHARD_METRIC_PREFIX)
    }


def merge_metric_snapshots(
    snapshots: Sequence[Mapping[str, Any]]
) -> Dict[str, Any]:
    """Fold per-shard metric snapshots into one registry-shaped snapshot.

    Counters and histogram buckets are extensive quantities and sum;
    gauges keep the maximum of each field (only ``sim.queue_depth`` is a
    gauge on this path, and it is masked from comparisons anyway).
    """
    merged: Dict[str, Any] = {}
    for snapshot in snapshots:
        for name, value in snapshot.items():
            held = merged.get(name)
            if held is None:
                merged[name] = (
                    dict(value) if isinstance(value, dict) else value
                )
            elif isinstance(value, dict):
                if "buckets" in value:
                    held["count"] += value["count"]
                    held["sum"] += value["sum"]
                    held["buckets"] = [
                        a + b for a, b in zip(held["buckets"], value["buckets"])
                    ]
                else:
                    held["value"] = max(held["value"], value["value"])
                    held["max"] = max(held["max"], value["max"])
            else:
                merged[name] = held + value
    return {name: merged[name] for name in sorted(merged)}


class _TaggedAlarmLog(AlarmLog):
    """An alarm log that records each alarm's global position at raise
    time, so per-shard logs merge back into exact serial order."""

    def __init__(self, sim: ShardSimulator) -> None:
        super().__init__()
        self._sim = sim
        self.tags: List[AlarmTag] = []

    def raise_alarm(self, alarm: Alarm) -> None:
        super().raise_alarm(alarm)
        epoch, rank = self._sim.order_context
        self.tags.append((epoch, rank, len(self.tags)))

    def tagged(self) -> List[Tuple[AlarmTag, Alarm]]:
        return list(zip(self.tags, self.all()))


def merge_tagged_alarms(
    per_shard: Sequence[Sequence[Tuple[AlarmTag, Alarm]]]
) -> List[Alarm]:
    """Merge per-shard tagged alarm lists into serial emission order."""
    combined = [entry for shard in per_shard for entry in shard]
    combined.sort(key=lambda entry: entry[0])
    return [alarm for _, alarm in combined]


# -- worker process -----------------------------------------------------------


def _worker_main(
    conn: multiprocessing.connection.Connection,
    shard_id: int,
    n_shards: int,
    scenario: "HijackScenario",
    assignment: Dict[ASN, int],
    capable: FrozenSet[ASN],
    instrumented: bool,
) -> None:
    """One shard: build the slice, then obey coordinator commands."""
    # Same rationale as Simulator.run's suspension, applied for the whole
    # worker lifetime: per-event garbage is acyclic, and gen-2 scans of the
    # O(topology) graph would otherwise recur every barrier window.
    gc.disable()
    try:
        from repro.core.deployment import DeploymentPlan
        from repro.experiments.runner import LINK_DELAY

        metrics = MetricsRegistry() if instrumented else None
        sim = ShardSimulator(
            shard_id,
            seed=scenario.seed,
            trace_categories=frozenset(),
            metrics=metrics,
        )
        config = SpeakerConfig(mrai=0.0)
        network = ShardNetwork(
            scenario.graph,
            assignment,
            shard_id,
            sim,
            config=config,
            link_delay=LINK_DELAY,
        )
        origins = frozenset(scenario.origins)
        attackers = frozenset(scenario.attackers)
        prefix = scenario.prefix
        registry = PrefixOriginRegistry()
        registry.register(prefix, origins)
        oracle = GroundTruthOracle(registry)
        alarm_log = _TaggedAlarmLog(sim)
        plan = DeploymentPlan(capable=capable)
        checkers: Dict[ASN, MoasChecker] = plan.apply(
            network,
            oracle,
            mode=scenario.checker_mode,
            shared_alarm_log=alarm_log,
        )

        # "is not None" throughout: an empty MetricsRegistry is falsy.
        m_in = (
            metrics.counter("shard.cross_messages_in")
            if metrics is not None
            else None
        )
        m_ticks = metrics.counter("shard.ticks") if metrics is not None else None
        m_solo = (
            metrics.counter("shard.solo_ticks") if metrics is not None else None
        )

        def status() -> Tuple[str, Dict[int, List[MailRecord]], Optional[float]]:
            return ("status", network.outbox.drain(), sim.queue.peek_time())

        def take_mail(records: List[MailRecord]) -> None:
            if records:
                network.deliver_inbound(records)
                if m_in is not None:
                    m_in.inc(len(records))

        while True:
            command = conn.recv()
            op = command[0]
            if op == "ops":
                _, phase, epoch, now = command
                sim.begin_ops(epoch, now)
                if phase == "establish":
                    network.establish_ops()
                elif phase == "originate":
                    communities = (
                        moas_communities(origins) if len(origins) > 1 else ()
                    )
                    network.originate_ops(sorted(origins), prefix, communities)
                elif phase == "attack":
                    network.attack_ops(
                        scenario.strategy, sorted(attackers), prefix, origins
                    )
                else:
                    raise ShardProtocolError(f"unknown ops phase {phase!r}")
                conn.send(status())
            elif op == "tick":
                _, tick_time, epoch, inbound = command
                take_mail(inbound)
                if m_ticks is not None:
                    m_ticks.inc()
                conn.send(("due", sim.due_report(tick_time)))
                _, ranks, due = conn.recv()
                sim.process_tick(tick_time, epoch, due, ranks)
                conn.send(status())
            elif op == "solo":
                _, tick_time, epoch, inbound = command
                take_mail(inbound)
                if m_ticks is not None:
                    m_ticks.inc()
                if m_solo is not None:
                    m_solo.inc()
                due = sim.due_report(tick_time)
                sim.process_tick(tick_time, epoch, due, sim.solo_ranks(due))
                conn.send(status())
            elif op == "mail":
                _, inbound = command
                take_mail(inbound)
                conn.send(status())
            elif op == "check_established":
                network.check_established()
                conn.send(("ok",))
            elif op == "measure":
                conn.send(
                    (
                        "measured",
                        {
                            "best_origins": network.best_origins(prefix),
                            "updates_sent": network.total_updates_sent(),
                            "events_processed": sim.events_processed,
                            "routes_suppressed": sum(
                                checker.routes_suppressed
                                for checker in checkers.values()
                            ),
                            "alarms": alarm_log.tagged(),
                            "metrics": (
                                metrics.snapshot()
                                if metrics is not None
                                else None
                            ),
                        },
                    )
                )
            elif op == "snapshot":
                conn.send(
                    (
                        "slice",
                        {
                            "network": network.snapshot_state(),
                            "checkers": {
                                asn: checkers[asn].snapshot_state()
                                for asn in sorted(checkers)
                            },
                            "alarms": alarm_log.tagged(),
                            "metrics": (
                                metrics.snapshot()
                                if metrics is not None
                                else None
                            ),
                        },
                    )
                )
            elif op == "restore":
                _, payload = command
                network.restore_state(payload["network"])
                for asn, state in payload["checkers"].items():
                    checkers[asn].restore_state(state)
                if payload["metrics"] is not None:
                    assert metrics is not None
                    metrics.restore_snapshot(payload["metrics"])
                conn.send(("ok",))
            elif op == "quit":
                conn.send(("bye",))
                return
            else:
                raise ShardProtocolError(f"unknown command {op!r}")
    except BaseException:
        try:
            conn.send(("error", traceback.format_exc()))
        except (BrokenPipeError, OSError):  # pragma: no cover - parent gone
            pass
        raise
    finally:
        conn.close()


# -- coordinator --------------------------------------------------------------


class _Shard:
    """Coordinator-side handle: one worker process plus its pipe."""

    def __init__(
        self,
        shard_id: int,
        process: multiprocessing.process.BaseProcess,
        conn: multiprocessing.connection.Connection,
        stats: ShardStats,
    ) -> None:
        self.shard_id = shard_id
        self.process = process
        self.conn = conn
        self._stats = stats

    def send(self, command: Tuple[Any, ...]) -> None:
        self.conn.send(command)

    def recv(self) -> Tuple[Any, ...]:
        # Wall-clock spent blocked on workers is the barrier-stall stat —
        # coordinator bookkeeping, never part of simulated behaviour.
        waited = time.perf_counter()  # repro-lint: disable=R002
        try:
            reply = self.conn.recv()
        except EOFError:
            raise ShardProtocolError(
                f"shard {self.shard_id} died without a reply "
                f"(exitcode={self.process.exitcode})"
            )
        finally:
            self._stats.barrier_wait_seconds += (
                time.perf_counter() - waited  # repro-lint: disable=R002
            )
        if reply[0] == "error":
            raise ShardProtocolError(
                f"shard {self.shard_id} failed:\n{reply[1]}"
            )
        return reply


class _Coordinator:
    """Owns the worker fleet, the barrier clock and the merged logs."""

    def __init__(
        self,
        scenario: "HijackScenario",
        n_shards: int,
        capable: FrozenSet[ASN],
        instrumented: bool,
    ) -> None:
        if n_shards < 1:
            raise ValueError(f"need at least one shard, got {n_shards}")
        graph = scenario.graph
        self.scenario = scenario
        self.n_shards = n_shards
        self.assignment: Dict[ASN, int] = partition_speakers(
            graph.asns(), graph.edges(), n_shards
        )
        self.stats = ShardStats(n_shards=n_shards)
        sizes = [0] * n_shards
        for shard in self.assignment.values():
            sizes[shard] += 1
        self.stats.shard_sizes = sizes
        edges = graph.edges()
        self.stats.total_edges = len(edges)
        self.stats.cut_edges = sum(
            1 for a, b in edges if self.assignment[a] != self.assignment[b]
        )
        self.now = 0.0
        self.epoch = 0
        # Mail routed but not yet handed to its destination worker.
        self.inbound: Dict[int, List[MailRecord]] = {
            shard: [] for shard in range(n_shards)
        }
        self.peek: Dict[int, Optional[float]] = {}
        self.shards: List[_Shard] = []
        context = multiprocessing.get_context("fork")
        for shard_id in range(n_shards):
            parent_conn, child_conn = context.Pipe()
            process = context.Process(
                target=_worker_main,
                args=(
                    child_conn,
                    shard_id,
                    n_shards,
                    scenario,
                    self.assignment,
                    capable,
                    instrumented,
                ),
                daemon=True,
            )
            process.start()
            child_conn.close()
            self.shards.append(
                _Shard(shard_id, process, parent_conn, self.stats)
            )

    # -- plumbing ------------------------------------------------------------

    def shutdown(self) -> None:
        for shard in self.shards:
            try:
                shard.send(("quit",))
                shard.recv()
            except (ShardProtocolError, BrokenPipeError, OSError):
                pass
            finally:
                shard.conn.close()
        for shard in self.shards:
            shard.process.join(timeout=10)
            if shard.process.is_alive():  # pragma: no cover - hang guard
                shard.process.terminate()
                shard.process.join()

    def _absorb_status(self, shard_id: int, reply: Tuple[Any, ...]) -> None:
        if reply[0] != "status":
            raise ShardProtocolError(
                f"shard {shard_id}: expected status, got {reply[0]!r}"
            )
        _, mail, peek_time = reply
        self.peek[shard_id] = peek_time
        for dest, records in sorted(mail.items()):
            self.inbound[dest].extend(records)
            self.stats.cross_messages += len(records)
            self.stats.cross_batches += 1
            self.stats.max_batch_size = max(
                self.stats.max_batch_size, len(records)
            )

    # -- phases --------------------------------------------------------------

    def inject_phase(self, phase: str) -> None:
        """Broadcast one global setup-ops phase (no ticking).

        Kept separate from :meth:`run_to_quiescence` because SIMULTANEOUS
        timing *races* origination against the attack: both phases inject
        back-to-back at the same global instant and only then does the
        network converge — exactly the serial runner's phase order.
        """
        self.epoch += 1
        for shard in self.shards:
            shard.send(("ops", phase, self.epoch, self.now))
        for shard in self.shards:
            self._absorb_status(shard.shard_id, shard.recv())

    def run_phase(self, phase: str) -> None:
        """Inject one global setup phase, then drive ticks to quiescence."""
        self.inject_phase(phase)
        self._run_to_quiescence()

    def run_to_quiescence(self) -> None:
        self._run_to_quiescence()

    def _run_to_quiescence(self) -> None:
        while True:
            times = [t for t in self.peek.values() if t is not None]
            times.extend(
                record[2]
                for records in self.inbound.values()
                for record in records
            )
            if not times:
                return
            tick = min(times)
            self.epoch += 1
            self.now = tick
            self.stats.ticks += 1
            due_shards = [
                shard
                for shard in self.shards
                if self.peek[shard.shard_id] == tick
                or any(
                    record[2] == tick
                    for record in self.inbound[shard.shard_id]
                )
            ]
            mail_shards = [
                shard
                for shard in self.shards
                if shard not in due_shards and self.inbound[shard.shard_id]
            ]

            def take_inbound(shard: _Shard) -> List[MailRecord]:
                records = self.inbound[shard.shard_id]
                self.inbound[shard.shard_id] = []
                return records

            if len(due_shards) == 1:
                # Solo tick: the one due shard's local order is already the
                # global order, so the rank exchange round trip is skipped.
                self.stats.solo_ticks += 1
                solo = due_shards[0]
                solo.send(("solo", tick, self.epoch, take_inbound(solo)))
                for shard in mail_shards:
                    shard.send(("mail", take_inbound(shard)))
                self._absorb_status(solo.shard_id, solo.recv())
            else:
                for shard in due_shards:
                    shard.send(("tick", tick, self.epoch, take_inbound(shard)))
                for shard in mail_shards:
                    shard.send(("mail", take_inbound(shard)))
                reports: Dict[int, List[Any]] = {}
                for shard in due_shards:
                    reply = shard.recv()
                    if reply[0] != "due":
                        raise ShardProtocolError(
                            f"shard {shard.shard_id}: expected due report, "
                            f"got {reply[0]!r}"
                        )
                    reports[shard.shard_id] = reply[1]
                ranks = self._merge_ranks(reports)
                for shard in due_shards:
                    shard.send(
                        ("ranks", ranks[shard.shard_id], reports[shard.shard_id])
                    )
                for shard in due_shards:
                    self._absorb_status(shard.shard_id, shard.recv())
            for shard in mail_shards:
                self._absorb_status(shard.shard_id, shard.recv())

    @staticmethod
    def _merge_ranks(
        reports: Dict[int, List[Any]]
    ) -> Dict[int, List[int]]:
        """K-way merge of sorted per-shard due-key lists into global ranks."""
        entries = [
            (key, shard_id, index)
            for shard_id, keys in reports.items()
            for index, key in enumerate(keys)
        ]
        entries.sort(key=lambda entry: entry[0])
        ranks = {
            shard_id: [0] * len(keys) for shard_id, keys in reports.items()
        }
        for global_rank, (_, shard_id, index) in enumerate(entries):
            ranks[shard_id][index] = global_rank
        return ranks

    # -- state exchange ------------------------------------------------------

    def broadcast_collect(
        self, command: Tuple[Any, ...], expected: str
    ) -> List[Any]:
        for shard in self.shards:
            shard.send(command)
        payloads = []
        for shard in self.shards:
            reply = shard.recv()
            if reply[0] != expected:
                raise ShardProtocolError(
                    f"shard {shard.shard_id}: expected {expected!r}, "
                    f"got {reply[0]!r}"
                )
            payloads.append(reply[1] if len(reply) > 1 else None)
        return payloads

    def capture_baseline(
        self, key: BaselineKey, instrumented: bool
    ) -> Optional[BaselineSnapshot]:
        """Merge per-shard slices into a serial-format baseline snapshot."""
        slices = self.broadcast_collect(("snapshot",), "slice")
        network_state = merge_network_snapshots(
            [part["network"] for part in slices]
        )
        if not snapshot_is_seed_free(network_state):
            return None
        checkers: Dict[ASN, Dict[str, Any]] = {}
        for part in slices:
            checkers.update(part["checkers"])
        alarms = merge_tagged_alarms([part["alarms"] for part in slices])
        metrics_state = None
        if instrumented:
            metrics_state = merge_metric_snapshots(
                [part["metrics"] for part in slices]
            )
        return BaselineSnapshot(
            key_digest=key.digest(),
            network=network_state,
            checkers={asn: checkers[asn] for asn in sorted(checkers)},
            alarms=alarms,
            metrics=metrics_state,
        )

    def restore_baseline(self, cached: BaselineSnapshot) -> None:
        """Split a serial-format baseline across the shard fleet."""
        graph = self.scenario.graph
        for shard in self.shards:
            shard_id = shard.shard_id
            payload = {
                "network": split_network_snapshot(
                    cached.network, graph, self.assignment, shard_id
                ),
                "checkers": {
                    asn: state
                    for asn, state in cached.checkers.items()
                    if self.assignment[asn] == shard_id
                },
                # The full metric baseline rides on shard 0 (merge sums
                # counters, so splitting them would double-count).
                "metrics": cached.metrics if shard_id == 0 else None,
            }
            shard.send(("restore", payload))
        for shard in self.shards:
            reply = shard.recv()
            if reply[0] != "ok":
                raise ShardProtocolError(
                    f"shard {shard.shard_id}: restore failed: {reply!r}"
                )
        self.now = float(cached.network["sim"]["now"])


def run_sharded(
    scenario: "HijackScenario",
    n_shards: int,
    warm_start: "WarmStartSpec" = None,
    instrumented: bool = False,
) -> ShardedRun:
    """Execute one hijack scenario across ``n_shards`` worker processes.

    Phase structure, warm-start behaviour and the measured outcome mirror
    :func:`repro.experiments.runner._execute_scenario` exactly — a sharded
    run is bit-identical to the serial engine (outcome, alarm order,
    masked metrics), it just spends less wall time getting there.  The
    baseline cache is shared with serial runs: captures merge into the
    serial snapshot format and restores split it back per shard.
    """
    from repro.experiments.runner import (
        LINK_DELAY,
        AttackTiming,
        HijackOutcome,
        _deployment_plan,
    )

    started = time.perf_counter()  # repro-lint: disable=R002
    scenario.validate()
    config = SpeakerConfig(mrai=0.0)
    if config.hold_time > 0:  # pragma: no cover - harness pins hold_time=0
        raise ValueError(
            "sharded runs require hold_time=0: keepalive timers never "
            "quiesce, so the barrier loop would not terminate"
        )
    plan = _deployment_plan(scenario)
    warm = resolve_warm_start(warm_start)
    warm_info: Dict[str, Any] = {
        "enabled": warm is not None,
        "hit": False,
        "key": None,
        "restore_seconds": 0.0,
    }
    key: Optional[BaselineKey] = None
    cached: Optional[BaselineSnapshot] = None
    if warm is not None:
        key = compute_baseline_key(
            scenario, plan.capable, config, LINK_DELAY, instrumented
        )
        warm_info["key"] = key.digest()
        cached = warm.get(key)

    attackers = frozenset(scenario.attackers)
    baseline_alarms: List[Alarm] = []
    coordinator = _Coordinator(scenario, n_shards, plan.capable, instrumented)
    try:
        if cached is not None:
            assert warm is not None
            restore_started = time.perf_counter()  # repro-lint: disable=R002
            coordinator.restore_baseline(cached)
            baseline_alarms = list(cached.alarms)
            restore_seconds = (
                time.perf_counter() - restore_started  # repro-lint: disable=R002
            )
            warm.observe_restore_seconds(restore_seconds)
            warm_info["hit"] = True
            warm_info["restore_seconds"] = restore_seconds
        else:
            coordinator.run_phase("establish")
            coordinator.broadcast_collect(("check_established",), "ok")
            if scenario.timing is AttackTiming.POST_CONVERGENCE:
                coordinator.run_phase("originate")
            if warm is not None:
                assert key is not None
                baseline = coordinator.capture_baseline(key, instrumented)
                if baseline is None:
                    warm.note_uncacheable()
                else:
                    warm.put(key, baseline)

        if scenario.timing is AttackTiming.SIMULTANEOUS:
            coordinator.inject_phase("originate")
        coordinator.inject_phase("attack")
        coordinator.run_to_quiescence()

        reports = coordinator.broadcast_collect(("measure",), "measured")
    finally:
        coordinator.shutdown()

    best_origins: Dict[ASN, Optional[ASN]] = {}
    for report in reports:
        best_origins.update(report["best_origins"])
    poisoned = frozenset(
        asn
        for asn, best_origin in best_origins.items()
        if asn not in attackers and best_origin in attackers
    )
    alarms = baseline_alarms + merge_tagged_alarms(
        [report["alarms"] for report in reports]
    )
    metrics = None
    if instrumented:
        metrics = merge_metric_snapshots(
            [report["metrics"] for report in reports]
        )
    outcome = HijackOutcome(
        poisoned=poisoned,
        n_remaining=len(scenario.graph) - len(attackers),
        alarms=len(alarms),
        routes_suppressed=sum(r["routes_suppressed"] for r in reports),
        capable=plan.capable,
        events_processed=sum(r["events_processed"] for r in reports),
        updates_sent=sum(r["updates_sent"] for r in reports),
        wall_seconds=time.perf_counter() - started,  # repro-lint: disable=R002
    )
    return ShardedRun(
        outcome=outcome,
        alarms=alarms,
        metrics=metrics,
        warm_info=warm_info,
        stats=coordinator.stats,
    )


def run_hijack_scenario_sharded(
    scenario: "HijackScenario",
    n_shards: int,
    warm_start: "WarmStartSpec" = None,
) -> "HijackOutcome":
    """The sharded twin of :func:`repro.experiments.runner.run_hijack_scenario`."""
    return run_sharded(scenario, n_shards, warm_start=warm_start).outcome
