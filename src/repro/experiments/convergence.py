"""BGP convergence measurement.

The paper's figures measure converged state; this module measures the
*path to* convergence — wall-clock (simulated) time and message cost —
because the MRAI pacing that RFC 4271 mandates trades those two against
each other, and the simulator must reproduce that classic trade-off to be
a credible BGP substrate.

Two workloads:

* ``measure_announcement_convergence`` — a fresh prefix propagates to all;
* ``measure_withdrawal_convergence`` — the origin withdraws; path-vector
  protocols famously explore transient alternatives before giving up
  (the path-exploration problem), which MRAI dampens.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.bgp.network import Network
from repro.bgp.speaker import SpeakerConfig
from repro.net.addresses import Prefix
from repro.net.asn import ASN
from repro.topology.asgraph import ASGraph

DEFAULT_PREFIX = Prefix.parse("203.0.113.0/24")


@dataclass(frozen=True)
class ConvergenceResult:
    """Cost of one convergence episode."""

    converged_at: float
    updates_sent: int
    events_processed: int
    ases_with_route: int

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ConvergenceResult(t={self.converged_at:.3f}s, "
            f"{self.updates_sent} updates)"
        )


def _last_best_change(network: Network) -> float:
    times = [
        record.time
        for record in network.sim.trace.by_category("bgp.best_changed")
    ]
    return max(times) if times else network.sim.now


def measure_announcement_convergence(
    graph: ASGraph,
    mrai: float = 0.0,
    origin: Optional[ASN] = None,
    prefix: Prefix = DEFAULT_PREFIX,
    link_delay: float = 0.01,
    seed: int = 0,
) -> ConvergenceResult:
    """Originate a prefix and measure until the network quiesces."""
    network = Network(
        graph,
        config=SpeakerConfig(mrai=mrai),
        link_delay=link_delay,
        seed=seed,
    )
    network.establish_sessions()
    if origin is None:
        stubs = graph.stub_asns()
        origin = stubs[0] if stubs else graph.asns()[0]

    updates_before = network.total_updates_sent()
    events_before = network.sim.events_processed
    start = network.sim.now
    network.sim.trace.clear()

    network.originate(origin, prefix)
    network.run_to_convergence()

    with_route = sum(
        1 for best in network.best_origins(prefix).values() if best is not None
    )
    return ConvergenceResult(
        converged_at=_last_best_change(network) - start,
        updates_sent=network.total_updates_sent() - updates_before,
        events_processed=network.sim.events_processed - events_before,
        ases_with_route=with_route,
    )


def measure_withdrawal_convergence(
    graph: ASGraph,
    mrai: float = 0.0,
    origin: Optional[ASN] = None,
    prefix: Prefix = DEFAULT_PREFIX,
    link_delay: float = 0.01,
    seed: int = 0,
) -> ConvergenceResult:
    """Measure the withdrawal (route-death) phase after full propagation."""
    network = Network(
        graph,
        config=SpeakerConfig(mrai=mrai),
        link_delay=link_delay,
        seed=seed,
    )
    network.establish_sessions()
    if origin is None:
        stubs = graph.stub_asns()
        origin = stubs[0] if stubs else graph.asns()[0]
    network.originate(origin, prefix)
    network.run_to_convergence()

    updates_before = network.total_updates_sent()
    events_before = network.sim.events_processed
    start = network.sim.now
    network.sim.trace.clear()

    network.speaker(origin).withdraw_origination(prefix)
    network.run_to_convergence()

    with_route = sum(
        1 for best in network.best_origins(prefix).values() if best is not None
    )
    return ConvergenceResult(
        converged_at=_last_best_change(network) - start,
        updates_sent=network.total_updates_sent() - updates_before,
        events_processed=network.sim.events_processed - events_before,
        ases_with_route=with_route,
    )
