"""The §5 simulation experiments.

* :mod:`repro.experiments.runner` — one hijack simulation: topology +
  deployment + origins + attackers → fraction of poisoned ASes;
* :mod:`repro.experiments.sweep` — attacker-fraction sweeps with the
  paper's 15-run averaging (3 origin draws × 5 attacker draws);
* :mod:`repro.experiments.executor` — fans independent scenario runs out
  over a process pool with bit-identical, order-preserving results;
* :mod:`repro.experiments.exp_effectiveness` — Experiment 1 (Figure 9);
* :mod:`repro.experiments.exp_topology_size` — Experiment 2 (Figure 10);
* :mod:`repro.experiments.exp_partial` — Experiment 3 (Figure 11);
* :mod:`repro.experiments.measurement_repro` — the §3 study (Figures 4-5);
* :mod:`repro.experiments.reporting` — plain-text tables and series.
"""

from repro.experiments.runner import (
    AttackTiming,
    DeploymentKind,
    HijackOutcome,
    HijackScenario,
    run_hijack_scenario,
)
from repro.experiments.executor import (
    execute_scenarios,
    parallel_map,
    resolve_workers,
)
from repro.experiments.sweep import SweepConfig, SweepPoint, SweepResult, run_sweep
from repro.experiments.exp_effectiveness import figure9
from repro.experiments.exp_topology_size import figure10
from repro.experiments.exp_partial import figure11
from repro.experiments.measurement_repro import figure4, figure5
from repro.experiments.reporting import format_series_table, format_sweep_table

__all__ = [
    "HijackScenario",
    "HijackOutcome",
    "DeploymentKind",
    "AttackTiming",
    "run_hijack_scenario",
    "SweepConfig",
    "SweepPoint",
    "SweepResult",
    "run_sweep",
    "execute_scenarios",
    "parallel_map",
    "resolve_workers",
    "figure9",
    "figure10",
    "figure11",
    "figure4",
    "figure5",
    "format_sweep_table",
    "format_series_table",
]
