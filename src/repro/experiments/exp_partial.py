"""Experiment 3 — partial deployment (Figure 11).

"To simulate partial deployment, we randomly select 50% of the nodes to
have the capability of processing MOAS List ... The other nodes ignore
the MOAS List".  One panel per topology (46-AS and 63-AS), three curves:
Normal BGP, Half MOAS Detection, Full MOAS Detection.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.experiments.runner import DeploymentKind
from repro.experiments.sweep import (
    DEFAULT_ATTACKER_FRACTIONS,
    SweepConfig,
    SweepResult,
    run_sweep,
)
from repro.topology.asgraph import ASGraph
from repro.topology.generators import generate_paper_topology

FIG11_TOPOLOGY_SIZES = (46, 63)
FIG11_ARMS = (DeploymentKind.NONE, DeploymentKind.PARTIAL, DeploymentKind.FULL)


@dataclass
class Figure11Result:
    """Both panels of Figure 11."""

    #: panel (topology size) → [normal, half-deployment, full] curves
    panels: Dict[int, List[SweepResult]] = field(default_factory=dict)

    def reduction_from_partial(self, size: int, attacker_fraction: float) -> float:
        """Relative reduction (0-1) of poisoned ASes that 50 % deployment
        achieves vs normal BGP at one point (paper: >63 % in the 63-AS
        topology with 30 % attackers)."""
        normal, partial, _ = self.panels[size]
        base = normal.point_at(attacker_fraction).mean_poisoned_fraction
        got = partial.point_at(attacker_fraction).mean_poisoned_fraction
        if base == 0:
            return 0.0
        return 1.0 - got / base


def figure11(
    sizes: Sequence[int] = FIG11_TOPOLOGY_SIZES,
    n_origins: int = 1,
    partial_fraction: float = 0.5,
    attacker_fractions: Sequence[float] = DEFAULT_ATTACKER_FRACTIONS,
    seed: int = 8,
    graphs: Dict[int, ASGraph] = None,
    workers: int = None,
) -> Figure11Result:
    """Run Experiment 3.  ``graphs`` (size → topology) overrides generation;
    ``workers`` parallelises each sweep without changing any result."""
    if graphs is None:
        graphs = {size: generate_paper_topology(size, seed=seed) for size in sizes}
    result = Figure11Result()
    for size in sizes:
        graph = graphs[size]
        curves: List[SweepResult] = []
        for deployment in FIG11_ARMS:
            curves.append(
                run_sweep(
                    SweepConfig(
                        graph=graph,
                        n_origins=n_origins,
                        deployment=deployment,
                        partial_fraction=partial_fraction,
                        attacker_fractions=attacker_fractions,
                        seed=seed,
                    ),
                    workers=workers,
                )
            )
        result.panels[size] = curves
    return result
