"""Parallel execution of independent simulation scenarios.

Every figure in the paper averages 15 independent ``(origin-set,
attacker-set)`` runs per attacker fraction, and the runs share nothing: each
builds its own :class:`~repro.bgp.network.Network` from a common (read-only)
topology.  That makes them embarrassingly parallel, and this module is the
one place that knows how to fan them out.

Design rules, in order of priority:

1. **Determinism.**  Results are collected *in submission order*
   (``ProcessPoolExecutor.map`` semantics), and all randomness is drawn
   before submission (scenario specs carry their seeds).  A parallel run is
   therefore bit-identical to a serial run of the same scenario list — the
   common-random-numbers discipline across deployment arms survives.
2. **Serial fallback.**  ``workers=1`` (the default) executes fully
   in-process with no pool, no pickling and no subprocesses — identical to
   the historical code path, and what tests use unless they opt in.
3. **Configurability.**  The worker count resolves as: explicit argument →
   ``REPRO_WORKERS`` environment variable → 1.

``wall_seconds`` inside each outcome is measured in the worker and is the
only non-deterministic field an outcome carries.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Iterable, List, Optional, Sequence, TypeVar

from repro.experiments.runner import (
    HijackOutcome,
    HijackScenario,
    run_hijack_scenario,
)

T = TypeVar("T")
R = TypeVar("R")

#: Environment variable consulted when no explicit worker count is given.
WORKERS_ENV_VAR = "REPRO_WORKERS"


def resolve_workers(workers: Optional[int] = None) -> int:
    """Resolve the effective worker count.

    ``workers`` wins when given; otherwise :data:`WORKERS_ENV_VAR` is
    consulted; otherwise 1 (serial).  Zero and negative counts are rejected
    rather than silently clamped, malformed environment values raise.
    """
    if workers is None:
        raw = os.environ.get(WORKERS_ENV_VAR, "").strip()
        if not raw:
            return 1
        try:
            workers = int(raw)
        except ValueError:
            raise ValueError(
                f"{WORKERS_ENV_VAR} must be an integer, got {raw!r}"
            )
    if workers < 1:
        raise ValueError(f"worker count must be >= 1, got {workers}")
    return workers


def parallel_map(
    fn: Callable[[T], R],
    items: Iterable[T],
    workers: Optional[int] = None,
) -> List[R]:
    """Apply ``fn`` to every item, preserving input order in the output.

    With an effective worker count of 1 (or fewer than two items) this is a
    plain in-process loop.  Otherwise the items are fanned out over a
    :class:`ProcessPoolExecutor`; ``fn`` and the items must be picklable,
    and ``fn`` must be a pure function of its argument (module-level, no
    closure state) for the parallel path to equal the serial one.
    """
    work = list(items)
    count = resolve_workers(workers)
    if count == 1 or len(work) < 2:
        return [fn(item) for item in work]
    count = min(count, len(work))
    # A chunk per worker per ~4 waves keeps pickling overhead low while
    # still load-balancing runs of uneven cost (large attacker fractions
    # converge slower than small ones).
    chunksize = max(1, len(work) // (count * 4))
    with ProcessPoolExecutor(max_workers=count) as pool:
        return list(pool.map(fn, work, chunksize=chunksize))


def execute_scenarios(
    scenarios: Sequence[HijackScenario],
    workers: Optional[int] = None,
) -> List[HijackOutcome]:
    """Run independent hijack scenarios, serially or across processes.

    Outcomes are returned in scenario order regardless of completion order,
    so aggregation downstream (mean/min/max over the paper's 15 runs) sees
    exactly the sequence the serial path would produce.
    """
    return parallel_map(run_hijack_scenario, scenarios, workers=workers)
