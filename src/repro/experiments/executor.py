"""Parallel execution of independent simulation scenarios.

Every figure in the paper averages 15 independent ``(origin-set,
attacker-set)`` runs per attacker fraction, and the runs share nothing: each
builds its own :class:`~repro.bgp.network.Network` from a common (read-only)
topology.  That makes them embarrassingly parallel, and this module is the
one place that knows how to fan them out.

Design rules, in order of priority:

1. **Determinism.**  Results are collected *in submission order*
   (``ProcessPoolExecutor.map`` semantics), and all randomness is drawn
   before submission (scenario specs carry their seeds).  A parallel run is
   therefore bit-identical to a serial run of the same scenario list — the
   common-random-numbers discipline across deployment arms survives.
2. **Serial fallback.**  ``workers=1`` (the default) executes fully
   in-process with no pool, no pickling and no subprocesses — identical to
   the historical code path, and what tests use unless they opt in.
3. **Configurability.**  The worker count resolves as: explicit argument →
   ``REPRO_WORKERS`` environment variable → 1.
4. **Attribution.**  A failing item raises :class:`ParallelTaskError`
   carrying the submission index and the item's seed, so a 10k-scenario
   sweep never dies with a bare pool traceback.

``wall_seconds`` inside each outcome is measured in the worker and is —
together with the manifest's ``worker`` field — the only non-deterministic
data a run produces.  Pass ``manifest=`` to :func:`execute_scenarios` to
emit a JSONL run manifest (see :mod:`repro.obs.manifest`).

**Graph deduplication.**  A sweep's scenarios all reference the same
:class:`~repro.topology.asgraph.ASGraph` object, but naive pickling would
serialise one full copy of the topology *per scenario* into the pool.
:func:`execute_scenarios` instead dedupes graphs by content digest, ships
each distinct topology to each worker exactly once (through the pool
initializer), and replaces the per-scenario graph with a tiny
:class:`_GraphRef` that the worker resolves locally.

**Warm starts.**  ``warm_start=`` threads a baseline-cache spec (see
:func:`repro.warmstart.resolve_warm_start`) into every run.  On the pooled
path the spec must be a *mode string* (or None, deferring to
``REPRO_WARMSTART``), which each worker resolves to its own process-local
cache — a live :class:`~repro.warmstart.WarmStartCache` object cannot
cross the pool boundary.
"""

from __future__ import annotations

import dataclasses
import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor
from pathlib import Path
from typing import (
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
    TypeVar,
    Union,
    cast,
)

from repro.experiments.runner import (
    HijackOutcome,
    HijackScenario,
    InstrumentedRun,
    WarmStartSpec,
    run_hijack_scenario,
    run_hijack_scenario_instrumented,
    scenario_spec,
)
from repro.obs.manifest import ManifestRecord, ManifestWriter
from repro.topology.asgraph import ASGraph
from repro.warmstart import WarmStartCache

T = TypeVar("T")
R = TypeVar("R")

#: Environment variable consulted when no explicit worker count is given.
WORKERS_ENV_VAR = "REPRO_WORKERS"


class ParallelTaskError(RuntimeError):
    """One item of a :func:`parallel_map` batch failed.

    Carries the submission ``index`` and the item's ``seed`` (when the item
    has one — scenarios do), so a failure deep inside a sweep points at the
    exact scenario to re-run.  On the serial path the original exception is
    chained as ``__cause__``; across the process pool the original type and
    message survive inside :attr:`message` (pickling drops ``__cause__``).
    """

    def __init__(self, index: int, seed: Optional[int], message: str) -> None:
        self.index = index
        self.seed = seed
        self.message = message
        seed_part = f"seed={seed}" if seed is not None else "no seed"
        super().__init__(
            f"parallel task #{index} ({seed_part}) failed: {message}"
        )

    def __reduce__(
        self,
    ) -> Tuple[type, Tuple[int, Optional[int], str]]:
        # Exceptions pickle via their __init__ args by default; ours are
        # (index, seed, message), which the default reduction would pass
        # through str(self).  Spell it out so the attributes survive the
        # pool crossing intact.
        return (type(self), (self.index, self.seed, self.message))


class _AttributedCall:
    """Wrap ``fn`` so a failure names the submission index and seed.

    Module-level and slot-only: instances must pickle into pool workers.
    """

    __slots__ = ("fn",)

    def __init__(self, fn: Callable[[T], R]) -> None:
        self.fn = fn

    def __call__(self, pair: Tuple[int, T]) -> R:
        index, item = pair
        try:
            return self.fn(item)
        except ParallelTaskError:
            raise  # already attributed (nested parallel_map)
        except Exception as exc:
            seed = getattr(item, "seed", None)
            raise ParallelTaskError(
                index, seed, f"{type(exc).__name__}: {exc}"
            ) from exc


def _pool_context() -> Optional[multiprocessing.context.BaseContext]:
    """The multiprocessing context used for scenario pools.

    ``fork`` where available: workers inherit the parent's imported
    modules and warmed caches (prefix parse tables, topology digests)
    copy-on-write, so the first scenario in each worker runs at
    steady-state speed.  This also pins the behaviour against the
    interpreter's default start method changing (3.14 moves Linux to
    ``forkserver``, which would cold-start every worker).  ``None`` on
    platforms without ``fork`` — the executor then uses the default.
    """
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return None


def resolve_workers(workers: Optional[int] = None) -> int:
    """Resolve the effective worker count.

    ``workers`` wins when given; otherwise :data:`WORKERS_ENV_VAR` is
    consulted; otherwise 1 (serial).  Zero and negative counts are rejected
    rather than silently clamped, malformed environment values raise.
    """
    if workers is None:
        raw = os.environ.get(WORKERS_ENV_VAR, "").strip()
        if not raw:
            return 1
        try:
            workers = int(raw)
        except ValueError:
            # The int() parse traceback adds nothing the message doesn't
            # already say; suppress the chained context.
            raise ValueError(
                f"{WORKERS_ENV_VAR} must be an integer, got {raw!r}"
            ) from None
    if workers < 1:
        raise ValueError(f"worker count must be >= 1, got {workers}")
    return workers


def parallel_map(
    fn: Callable[[T], R],
    items: Iterable[T],
    workers: Optional[int] = None,
) -> List[R]:
    """Apply ``fn`` to every item, preserving input order in the output.

    With an effective worker count of 1 (or fewer than two items) this is a
    plain in-process loop.  Otherwise the items are fanned out over a
    :class:`ProcessPoolExecutor`; ``fn`` and the items must be picklable,
    and ``fn`` must be a pure function of its argument (module-level, no
    closure state) for the parallel path to equal the serial one.

    A failing item raises :class:`ParallelTaskError` with the submission
    index and the item's ``seed`` attribute (if any) attached, on both the
    serial and the pooled path.
    """
    work = list(items)
    count = resolve_workers(workers)
    call: _AttributedCall = _AttributedCall(fn)
    if count == 1 or len(work) < 2:
        return [call((index, item)) for index, item in enumerate(work)]
    count = min(count, len(work))
    # A chunk per worker per ~4 waves keeps pickling overhead low while
    # still load-balancing runs of uneven cost (large attacker fractions
    # converge slower than small ones).
    chunksize = max(1, len(work) // (count * 4))
    with ProcessPoolExecutor(
        max_workers=count, mp_context=_pool_context()
    ) as pool:
        return list(pool.map(call, enumerate(work), chunksize=chunksize))


class _GraphRef:
    """Placeholder standing in for a deduplicated topology in a pickled
    scenario; resolved against the worker's graph table by content digest.

    Module-level and slot-only: instances must pickle into pool workers.
    """

    __slots__ = ("digest",)

    def __init__(self, digest: str) -> None:
        self.digest = digest


#: Worker-local graph table, populated once per worker by the pool
#: initializer; ``_ScenarioRunner`` resolves ``_GraphRef`` against it.
_POOL_GRAPHS: Dict[str, ASGraph] = {}


def _init_scenario_worker(graphs: Dict[str, ASGraph]) -> None:
    """Pool initializer: install the deduplicated graph table, warm.

    Runs once per worker process, so each distinct topology crosses the
    pool boundary exactly once regardless of how many scenarios share it.
    Re-deriving each graph's content digest here both warms the worker's
    digest cache (warm-start keys and manifest specs hash the topology;
    under a non-fork start method the unpickled copy starts cold) and
    verifies the table survived the crossing intact.
    """
    _POOL_GRAPHS.clear()
    for digest, graph in graphs.items():
        if graph.content_digest() != digest:
            raise RuntimeError(
                f"graph table corrupted crossing the pool: digest "
                f"{digest[:12]}… does not match its topology"
            )
        _POOL_GRAPHS[digest] = graph


class _ScenarioRunner:
    """The per-scenario work function: resolve the graph, run, warm-start.

    Module-level and slot-only: instances must pickle into pool workers.
    ``warm_spec`` is None or a mode string on the pooled path (each worker
    resolves it to a process-local cache); a live cache object is only
    legal serially.
    """

    __slots__ = ("instrumented", "warm_spec", "shards")

    def __init__(
        self,
        instrumented: bool,
        warm_spec: WarmStartSpec,
        shards: int = 1,
    ) -> None:
        self.instrumented = instrumented
        self.warm_spec = warm_spec
        self.shards = shards

    def __call__(self, scenario: HijackScenario) -> object:
        graph = scenario.graph
        if isinstance(graph, _GraphRef):
            try:
                resolved = _POOL_GRAPHS[graph.digest]
            except KeyError:
                raise RuntimeError(
                    f"worker has no graph for digest {graph.digest[:12]}…; "
                    "pool initializer did not run or graph table is stale"
                ) from None
            scenario = dataclasses.replace(scenario, graph=resolved)
        if self.instrumented:
            return run_hijack_scenario_instrumented(
                scenario, warm_start=self.warm_spec, shards=self.shards
            )
        return run_hijack_scenario(
            scenario, warm_start=self.warm_spec, shards=self.shards
        )


def _dedupe_graphs(
    scenarios: Sequence[HijackScenario],
) -> Tuple[Dict[str, ASGraph], List[HijackScenario]]:
    """One graph per content digest, plus scenarios rewritten to refs.

    Graph identity is checked by ``id()`` first so the digest is computed
    once per distinct object, then by content digest so even structurally
    equal copies collapse to one shipped topology.
    """
    digest_by_id: Dict[int, str] = {}
    graphs: Dict[str, ASGraph] = {}
    rewritten: List[HijackScenario] = []
    for scenario in scenarios:
        digest = digest_by_id.get(id(scenario.graph))
        if digest is None:
            digest = scenario.graph.content_digest()
            digest_by_id[id(scenario.graph)] = digest
            graphs.setdefault(digest, scenario.graph)
        rewritten.append(
            dataclasses.replace(scenario, graph=_GraphRef(digest))
        )
    return graphs, rewritten


def execute_scenarios(
    scenarios: Sequence[HijackScenario],
    workers: Optional[int] = None,
    manifest: Optional[Union[str, Path]] = None,
    warm_start: WarmStartSpec = None,
    shards: int = 1,
) -> List[HijackOutcome]:
    """Run independent hijack scenarios, serially or across processes.

    Outcomes are returned in scenario order regardless of completion order,
    so aggregation downstream (mean/min/max over the paper's 15 runs) sees
    exactly the sequence the serial path would produce.

    With ``manifest`` set, every scenario runs with metrics and phase spans
    enabled and one :class:`~repro.obs.manifest.ManifestRecord` per scenario
    is written (in submission order) to the given JSONL path.  Manifests
    from different worker counts are bit-identical after masking the
    documented timing fields.

    ``warm_start`` selects a baseline cache for every run (see
    :func:`repro.warmstart.resolve_warm_start`).  On the pooled path each
    worker keeps its own cache, so hits accrue as each worker re-encounters
    a baseline it has already built.

    ``shards`` threads intra-run sharding into every scenario (see
    :func:`repro.experiments.runner.run_hijack_scenario`).  It composes
    with ``workers``: the total process count is ``workers * shards``, so
    keep the product at or below the core count — ``--workers`` parallelism
    across many small scenarios and ``--shards`` parallelism inside few
    large ones are alternatives, not multipliers.
    """
    if shards < 1:
        raise ValueError(f"shard count must be >= 1, got {shards}")
    count = resolve_workers(workers)
    work: Sequence[HijackScenario] = scenarios
    pooled = count > 1 and len(scenarios) >= 2
    if pooled and isinstance(warm_start, WarmStartCache):
        raise ValueError(
            "a WarmStartCache instance cannot cross the process pool; "
            "pass a warm-start mode string (e.g. 'mem') for workers > 1"
        )
    runner = _ScenarioRunner(
        instrumented=manifest is not None, warm_spec=warm_start, shards=shards
    )
    call: _AttributedCall = _AttributedCall(runner)

    if not pooled:
        results = [call((index, item)) for index, item in enumerate(work)]
    else:
        graphs, work = _dedupe_graphs(scenarios)
        count = min(count, len(work))
        chunksize = max(1, len(work) // (count * 4))
        with ProcessPoolExecutor(
            max_workers=count,
            mp_context=_pool_context(),
            initializer=_init_scenario_worker,
            initargs=(graphs,),
        ) as pool:
            results = list(
                pool.map(call, enumerate(work), chunksize=chunksize)
            )

    if manifest is None:
        return cast(List[HijackOutcome], results)

    runs = cast(List[InstrumentedRun], results)
    with ManifestWriter(manifest) as writer:
        for index, (scenario, run) in enumerate(zip(scenarios, runs)):
            writer.write(
                ManifestRecord(
                    index=index,
                    seed=scenario.seed,
                    spec=scenario_spec(scenario),
                    outcome=run.outcome.to_dict(),
                    metrics=run.metrics,
                    worker=run.worker,
                    wall_seconds=run.outcome.wall_seconds,
                    warm_start=run.warm_start,
                )
            )
    return [run.outcome for run in runs]
