"""Parallel execution of independent simulation scenarios.

Every figure in the paper averages 15 independent ``(origin-set,
attacker-set)`` runs per attacker fraction, and the runs share nothing: each
builds its own :class:`~repro.bgp.network.Network` from a common (read-only)
topology.  That makes them embarrassingly parallel, and this module is the
one place that knows how to fan them out.

Design rules, in order of priority:

1. **Determinism.**  Results are collected *in submission order*
   (``ProcessPoolExecutor.map`` semantics), and all randomness is drawn
   before submission (scenario specs carry their seeds).  A parallel run is
   therefore bit-identical to a serial run of the same scenario list — the
   common-random-numbers discipline across deployment arms survives.
2. **Serial fallback.**  ``workers=1`` (the default) executes fully
   in-process with no pool, no pickling and no subprocesses — identical to
   the historical code path, and what tests use unless they opt in.
3. **Configurability.**  The worker count resolves as: explicit argument →
   ``REPRO_WORKERS`` environment variable → 1.
4. **Attribution.**  A failing item raises :class:`ParallelTaskError`
   carrying the submission index and the item's seed, so a 10k-scenario
   sweep never dies with a bare pool traceback.

``wall_seconds`` inside each outcome is measured in the worker and is —
together with the manifest's ``worker`` field — the only non-deterministic
data a run produces.  Pass ``manifest=`` to :func:`execute_scenarios` to
emit a JSONL run manifest (see :mod:`repro.obs.manifest`).
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from pathlib import Path
from typing import (
    Callable,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
    TypeVar,
    Union,
)

from repro.experiments.runner import (
    HijackOutcome,
    HijackScenario,
    run_hijack_scenario,
    run_hijack_scenario_instrumented,
    scenario_spec,
)
from repro.obs.manifest import ManifestRecord, ManifestWriter

T = TypeVar("T")
R = TypeVar("R")

#: Environment variable consulted when no explicit worker count is given.
WORKERS_ENV_VAR = "REPRO_WORKERS"


class ParallelTaskError(RuntimeError):
    """One item of a :func:`parallel_map` batch failed.

    Carries the submission ``index`` and the item's ``seed`` (when the item
    has one — scenarios do), so a failure deep inside a sweep points at the
    exact scenario to re-run.  On the serial path the original exception is
    chained as ``__cause__``; across the process pool the original type and
    message survive inside :attr:`message` (pickling drops ``__cause__``).
    """

    def __init__(self, index: int, seed: Optional[int], message: str) -> None:
        self.index = index
        self.seed = seed
        self.message = message
        seed_part = f"seed={seed}" if seed is not None else "no seed"
        super().__init__(
            f"parallel task #{index} ({seed_part}) failed: {message}"
        )

    def __reduce__(
        self,
    ) -> Tuple[type, Tuple[int, Optional[int], str]]:
        # Exceptions pickle via their __init__ args by default; ours are
        # (index, seed, message), which the default reduction would pass
        # through str(self).  Spell it out so the attributes survive the
        # pool crossing intact.
        return (type(self), (self.index, self.seed, self.message))


class _AttributedCall:
    """Wrap ``fn`` so a failure names the submission index and seed.

    Module-level and slot-only: instances must pickle into pool workers.
    """

    __slots__ = ("fn",)

    def __init__(self, fn: Callable[[T], R]) -> None:
        self.fn = fn

    def __call__(self, pair: Tuple[int, T]) -> R:
        index, item = pair
        try:
            return self.fn(item)
        except ParallelTaskError:
            raise  # already attributed (nested parallel_map)
        except Exception as exc:
            seed = getattr(item, "seed", None)
            raise ParallelTaskError(
                index, seed, f"{type(exc).__name__}: {exc}"
            ) from exc


def resolve_workers(workers: Optional[int] = None) -> int:
    """Resolve the effective worker count.

    ``workers`` wins when given; otherwise :data:`WORKERS_ENV_VAR` is
    consulted; otherwise 1 (serial).  Zero and negative counts are rejected
    rather than silently clamped, malformed environment values raise.
    """
    if workers is None:
        raw = os.environ.get(WORKERS_ENV_VAR, "").strip()
        if not raw:
            return 1
        try:
            workers = int(raw)
        except ValueError:
            # The int() parse traceback adds nothing the message doesn't
            # already say; suppress the chained context.
            raise ValueError(
                f"{WORKERS_ENV_VAR} must be an integer, got {raw!r}"
            ) from None
    if workers < 1:
        raise ValueError(f"worker count must be >= 1, got {workers}")
    return workers


def parallel_map(
    fn: Callable[[T], R],
    items: Iterable[T],
    workers: Optional[int] = None,
) -> List[R]:
    """Apply ``fn`` to every item, preserving input order in the output.

    With an effective worker count of 1 (or fewer than two items) this is a
    plain in-process loop.  Otherwise the items are fanned out over a
    :class:`ProcessPoolExecutor`; ``fn`` and the items must be picklable,
    and ``fn`` must be a pure function of its argument (module-level, no
    closure state) for the parallel path to equal the serial one.

    A failing item raises :class:`ParallelTaskError` with the submission
    index and the item's ``seed`` attribute (if any) attached, on both the
    serial and the pooled path.
    """
    work = list(items)
    count = resolve_workers(workers)
    call: _AttributedCall = _AttributedCall(fn)
    if count == 1 or len(work) < 2:
        return [call((index, item)) for index, item in enumerate(work)]
    count = min(count, len(work))
    # A chunk per worker per ~4 waves keeps pickling overhead low while
    # still load-balancing runs of uneven cost (large attacker fractions
    # converge slower than small ones).
    chunksize = max(1, len(work) // (count * 4))
    with ProcessPoolExecutor(max_workers=count) as pool:
        return list(pool.map(call, enumerate(work), chunksize=chunksize))


def execute_scenarios(
    scenarios: Sequence[HijackScenario],
    workers: Optional[int] = None,
    manifest: Optional[Union[str, Path]] = None,
) -> List[HijackOutcome]:
    """Run independent hijack scenarios, serially or across processes.

    Outcomes are returned in scenario order regardless of completion order,
    so aggregation downstream (mean/min/max over the paper's 15 runs) sees
    exactly the sequence the serial path would produce.

    With ``manifest`` set, every scenario runs with metrics and phase spans
    enabled and one :class:`~repro.obs.manifest.ManifestRecord` per scenario
    is written (in submission order) to the given JSONL path.  Manifests
    from different worker counts are bit-identical after masking the
    documented timing fields.
    """
    if manifest is None:
        return parallel_map(run_hijack_scenario, scenarios, workers=workers)

    runs = parallel_map(
        run_hijack_scenario_instrumented, scenarios, workers=workers
    )
    with ManifestWriter(manifest) as writer:
        for index, (scenario, run) in enumerate(zip(scenarios, runs)):
            writer.write(
                ManifestRecord(
                    index=index,
                    seed=scenario.seed,
                    spec=scenario_spec(scenario),
                    outcome=run.outcome.to_dict(),
                    metrics=run.metrics,
                    worker=run.worker,
                    wall_seconds=run.outcome.wall_seconds,
                )
            )
    return [run.outcome for run in runs]
