"""Experiment 2 — topology size (Figure 10).

The same sweep as Experiment 1 run on 25-, 46- and 63-AS topologies, one
panel per origin count.  The paper's observations to reproduce:

1. without the scheme, attacker impact is similar across sizes (the three
   Normal-BGP curves bunch together);
2. with the scheme, larger topologies are markedly more robust (richer
   connectivity lets correct announcements out-race tampering).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.experiments.runner import DeploymentKind
from repro.experiments.sweep import (
    DEFAULT_ATTACKER_FRACTIONS,
    SweepConfig,
    SweepResult,
    run_sweep,
)
from repro.topology.asgraph import ASGraph
from repro.topology.generators import generate_paper_topology

FIG10_TOPOLOGY_SIZES = (25, 46, 63)


@dataclass
class Figure10Result:
    """Both panels of Figure 10."""

    #: panel (n_origins) → {topology size → [normal curve, detect curve]}
    panels: Dict[int, Dict[int, List[SweepResult]]] = field(default_factory=dict)

    def detection_at(
        self, n_origins: int, size: int, attacker_fraction: float
    ) -> float:
        """Poisoned % under full detection at one point (for assertions)."""
        curves = self.panels[n_origins][size]
        return curves[1].point_at(attacker_fraction).mean_poisoned_fraction * 100


def figure10(
    sizes: Sequence[int] = FIG10_TOPOLOGY_SIZES,
    origin_counts: Sequence[int] = (1, 2),
    attacker_fractions: Sequence[float] = DEFAULT_ATTACKER_FRACTIONS,
    seed: int = 8,
    graphs: Dict[int, ASGraph] = None,
    workers: int = None,
) -> Figure10Result:
    """Run Experiment 2.  ``graphs`` (size → topology) overrides generation;
    ``workers`` parallelises each sweep without changing any result."""
    if graphs is None:
        graphs = {size: generate_paper_topology(size, seed=seed) for size in sizes}
    result = Figure10Result()
    for n_origins in origin_counts:
        per_size: Dict[int, List[SweepResult]] = {}
        for size in sizes:
            graph = graphs[size]
            curves: List[SweepResult] = []
            for deployment in (DeploymentKind.NONE, DeploymentKind.FULL):
                curves.append(
                    run_sweep(
                        SweepConfig(
                            graph=graph,
                            n_origins=n_origins,
                            deployment=deployment,
                            attacker_fractions=attacker_fractions,
                            seed=seed,
                        ),
                        workers=workers,
                    )
                )
            per_size[size] = curves
        result.panels[n_origins] = per_size
    return result
