"""Plain-text chart rendering.

The benchmark harness regenerates the paper's figures as text; these
helpers draw them as terminal charts so a reproduction run can be eyeballed
against the paper's plots without any plotting dependency.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple


def render_line_chart(
    series: Dict[str, Sequence[Tuple[float, float]]],
    width: int = 72,
    height: int = 16,
    title: str = "",
    y_label: str = "",
    x_label: str = "",
) -> str:
    """Render one or more (x, y) series as an ASCII line chart.

    Each series gets its own glyph; points are nearest-cell plotted.
    """
    if not series:
        raise ValueError("nothing to plot")
    if width < 10 or height < 4:
        raise ValueError("chart too small to be readable")
    glyphs = "*o+x#@%&"
    all_points = [pt for pts in series.values() for pt in pts]
    if not all_points:
        raise ValueError("series contain no points")

    xs = [p[0] for p in all_points]
    ys = [p[1] for p in all_points]
    x_min, x_max = min(xs), max(xs)
    y_min, y_max = min(ys), max(ys)
    if x_max == x_min:
        x_max = x_min + 1.0
    if y_max == y_min:
        y_max = y_min + 1.0

    grid = [[" "] * width for _ in range(height)]

    def cell(x: float, y: float) -> Tuple[int, int]:
        col = round((x - x_min) / (x_max - x_min) * (width - 1))
        row = round((y - y_min) / (y_max - y_min) * (height - 1))
        return height - 1 - row, col

    for index, (name, points) in enumerate(series.items()):
        glyph = glyphs[index % len(glyphs)]
        for x, y in points:
            row, col = cell(x, y)
            grid[row][col] = glyph

    lines: List[str] = []
    if title:
        lines.append(title)
    y_axis_width = max(len(f"{y_max:.0f}"), len(f"{y_min:.0f}"))
    for row_index, row in enumerate(grid):
        if row_index == 0:
            label = f"{y_max:.0f}".rjust(y_axis_width)
        elif row_index == height - 1:
            label = f"{y_min:.0f}".rjust(y_axis_width)
        else:
            label = " " * y_axis_width
        lines.append(f"{label} |{''.join(row)}")
    lines.append(" " * y_axis_width + " +" + "-" * width)
    x_line = (
        f"{x_min:.0f}".ljust(width // 2)
        + f"{x_max:.0f}".rjust(width - width // 2)
    )
    lines.append(" " * (y_axis_width + 2) + x_line)
    if x_label or y_label:
        lines.append(f"   x: {x_label}    y: {y_label}".rstrip())
    legend = "   " + "   ".join(
        f"{glyphs[i % len(glyphs)]} = {name}"
        for i, name in enumerate(series)
    )
    lines.append(legend)
    return "\n".join(lines)


def render_histogram(
    bins: Sequence[Tuple[str, int]],
    width: int = 50,
    title: str = "",
) -> str:
    """Render labelled bins as a horizontal bar chart (log-friendly scale
    is the caller's business; bars are linear)."""
    if not bins:
        raise ValueError("nothing to plot")
    peak = max(count for _, count in bins) or 1
    label_width = max(len(label) for label, _ in bins)
    lines: List[str] = []
    if title:
        lines.append(title)
    for label, count in bins:
        bar = "#" * max(0, round(count / peak * width))
        if count > 0 and not bar:
            bar = "."  # visible trace for tiny non-zero bins
        lines.append(f"{label.rjust(label_width)} |{bar} {count}")
    return "\n".join(lines)
