"""Attacker-fraction sweeps with the paper's 15-run averaging.

"Rather than simulating all the possible selections, we perform 15 runs
for a given number of origin ASes and attackers ... we first select 3 sets
of origin ASes from the stub ASes.  Then we select 5 sets of attackers for
each set of origin ASes."  Each data point below is that same average.

The same (origin-set, attacker-set) draws are used for every deployment
arm at a given attacker fraction — common random numbers, so the arms of
one figure differ only in the mechanism under test.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.attack.models import AttackStrategy, NaiveFalseOrigin
from repro.attack.placement import place_attackers, place_origins
from repro.core.checker import CheckerMode
from repro.eventsim.rng import RandomStreams
from repro.experiments.executor import execute_scenarios
from repro.experiments.runner import (
    AttackTiming,
    DeploymentKind,
    HijackScenario,
    WarmStartSpec,
)
from repro.topology.asgraph import ASGraph

#: The attacker fractions swept in Figures 9-11 (x-axis, as fractions).
DEFAULT_ATTACKER_FRACTIONS: Tuple[float, ...] = (
    0.02, 0.05, 0.10, 0.15, 0.20, 0.25, 0.30, 0.35, 0.40,
)


@dataclass
class SweepConfig:
    """Parameters of one sweep (one curve of a figure)."""

    graph: ASGraph
    n_origins: int = 1
    deployment: DeploymentKind = DeploymentKind.NONE
    partial_fraction: float = 0.5
    attacker_fractions: Sequence[float] = DEFAULT_ATTACKER_FRACTIONS
    n_origin_sets: int = 3
    n_attacker_sets: int = 5
    strategy: AttackStrategy = field(default_factory=NaiveFalseOrigin)
    checker_mode: CheckerMode = CheckerMode.DETECT_AND_SUPPRESS
    timing: AttackTiming = AttackTiming.SIMULTANEOUS
    seed: int = 0


@dataclass(frozen=True)
class SweepPoint:
    """One data point: mean over the 15 runs at one attacker fraction."""

    attacker_fraction: float
    n_attackers: int
    mean_poisoned_fraction: float
    min_poisoned_fraction: float
    max_poisoned_fraction: float
    mean_alarms: float
    runs: int


@dataclass
class SweepResult:
    """One curve: deployment arm + points."""

    deployment: DeploymentKind
    n_origins: int
    topology_size: int
    points: List[SweepPoint] = field(default_factory=list)

    def as_percent_series(self) -> List[Tuple[float, float]]:
        """(attacker %, poisoned %) pairs — directly plottable."""
        return [
            (p.attacker_fraction * 100.0, p.mean_poisoned_fraction * 100.0)
            for p in self.points
        ]

    def point_at(self, attacker_fraction: float) -> SweepPoint:
        for point in self.points:
            if abs(point.attacker_fraction - attacker_fraction) < 1e-9:
                return point
        raise KeyError(f"no point at attacker fraction {attacker_fraction}")


def build_sweep_scenarios(
    config: SweepConfig,
) -> List[Tuple[float, int, List[HijackScenario]]]:
    """Materialise every scenario of one sweep, fraction by fraction.

    All random draws happen here, in the exact nested order the historical
    serial loop used — fraction outer, origin set, then attacker set — so
    the common-random-numbers discipline across deployment arms (and the
    per-scenario seed derivation) is preserved verbatim.  The returned
    scenarios are self-contained and picklable, which is what lets the
    executor fan them out across processes.
    """
    graph = config.graph
    n_ases = len(graph)
    streams = RandomStreams(config.seed)

    per_fraction: List[Tuple[float, int, List[HijackScenario]]] = []
    for fraction in config.attacker_fractions:
        n_attackers = max(1, round(fraction * n_ases))
        scenarios: List[HijackScenario] = []
        for origin_set_index in range(config.n_origin_sets):
            origin_rng = streams.stream(f"origins/{origin_set_index}")
            origins = place_origins(graph, config.n_origins, origin_rng)
            for attacker_set_index in range(config.n_attacker_sets):
                attacker_rng = streams.stream(
                    f"attackers/{fraction}/{origin_set_index}/{attacker_set_index}"
                )
                attackers = place_attackers(
                    graph, n_attackers, attacker_rng, exclude=origins
                )
                scenarios.append(
                    HijackScenario(
                        graph=graph,
                        origins=origins,
                        attackers=attackers,
                        deployment=config.deployment,
                        partial_fraction=config.partial_fraction,
                        strategy=config.strategy,
                        checker_mode=config.checker_mode,
                        timing=config.timing,
                        seed=config.seed
                        + 7919 * origin_set_index
                        + 104729 * attacker_set_index,
                    )
                )
        per_fraction.append((fraction, n_attackers, scenarios))
    return per_fraction


def run_sweep(
    config: SweepConfig,
    workers: Optional[int] = None,
    manifest: Optional[str] = None,
    warm_start: WarmStartSpec = None,
    shards: int = 1,
) -> SweepResult:
    """Run one curve: every attacker fraction, 15 runs each.

    ``workers`` > 1 fans the independent runs of the *whole* curve out over
    a process pool (see :mod:`repro.experiments.executor`); the resulting
    :class:`SweepPoint` values are bit-identical to a serial run.
    ``manifest`` additionally writes one JSONL record per scenario (spec,
    seed, outcome, metric snapshot, worker id) to the given path.
    ``warm_start`` enables the baseline cache
    (:mod:`repro.warmstart`) — the sweep's repeated (topology, origin-set,
    deployment) baselines are then built once and restored thereafter,
    with results guaranteed identical to a cold run.
    ``shards`` > 1 runs each scenario across that many forked shard
    processes (intra-run parallelism; composes multiplicatively with
    ``workers``, so keep ``workers * shards`` within the core budget).
    """
    result = SweepResult(
        deployment=config.deployment,
        n_origins=config.n_origins,
        topology_size=len(config.graph),
    )

    per_fraction = build_sweep_scenarios(config)
    # One flat batch across all fractions: better pool utilisation than
    # fraction-at-a-time, and order-preserving collection keeps aggregation
    # identical to the serial loop.
    flat = [s for _, _, scenarios in per_fraction for s in scenarios]
    all_outcomes = execute_scenarios(
        flat,
        workers=workers,
        manifest=manifest,
        warm_start=warm_start,
        shards=shards,
    )

    cursor = 0
    for fraction, n_attackers, scenarios in per_fraction:
        outcomes = []
        alarms = []
        for outcome in all_outcomes[cursor:cursor + len(scenarios)]:
            outcomes.append(outcome.poisoned_fraction)
            alarms.append(outcome.alarms)
        cursor += len(scenarios)

        result.points.append(
            SweepPoint(
                attacker_fraction=fraction,
                n_attackers=n_attackers,
                mean_poisoned_fraction=sum(outcomes) / len(outcomes),
                min_poisoned_fraction=min(outcomes),
                max_poisoned_fraction=max(outcomes),
                mean_alarms=sum(alarms) / len(alarms),
                runs=len(outcomes),
            )
        )
    return result
