"""§4.3 hazard — dropped communities cause false alarms, never false accepts.

"Given that BGP community attribute is an optional transitive value, some
routers may drop community attribute values associated with a route
announcement ...  When a router receives multiple route announcements to
the same prefix p, some with MOAS list and some do not, it would raise a
false alarm.  However ... dropping the MOAS community value from some
route announcements should not cause an invalid case to be considered
valid."

This experiment deploys a *valid* two-origin MOAS prefix, makes a random
fraction of transit ASes strip communities on export, and measures:

* the false-alarm rate (checkers alarming with no attacker present);
* that adjudication against the origin database never suppresses the
  genuine routes (reachability stays total) — alarms are noise, not harm.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

from repro.attack.placement import place_origins
from repro.bgp.network import Network
from repro.bgp.policy import CommunityStripPolicy
from repro.core.alarms import AlarmLog
from repro.core.checker import MoasChecker
from repro.core.moas_list import moas_communities
from repro.core.origin_verification import GroundTruthOracle, PrefixOriginRegistry
from repro.eventsim.rng import RandomStreams
from repro.net.addresses import Prefix
from repro.topology.asgraph import ASGraph

TARGET_PREFIX = Prefix.parse("10.2.0.0/16")


@dataclass(frozen=True)
class FalseAlarmPoint:
    strip_fraction: float
    false_alarm_rate: float       # share of checkers that alarmed
    suppressed_valid_routes: int  # must stay 0
    unreachable_fraction: float   # share of ASes with no route (must be 0)
    runs: int


def run_false_alarm_experiment(
    graph: ASGraph,
    strip_fractions: Sequence[float] = (0.0, 0.1, 0.25, 0.5),
    n_runs: int = 10,
    seed: int = 0,
) -> List[FalseAlarmPoint]:
    streams = RandomStreams(seed)
    points: List[FalseAlarmPoint] = []
    transit = graph.transit_asns()

    for fraction in strip_fractions:
        alarm_rates: List[float] = []
        suppressed_total = 0
        unreachable: List[float] = []
        for run_index in range(n_runs):
            origins = place_origins(
                graph, 2, streams.stream(f"origins/{fraction}/{run_index}")
            )
            strippers = set(
                streams.sample(
                    f"strippers/{fraction}/{run_index}",
                    transit,
                    round(fraction * len(transit)),
                )
            )
            registry = PrefixOriginRegistry()
            registry.register(TARGET_PREFIX, origins)
            oracle = GroundTruthOracle(registry)
            log = AlarmLog()

            network = Network(
                graph,
                policy_factory=lambda asn: (
                    CommunityStripPolicy() if asn in strippers else None
                ),
                seed=seed + run_index,
            )
            checkers = {}
            for asn in graph.asns():
                checker = MoasChecker(oracle=oracle, alarm_log=log)
                checker.attach(network.speaker(asn))
                checkers[asn] = checker
            network.establish_sessions()

            communities = moas_communities(origins)
            for origin in origins:
                network.originate(origin, TARGET_PREFIX, communities=communities)
            network.run_to_convergence()

            alarming = len(log.detectors())
            alarm_rates.append(alarming / len(graph))
            suppressed_total += sum(
                c.routes_suppressed for c in checkers.values()
            )
            best = network.best_origins(TARGET_PREFIX)
            unreachable.append(
                sum(1 for v in best.values() if v is None) / len(graph)
            )
        points.append(
            FalseAlarmPoint(
                strip_fraction=fraction,
                false_alarm_rate=sum(alarm_rates) / len(alarm_rates),
                suppressed_valid_routes=suppressed_total,
                unreachable_fraction=sum(unreachable) / len(unreachable),
                runs=n_runs,
            )
        )
    return points
