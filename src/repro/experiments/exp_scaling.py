"""Extension experiment — robustness vs topology size, beyond the paper.

§5.3/§6: "our solution ... exhibits more robust behavior against randomly
selected attackers in larger networks.  As part of our continuing research
effort we are currently seeking a formal validation proof of this
phenomenon."  The paper stops at 63 ASes; this experiment pushes the same
measurement to larger sampled topologies and reports the trend, averaging
over several independent topology draws per size to separate the size
effect from sample noise.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.attack.placement import place_attackers, place_origins
from repro.eventsim.rng import RandomStreams
from repro.experiments.runner import (
    DeploymentKind,
    HijackScenario,
    run_hijack_scenario,
)
from repro.topology.generators import generate_paper_topology
from repro.topology.sampling import SamplingError


@dataclass
class ScalingPoint:
    """Results for one topology size."""

    size: int
    mean_poisoned_detect: float
    mean_poisoned_normal: float
    topologies: int
    runs: int

    @property
    def protection_factor(self) -> float:
        if self.mean_poisoned_detect == 0:
            return float("inf")
        return self.mean_poisoned_normal / self.mean_poisoned_detect


@dataclass
class ScalingResult:
    attacker_fraction: float
    points: List[ScalingPoint] = field(default_factory=list)

    def detection_series(self) -> List[Tuple[int, float]]:
        return [(p.size, p.mean_poisoned_detect * 100) for p in self.points]


def run_scaling_experiment(
    sizes: Sequence[int] = (25, 46, 63, 100, 150),
    attacker_fraction: float = 0.30,
    topologies_per_size: int = 3,
    runs_per_topology: int = 6,
    seed: int = 0,
) -> ScalingResult:
    """Measure detection-arm and normal-arm poisoning across sizes."""
    result = ScalingResult(attacker_fraction=attacker_fraction)
    streams = RandomStreams(seed)

    for size in sizes:
        detect_vals: List[float] = []
        normal_vals: List[float] = []
        topo_count = 0
        for topo_index in range(topologies_per_size):
            try:
                graph = generate_paper_topology(
                    size, seed=seed + 101 * topo_index
                )
            except SamplingError:
                continue
            topo_count += 1
            n_attackers = max(1, round(attacker_fraction * size))
            for run_index in range(runs_per_topology):
                tag = f"{size}/{topo_index}/{run_index}"
                origins = place_origins(graph, 1, streams.stream(f"o/{tag}"))
                attackers = place_attackers(
                    graph, n_attackers, streams.stream(f"a/{tag}"),
                    exclude=origins,
                )
                for deployment, sink in (
                    (DeploymentKind.FULL, detect_vals),
                    (DeploymentKind.NONE, normal_vals),
                ):
                    outcome = run_hijack_scenario(
                        HijackScenario(
                            graph=graph,
                            origins=origins,
                            attackers=attackers,
                            deployment=deployment,
                            seed=seed + run_index,
                        )
                    )
                    sink.append(outcome.poisoned_fraction)
        if not detect_vals:
            continue
        result.points.append(
            ScalingPoint(
                size=size,
                mean_poisoned_detect=sum(detect_vals) / len(detect_vals),
                mean_poisoned_normal=sum(normal_vals) / len(normal_vals),
                topologies=topo_count,
                runs=len(detect_vals),
            )
        )
    return result
