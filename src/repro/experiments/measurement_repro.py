"""The §3 measurement study as figure-producing entry points.

* :func:`figure4` — the daily MOAS-case count series (11/1997-7/2001);
* :func:`figure5` — the MOAS duration histogram.

Both run on the calibrated synthetic trace; see
:mod:`repro.measurement.trace` for the calibration targets.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.measurement.duration import DurationTracker
from repro.measurement.moas_observer import MoasObserver
from repro.measurement.stats import MoasStudySummary, summarise_study
from repro.measurement.trace import DAY_2000_JULY, TraceConfig, TraceGenerator


@dataclass
class MeasurementStudyResult:
    """A completed study with both figures' data."""

    observer: MoasObserver
    tracker: DurationTracker
    summary: MoasStudySummary

    def figure4_series(self) -> List[Tuple[int, int]]:
        """(day, MOAS count) — the Figure 4 time series."""
        return [
            (day, self.observer.daily_counts[day])
            for day in sorted(self.observer.daily_counts)
        ]

    def figure5_histogram(self) -> Dict[int, int]:
        """duration (days) → number of prefixes — the Figure 5 histogram."""
        return self.tracker.histogram()


def run_measurement_study(
    config: Optional[TraceConfig] = None,
    seed: int = 42,
    duration_cutoff: int = DAY_2000_JULY,
) -> MeasurementStudyResult:
    """Generate the trace and run the complete study once."""
    generator = TraceGenerator(config or TraceConfig(), random.Random(seed))
    observer, tracker = generator.run_study(duration_cutoff=duration_cutoff)
    return MeasurementStudyResult(
        observer=observer,
        tracker=tracker,
        summary=summarise_study(observer, tracker),
    )


def figure4(
    config: Optional[TraceConfig] = None, seed: int = 42
) -> List[Tuple[int, int]]:
    """The Figure 4 series on a fresh study."""
    return run_measurement_study(config, seed=seed).figure4_series()


def figure5(
    config: Optional[TraceConfig] = None, seed: int = 42
) -> Dict[int, int]:
    """The Figure 5 histogram on a fresh study."""
    return run_measurement_study(config, seed=seed).figure5_histogram()
