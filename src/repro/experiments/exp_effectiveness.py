"""Experiment 1 — effectiveness of the MOAS list (Figure 9).

46-AS topology; x-axis the percentage of attacker ASes, y-axis the
percentage of remaining ASes adopting a false route; one panel per origin
count (1 and 2); two curves per panel: Normal BGP vs Full MOAS Detection.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.experiments.runner import DeploymentKind
from repro.experiments.sweep import (
    DEFAULT_ATTACKER_FRACTIONS,
    SweepConfig,
    SweepResult,
    run_sweep,
)
from repro.topology.asgraph import ASGraph
from repro.topology.generators import generate_paper_topology

FIG9_TOPOLOGY_SIZE = 46


@dataclass
class Figure9Result:
    """Both panels of Figure 9."""

    topology_size: int
    #: panel (n_origins) → [normal-BGP curve, full-detection curve]
    panels: Dict[int, List[SweepResult]] = field(default_factory=dict)

    def headline(self) -> Dict[str, float]:
        """The §1/§5.2 headline percentages (1-origin panel)."""
        normal, detect = self.panels[1]
        return {
            "normal@4%": normal.point_at(0.05).mean_poisoned_fraction * 100,
            "detect@4%": detect.point_at(0.05).mean_poisoned_fraction * 100,
            "normal@30%": normal.point_at(0.30).mean_poisoned_fraction * 100,
            "detect@30%": detect.point_at(0.30).mean_poisoned_fraction * 100,
        }


def figure9(
    graph: ASGraph = None,
    origin_counts: Sequence[int] = (1, 2),
    attacker_fractions: Sequence[float] = DEFAULT_ATTACKER_FRACTIONS,
    seed: int = 8,
    workers: int = None,
) -> Figure9Result:
    """Run Experiment 1.  Passing ``graph`` overrides the default 46-AS
    topology (useful for quick tests on smaller graphs).  ``workers``
    parallelises each sweep's runs (see :mod:`repro.experiments.executor`)
    without changing any result."""
    if graph is None:
        graph = generate_paper_topology(FIG9_TOPOLOGY_SIZE, seed=seed)
    result = Figure9Result(topology_size=len(graph))
    for n_origins in origin_counts:
        curves: List[SweepResult] = []
        for deployment in (DeploymentKind.NONE, DeploymentKind.FULL):
            curves.append(
                run_sweep(
                    SweepConfig(
                        graph=graph,
                        n_origins=n_origins,
                        deployment=deployment,
                        attacker_fractions=attacker_fractions,
                        seed=seed,
                    ),
                    workers=workers,
                )
            )
        result.panels[n_origins] = curves
    return result
