"""Plain-text reporting of experiment results.

The benchmark harness prints the same rows/series the paper's figures
plot, so a reproduction run can be compared against the paper at a glance.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.experiments.sweep import SweepResult
from repro.obs.manifest import ManifestRecord, aggregate_manifest


def format_sweep_table(results: Sequence[SweepResult], title: str = "") -> str:
    """Tabulate several curves (one column per deployment arm) against the
    shared attacker-fraction x-axis."""
    if not results:
        raise ValueError("nothing to format")
    fractions = [p.attacker_fraction for p in results[0].points]
    for result in results[1:]:
        other = [p.attacker_fraction for p in result.points]
        if other != fractions:
            raise ValueError("sweeps have mismatched x-axes")

    lines: List[str] = []
    if title:
        lines.append(title)
    header = ["attackers%"] + [
        f"{r.deployment.value}/{r.topology_size}AS" for r in results
    ]
    widths = [max(10, len(h)) for h in header]
    lines.append("  ".join(h.rjust(w) for h, w in zip(header, widths)))
    for i, fraction in enumerate(fractions):
        row = [f"{fraction * 100:.0f}%"]
        for result in results:
            row.append(f"{result.points[i].mean_poisoned_fraction * 100:.2f}%")
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_series_table(
    series: Sequence[Tuple[object, object]],
    headers: Tuple[str, str],
    title: str = "",
    max_rows: int = 40,
) -> str:
    """Tabulate an (x, y) series, downsampling long series evenly."""
    lines: List[str] = []
    if title:
        lines.append(title)
    rows = list(series)
    if len(rows) > max_rows:
        step = len(rows) / max_rows
        rows = [rows[int(i * step)] for i in range(max_rows)]
    width0 = max(len(headers[0]), max((len(str(r[0])) for r in rows), default=0))
    width1 = max(len(headers[1]), max((len(str(r[1])) for r in rows), default=0))
    lines.append(f"{headers[0].rjust(width0)}  {headers[1].rjust(width1)}")
    for x, y in rows:
        lines.append(f"{str(x).rjust(width0)}  {str(y).rjust(width1)}")
    return "\n".join(lines)


def format_manifest_report(
    records: Sequence[ManifestRecord], title: str = ""
) -> str:
    """Aggregate a run manifest into the paper's table shape.

    One row per (deployment arm, attacker count) group — mean/min/max
    poisoned fraction and mean alarms over that group's runs, the numbers
    behind one data point of Figures 9-11 — plus manifest-wide totals.
    """
    if not records:
        raise ValueError("manifest holds no records")
    aggregated = aggregate_manifest(records)

    lines: List[str] = []
    if title:
        lines.append(title)
    header = (
        "deployment", "attackers", "runs",
        "poisoned% mean", "min", "max", "alarms mean",
    )
    widths = [max(10, len(h)) for h in header]
    widths[0] = max(widths[0], max(len(str(r["deployment"]))
                                   for r in aggregated["rows"]))
    lines.append("  ".join(h.rjust(w) for h, w in zip(header, widths)))
    for row in aggregated["rows"]:
        cells = (
            str(row["deployment"]),
            str(row["n_attackers"]),
            str(row["runs"]),
            f"{row['mean_poisoned_fraction'] * 100:.2f}%",
            f"{row['min_poisoned_fraction'] * 100:.2f}%",
            f"{row['max_poisoned_fraction'] * 100:.2f}%",
            f"{row['mean_alarms']:.1f}",
        )
        lines.append("  ".join(c.rjust(w) for c, w in zip(cells, widths)))

    totals = aggregated["totals"]
    lines.append(
        f"totals: {totals['records']} runs, "
        f"{totals['events_processed']} events, "
        f"{totals['updates_sent']} updates, "
        f"{totals['alarms']} alarms, "
        f"{totals['routes_suppressed']} suppressed, "
        f"{totals['wall_seconds']:.2f}s wall"
    )
    return "\n".join(lines)
