"""The April-1998 mass-origination fault, inside the live simulation.

§3.3's headline incident: "AS 8584 erroneously announced ... prefixes on
that day that belonged to other organizations.  Consequently, some routers
selected the bogus routes in packet forwarding, causing noticeable
disturbance to the Internet operation."

This experiment replays that class of event against the BGP simulator
itself (not just the measurement trace): every stub AS originates its own
prefixes, a faulty AS suddenly announces a large sample of *foreign*
prefixes, and we measure the per-prefix disturbance with and without MOAS
checking — plus what a RouteViews-style collector attached to the network
records, closing the loop with the §3 measurement stack.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.bgp.network import Network
from repro.core.alarms import AlarmLog
from repro.core.checker import MoasChecker
from repro.core.origin_verification import GroundTruthOracle, PrefixOriginRegistry
from repro.eventsim.rng import RandomStreams
from repro.measurement.collector import RouteCollector
from repro.measurement.moas_observer import MoasObserver
from repro.net.addresses import Prefix
from repro.net.asn import ASN
from repro.topology.asgraph import ASGraph


@dataclass
class MassFaultResult:
    """Outcome of one mass-origination fault replay."""

    n_prefixes: int
    n_hijacked_prefixes: int          # prefixes falsely originated
    disturbed_prefixes: int           # prefixes where >=1 AS adopted the fault
    mean_poisoned_share: float        # mean poisoned fraction over hijacked prefixes
    alarms: int
    collector_moas_cases: int         # MOAS cases the vantage collector saw

    @property
    def disturbance_rate(self) -> float:
        if self.n_hijacked_prefixes == 0:
            return 0.0
        return self.disturbed_prefixes / self.n_hijacked_prefixes


def run_mass_fault(
    graph: ASGraph,
    faulty_as: Optional[ASN] = None,
    fault_share: float = 0.5,
    prefixes_per_stub: int = 2,
    detect: bool = False,
    seed: int = 0,
) -> MassFaultResult:
    """Replay a mass-origination fault on ``graph``.

    Every stub AS originates ``prefixes_per_stub`` prefixes; then
    ``faulty_as`` (a random transit AS by default — the real event came
    from a provider) falsely originates ``fault_share`` of all *foreign*
    prefixes at once.  With ``detect=True`` every non-faulty AS runs a
    MOAS checker backed by the origin registry.
    """
    if not 0 < fault_share <= 1:
        raise ValueError(f"fault_share must be in (0, 1], got {fault_share}")
    if prefixes_per_stub < 1:
        raise ValueError("need at least one prefix per stub")

    streams = RandomStreams(seed)
    stubs = graph.stub_asns()
    if not stubs:
        raise ValueError("topology has no stub ASes to own prefixes")
    if faulty_as is None:
        transit = graph.transit_asns()
        pool = transit if transit else graph.asns()
        faulty_as = streams.choice("faulty-as", pool)

    # Address plan: each stub owns a block of /24s.
    registry = PrefixOriginRegistry()
    ownership: Dict[Prefix, ASN] = {}
    for stub_index, stub in enumerate(stubs):
        for k in range(prefixes_per_stub):
            prefix = Prefix(
                (10 << 24) | (stub_index << 16) | (k << 8), 24
            )
            ownership[prefix] = stub
            registry.register(prefix, [stub])

    network = Network(graph, seed=seed)
    alarm_log = AlarmLog()
    checkers: Dict[ASN, MoasChecker] = {}
    if detect:
        oracle = GroundTruthOracle(registry)
        for asn in graph.asns():
            if asn == faulty_as:
                continue
            checker = MoasChecker(oracle=oracle, alarm_log=alarm_log)
            checker.attach(network.speaker(asn))
            checkers[asn] = checker
    collector = RouteCollector(
        network, vantages=graph.asns()[:2]
    )
    network.establish_sessions()
    network.sim.run_to_quiescence()

    for prefix, owner in sorted(ownership.items(), key=lambda kv: str(kv[0])):
        network.originate(owner, prefix)
    network.run_to_convergence()

    # The fault: a burst of foreign originations from the faulty AS.
    foreign = [p for p, owner in ownership.items() if owner != faulty_as]
    n_fault = max(1, round(fault_share * len(foreign)))
    victims = streams.sample("victims", sorted(foreign, key=str), n_fault)
    for prefix in victims:
        network.speaker(faulty_as).originate(prefix)
    network.run_to_convergence()

    # Damage assessment, per hijacked prefix.
    disturbed = 0
    poisoned_shares: List[float] = []
    for prefix in victims:
        best = network.best_origins(prefix)
        poisoned = [
            asn for asn, origin in best.items()
            if asn != faulty_as and origin == faulty_as
        ]
        if poisoned:
            disturbed += 1
        poisoned_shares.append(poisoned and len(poisoned) / (len(graph) - 1) or 0.0)

    observer = MoasObserver()
    cases = observer.observe_table(0, collector.table_dump(date="fault-day"))

    return MassFaultResult(
        n_prefixes=len(ownership),
        n_hijacked_prefixes=len(victims),
        disturbed_prefixes=disturbed,
        mean_poisoned_share=sum(poisoned_shares) / len(poisoned_shares),
        alarms=len(alarm_log),
        collector_moas_cases=len(cases),
    )


def run_mass_fault_trials(
    graph: ASGraph,
    seeds: Sequence[int],
    faulty_as: Optional[ASN] = None,
    fault_share: float = 0.5,
    prefixes_per_stub: int = 2,
    detect: bool = False,
    workers: Optional[int] = None,
) -> List[MassFaultResult]:
    """Replay the mass fault once per seed, optionally across processes.

    Each trial is an independent simulation (its own faulty-AS draw, victim
    sample and network), so the batch parallelises exactly like the sweep
    runs do; results come back in ``seeds`` order.
    """
    from repro.experiments.executor import parallel_map

    task = functools.partial(
        run_mass_fault, graph, faulty_as, fault_share, prefixes_per_stub, detect
    )
    return parallel_map(task, seeds, workers=workers)
