"""Runtime sanitizer: protocol invariant checking (``REPRO_SANITIZE=1``).

The static rules in :mod:`repro.lint` keep nondeterminism out of the code;
this module guards the *state* the code produces.  With the environment
variable ``REPRO_SANITIZE`` set truthy (or ``Simulator(sanitize=True)``),
every decision-process run re-validates the speaker's RIB stack and the
trace recorder refuses non-monotonic timestamps.  CI runs the tier-1 suite
once in this mode, so a regression that corrupts RIB bookkeeping fails
loudly instead of skewing a figure silently.

Invariants checked after each decision-process run:

* every non-local Loc-RIB best route is still present in the Adj-RIB-In of
  the peer it was learned from (no dangling best routes);
* every Adj-RIB-Out entry was genuinely exported: the recorded attribute
  bundle carries this speaker's ASN as the first AS (the on-export prepend
  happened) and the peer has a configured session;
* MOAS-list attachments are internally consistent: the decoded list is
  exactly the set of ASes carried in ``MLVal`` communities, and re-encoding
  round-trips;
* (via :class:`~repro.eventsim.trace.TraceRecorder`) trace timestamps never
  move backwards, and the simulator never fires an event in the past.

Checks raise :class:`InvariantError` — also the error type behind the
``invariant(...)`` guards that replaced bare ``assert`` statements in the
protocol hot path, so ``python -O`` can no longer strip them.
"""

from __future__ import annotations

import os
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.bgp.speaker import BGPSpeaker

#: Environment variable that switches the sanitizer on.
SANITIZE_ENV_VAR = "REPRO_SANITIZE"

_TRUTHY = frozenset({"1", "true", "yes", "on"})


class InvariantError(RuntimeError):
    """A protocol or simulation invariant was violated.

    Deliberately *not* an ``AssertionError``: these checks guard
    correctness of published figures and must survive ``python -O``.
    """


def invariant(condition: bool, message: str) -> None:
    """Raise :class:`InvariantError` unless ``condition`` holds.

    The always-on replacement for bare ``assert`` in protocol code; use
    for checks cheap enough to run unconditionally.
    """
    if not condition:
        raise InvariantError(message)


def sanitizer_enabled(override: Optional[bool] = None) -> bool:
    """Whether deep (per-decision-run) invariant checking is on.

    ``override`` wins when given; otherwise :data:`SANITIZE_ENV_VAR` is
    consulted.  Read dynamically so tests can flip the environment.
    """
    if override is not None:
        return override
    return os.environ.get(SANITIZE_ENV_VAR, "").strip().lower() in _TRUTHY


# -- speaker invariants ------------------------------------------------------


def check_speaker_invariants(speaker: "BGPSpeaker") -> None:
    """Validate one speaker's RIB stack; raises :class:`InvariantError`."""
    _check_loc_rib_backed(speaker)
    _check_adj_rib_out_exported(speaker)
    _check_moas_attachments(speaker)


def _check_loc_rib_backed(speaker: "BGPSpeaker") -> None:
    """Every non-local best route must still exist in some Adj-RIB-In."""
    for entry in speaker.loc_rib.entries():
        if entry.is_local:
            local = speaker._local_routes.get(entry.prefix)
            invariant(
                local is entry,
                f"AS{speaker.asn}: Loc-RIB best for {entry.prefix} claims to "
                "be local but is not the registered local route",
            )
            continue
        invariant(
            entry.peer is not None,
            f"AS{speaker.asn}: non-local Loc-RIB entry for {entry.prefix} "
            "has no peer",
        )
        backing = speaker.adj_rib_in.get(entry.peer, entry.prefix)
        invariant(
            backing is entry,
            f"AS{speaker.asn}: Loc-RIB best for {entry.prefix} (via peer "
            f"{entry.peer}) is not backed by the Adj-RIB-In",
        )


def _check_adj_rib_out_exported(speaker: "BGPSpeaker") -> None:
    """Advertised state must correspond to genuine exports."""
    for peer in sorted(speaker._links):
        for prefix in sorted(speaker.adj_rib_out.prefixes_for_peer(peer)):
            advertised = speaker.adj_rib_out.advertised(peer, prefix)
            if advertised is None:
                raise InvariantError(
                    f"AS{speaker.asn}: Adj-RIB-Out lists {prefix} for peer "
                    f"{peer} with no recorded attributes"
                )
            invariant(
                peer in speaker.sessions,
                f"AS{speaker.asn}: Adj-RIB-Out holds {prefix} for unknown "
                f"peer {peer}",
            )
            first = advertised.as_path.first_asn
            invariant(
                first == speaker.asn,
                f"AS{speaker.asn}: advertised route for {prefix} to peer "
                f"{peer} does not start with our ASN (got {first}); the "
                "export prepend did not happen",
            )


def _check_moas_attachments(speaker: "BGPSpeaker") -> None:
    """MOAS community attachments must decode/encode consistently."""
    from repro.core.moas_list import MLVAL, MoasList

    for entry in speaker.loc_rib.entries():
        attached = entry.attributes.communities_of_value(MLVAL)
        if not attached:
            continue
        decoded = MoasList.from_communities(entry.attributes.communities)
        if decoded is None:
            raise InvariantError(
                f"AS{speaker.asn}: route for {entry.prefix} carries MLVal "
                "communities that decode to no MOAS list"
            )
        carried = frozenset(c.asn for c in attached)
        invariant(
            decoded.origins == carried,
            f"AS{speaker.asn}: MOAS list for {entry.prefix} decodes to "
            f"{sorted(decoded.origins)} but the route carries communities "
            f"for {sorted(carried)}",
        )
        invariant(
            decoded.to_communities() == attached,
            f"AS{speaker.asn}: MOAS list for {entry.prefix} does not "
            "round-trip through its community encoding",
        )


# -- network-level sweep -----------------------------------------------------


def check_network_invariants(network: "object") -> None:
    """Validate every speaker in a :class:`~repro.bgp.network.Network`.

    Accepts the network duck-typed (``speakers`` mapping) to avoid an
    import cycle; used by the experiment runner after convergence.
    """
    speakers = getattr(network, "speakers", None)
    if speakers is None:
        raise InvariantError("object has no speakers mapping")
    for asn in sorted(speakers):
        check_speaker_invariants(speakers[asn])
