"""BGP session state machine.

A compressed version of the RFC 4271 FSM appropriate for a simulator with
reliable in-order links: Idle → OpenSent → Established, torn down on
NOTIFICATION, hold-timer expiry or link failure.  Keepalives are exchanged
on a timer while established so hold-timer machinery is exercised for the
failure-injection tests, but they carry no routing information.
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING, Any, Dict, Optional

from repro.bgp.errors import SessionError
from repro.bgp.messages import (
    KeepaliveMessage,
    Message,
    NotificationMessage,
    OpenMessage,
    UpdateMessage,
)
from repro.eventsim.simulator import RearmPlan, Simulator
from repro.eventsim.timers import PeriodicTimer, Timer
from repro.net.asn import ASN
from repro.net.link import Link

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.bgp.speaker import BGPSpeaker


class SessionState(enum.Enum):
    IDLE = "idle"
    OPEN_SENT = "open-sent"
    ESTABLISHED = "established"


class Session:
    """One side of a BGP peering.

    The owning speaker drives the session: ``start()`` sends OPEN, message
    dispatch comes through ``handle_message``, and the session calls back
    into the speaker on establishment (to advertise the table) and teardown
    (to flush routes learned from the peer).
    """

    # Peering identity and wiring: the restored network is built over the
    # same graph, so the owner/peer/link references and the configured hold
    # time come from construction, not from the snapshot.
    _SNAPSHOT_WAIVED = frozenset({"sim", "owner", "peer_asn", "link", "hold_time"})

    def __init__(
        self,
        sim: Simulator,
        owner: "BGPSpeaker",
        peer_asn: ASN,
        link: Link,
        hold_time: float = 90.0,
        keepalive_interval: Optional[float] = None,
    ) -> None:
        if hold_time < 0:
            raise SessionError(f"hold time must be non-negative: {hold_time}")
        self.sim = sim
        self.owner = owner
        self.peer_asn = peer_asn
        self.link = link
        self.state = SessionState.IDLE
        self.hold_time = float(hold_time)
        interval = (
            keepalive_interval if keepalive_interval is not None else hold_time / 3.0
        )
        self._keepalive_timer: Optional[PeriodicTimer] = None
        self._hold_timer: Optional[Timer] = None
        if self.hold_time > 0:
            self._keepalive_timer = PeriodicTimer(
                sim, interval, self._send_keepalive, label=f"ka->{peer_asn}"
            )
            self._hold_timer = Timer(
                sim, self.hold_time, self._hold_expired, label=f"hold<-{peer_asn}"
            )

    # -- lifecycle -------------------------------------------------------------

    def start(self) -> None:
        """Initiate the session by sending OPEN."""
        if self.state is not SessionState.IDLE:
            raise SessionError(f"cannot start session in state {self.state}")
        self.state = SessionState.OPEN_SENT
        self._send(OpenMessage(self.owner.asn, hold_time=self.hold_time))

    def close(self, reason: str = "administrative") -> None:
        """Send CEASE and drop to idle."""
        if self.state is SessionState.IDLE:
            return
        self._send(NotificationMessage(NotificationMessage.CEASE, reason=reason))
        self._teardown(reason)

    # -- message handling ----------------------------------------------------

    def handle_wire(self, sender: ASN, message: Message) -> None:
        """Link-receiver entry point (``sender`` is implied by the session).

        The established-session UPDATE case is inlined: it is essentially
        every message once routing starts, and this path runs once per
        delivered message.  Everything else defers to
        :meth:`handle_message`.
        """
        if (
            isinstance(message, UpdateMessage)
            and self.state is SessionState.ESTABLISHED
        ):
            hold = self._hold_timer
            if hold is not None:
                hold.restart()
            self.owner.handle_update(self.peer_asn, message)
            return
        self.handle_message(message)

    def handle_message(self, message: Message) -> None:
        # Once sessions are up, essentially every message is an UPDATE;
        # dispatch checks run in frequency order.
        if isinstance(message, UpdateMessage):
            # UPDATEs are the speaker's business; the session only gates them.
            if self.state is not SessionState.ESTABLISHED:
                self._teardown("UPDATE received outside established state")
                return
            self._touch_hold_timer()
            self.owner.handle_update(self.peer_asn, message)
        elif isinstance(message, OpenMessage):
            self._handle_open(message)
        elif isinstance(message, KeepaliveMessage):
            self._touch_hold_timer()
        elif isinstance(message, NotificationMessage):
            self._teardown(f"notification from peer: {message.reason}")
        else:
            # Unknown message classes were (accidentally) treated as
            # UPDATEs before the dispatch reorder; fail loudly instead.
            raise SessionError(
                f"AS{self.owner.asn}: unhandled message type "
                f"{type(message).__name__} from AS{self.peer_asn}"
            )

    def _handle_open(self, message: OpenMessage) -> None:
        if message.asn != self.peer_asn:
            self._send(
                NotificationMessage(
                    NotificationMessage.CEASE,
                    reason=f"expected peer AS {self.peer_asn}, got {message.asn}",
                )
            )
            self._teardown("peer AS mismatch")
            return
        if self.state is SessionState.IDLE:
            # Passive side: answer with our own OPEN, then establish.
            self.state = SessionState.OPEN_SENT
            self._send(OpenMessage(self.owner.asn, hold_time=self.hold_time))
            self._establish()
        elif self.state is SessionState.OPEN_SENT:
            self._establish()
        # An OPEN in established state is a protocol error per RFC; with the
        # simulator's reliable links it cannot happen, so fail loudly.
        elif self.state is SessionState.ESTABLISHED:
            raise SessionError(f"unexpected OPEN from {self.peer_asn} while established")

    def _establish(self) -> None:
        self.state = SessionState.ESTABLISHED
        if self._keepalive_timer is not None:
            self._keepalive_timer.start()
        if self._hold_timer is not None:
            self._hold_timer.start()
        trace = self.sim.trace
        if trace.wants("session.established"):
            trace.record(
                self.sim.now,
                "session.established",
                local=self.owner.asn,
                peer=self.peer_asn,
            )
        self.owner.on_session_established(self.peer_asn)

    def _teardown(self, reason: str) -> None:
        if self.state is SessionState.IDLE:
            return
        self.state = SessionState.IDLE
        if self._keepalive_timer is not None:
            self._keepalive_timer.stop()
        if self._hold_timer is not None:
            self._hold_timer.stop()
        self.sim.trace.record(
            self.sim.now,
            "session.closed",
            local=self.owner.asn,
            peer=self.peer_asn,
            reason=reason,
        )
        self.owner.on_session_closed(self.peer_asn)

    # -- timers -----------------------------------------------------------------

    def _send_keepalive(self) -> None:
        if self.state is SessionState.ESTABLISHED:
            self._send(KeepaliveMessage())

    def _touch_hold_timer(self) -> None:
        if self._hold_timer is not None and self.state is SessionState.ESTABLISHED:
            self._hold_timer.restart()

    def _hold_expired(self) -> None:
        self._send(
            NotificationMessage(
                NotificationMessage.HOLD_TIMER_EXPIRED, reason="hold timer expired"
            )
        )
        self._teardown("hold timer expired")

    # -- transport ----------------------------------------------------------------

    def _send(self, message: Message) -> bool:
        return self.link.send(self.owner.asn, message)

    @property
    def established(self) -> bool:
        return self.state is SessionState.ESTABLISHED

    # -- snapshot / restore ----------------------------------------------------

    def pending_events(self) -> int:
        """Armed timer expiries owned by this session."""
        count = 0
        if self._keepalive_timer is not None and self._keepalive_timer.sort_key is not None:
            count += 1
        if self._hold_timer is not None and self._hold_timer.running:
            count += 1
        return count

    def snapshot_state(self) -> Dict[str, Any]:
        keepalive = None
        if self._keepalive_timer is not None:
            key = self._keepalive_timer.sort_key
            if key is not None:
                keepalive = {
                    "next_fire": self._keepalive_timer.next_fire_at,
                    "sort_key": key,
                }
        hold = None
        if self._hold_timer is not None and self._hold_timer.running:
            hold = {
                "expires_at": self._hold_timer.expires_at,
                "sort_key": self._hold_timer.sort_key,
            }
        return {"state": self.state.value, "keepalive": keepalive, "hold": hold}

    def restore_state(self, state: Dict[str, Any], rearm: RearmPlan) -> None:
        """Overwrite FSM state without firing establish/teardown callbacks.

        The owning speaker restores its own RIBs separately, so the
        ``on_session_established`` re-advertisement must not run here.
        """
        self.state = SessionState(state["state"])
        keepalive = state["keepalive"]
        if keepalive is not None:
            timer = self._keepalive_timer
            if timer is None:
                raise SessionError(
                    f"snapshot has a keepalive timer but session to "
                    f"{self.peer_asn} runs without one"
                )
            rearm.add(
                keepalive["sort_key"],
                lambda t=timer, at=keepalive["next_fire"]: t.resume_at(at),
            )
        hold = state["hold"]
        if hold is not None:
            timer = self._hold_timer
            if timer is None:
                raise SessionError(
                    f"snapshot has a hold timer but session to "
                    f"{self.peer_asn} runs without one"
                )
            rearm.add(
                hold["sort_key"],
                lambda t=timer, at=hold["expires_at"]: t.resume_at(at),
            )
