"""BGP path attributes.

Implements the attributes the paper's mechanism touches:

* ``ORIGIN`` — IGP / EGP / INCOMPLETE.
* ``AS_PATH`` — a sequence of segments; each segment is either an ordered
  ``AS_SEQUENCE`` or an unordered ``AS_SET`` (produced by aggregation, and
  the reason the paper's footnote 1 says "an element in the AS path may
  include a set of ASes").
* ``NEXT_HOP``, ``MED``, ``LOCAL_PREF`` — used by the decision process.
* ``COMMUNITY`` (RFC 1997) — the optional transitive attribute the MOAS
  list is encoded in, as ``(AS << 16) | value`` four-octet values.
* ``ATOMIC_AGGREGATE`` / ``AGGREGATOR`` — set by route aggregation.

All attribute containers are immutable; updates produce new objects.  This
keeps RIB entries safe to share between speakers in-process, which the
simulator exploits heavily.
"""

from __future__ import annotations

import enum
from typing import FrozenSet, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.bgp.errors import AttributeError_
from repro.net.asn import ASN, validate_asn


class Origin(enum.IntEnum):
    """ORIGIN attribute; lower is preferred by the decision process."""

    IGP = 0
    EGP = 1
    INCOMPLETE = 2


class SegmentType(enum.Enum):
    AS_SEQUENCE = "sequence"
    AS_SET = "set"


class AsPathSegment:
    """One AS_PATH segment.

    ``AS_SEQUENCE`` preserves order; ``AS_SET`` is stored sorted so equal
    sets compare and hash identically.
    """

    __slots__ = ("kind", "asns")

    def __init__(self, kind: SegmentType, asns: Iterable[ASN]) -> None:
        asn_list = [validate_asn(a) for a in asns]
        if not asn_list:
            raise AttributeError_("AS path segment cannot be empty")
        if kind is SegmentType.AS_SET:
            asn_list = sorted(set(asn_list))
        object.__setattr__(self, "kind", kind)
        object.__setattr__(self, "asns", tuple(asn_list))

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("AsPathSegment is immutable")

    @property
    def path_length_contribution(self) -> int:
        """RFC 4271 semantics: an AS_SET counts as one hop, a sequence as
        its number of ASes."""
        return len(self.asns) if self.kind is SegmentType.AS_SEQUENCE else 1

    def __contains__(self, asn: ASN) -> bool:
        return asn in self.asns

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, AsPathSegment):
            return NotImplemented
        return self.kind == other.kind and self.asns == other.asns

    def __hash__(self) -> int:
        return hash((self.kind, self.asns))

    def __reduce__(self) -> Tuple:
        # The immutability guard (__setattr__ raises) breaks the default
        # slot-state pickling path; reconstruct through __init__ instead.
        # Needed so attribute bundles can cross the process pool.
        return (AsPathSegment, (self.kind, self.asns))

    def __repr__(self) -> str:
        if self.kind is SegmentType.AS_SEQUENCE:
            return " ".join(str(a) for a in self.asns)
        return "{" + ",".join(str(a) for a in self.asns) + "}"


class AsPath:
    """An AS_PATH: a tuple of segments.

    The common case — a pure sequence — has convenience constructors and
    accessors.  ``origin_asns`` returns a *set* because, after aggregation,
    the final element may be an AS_SET and the route has several plausible
    origins; the MOAS observer must treat each as an origin candidate.
    """

    __slots__ = ("segments", "_length", "_origins", "_origin")

    #: Sentinel distinguishing "not computed" from a computed None origin.
    _UNSET = object()

    def __init__(self, segments: Iterable[AsPathSegment] = ()) -> None:
        object.__setattr__(self, "segments", tuple(segments))
        object.__setattr__(self, "_length", None)
        object.__setattr__(self, "_origins", None)
        object.__setattr__(self, "_origin", AsPath._UNSET)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("AsPath is immutable")

    @classmethod
    def from_asns(cls, asns: Sequence[ASN]) -> "AsPath":
        """Build a pure AS_SEQUENCE path (empty input → empty path)."""
        if not asns:
            return cls()
        return cls([AsPathSegment(SegmentType.AS_SEQUENCE, asns)])

    # -- accessors ----------------------------------------------------------

    @property
    def is_empty(self) -> bool:
        return not self.segments

    @property
    def length(self) -> int:
        """Decision-process path length (AS_SET counts once).

        Memoized: the decision ladder consults path length on every pairwise
        comparison, and paths are immutable.
        """
        length = self._length
        if length is None:
            length = sum(seg.path_length_contribution for seg in self.segments)
            object.__setattr__(self, "_length", length)
        return length

    def asns(self) -> Iterator[ASN]:
        """All ASNs mentioned anywhere in the path, in segment order."""
        for segment in self.segments:
            yield from segment.asns

    def __contains__(self, asn: ASN) -> bool:
        return any(asn in segment for segment in self.segments)

    @property
    def first_asn(self) -> Optional[ASN]:
        """The neighbour the route was learned from (leftmost AS)."""
        if not self.segments:
            return None
        first = self.segments[0]
        if first.kind is SegmentType.AS_SET:
            return None  # ambiguous
        return first.asns[0]

    def origin_asns(self) -> FrozenSet[ASN]:
        """The origin candidates.

        For a path ending in an AS_SEQUENCE this is the singleton holding
        the rightmost AS — the paper's "origin AS".  For a path ending in
        an AS_SET (aggregation) every member of the set is a candidate.
        Memoized: the MOAS observer asks on every announcement.
        """
        origins = self._origins
        if origins is None:
            if not self.segments:
                origins = frozenset()
            else:
                last = self.segments[-1]
                if last.kind is SegmentType.AS_SEQUENCE:
                    origins = frozenset({last.asns[-1]})
                else:
                    origins = frozenset(last.asns)
            object.__setattr__(self, "_origins", origins)
        return origins

    @property
    def origin_asn(self) -> Optional[ASN]:
        """The unique origin AS, or ``None`` if aggregation made it a set.

        Memoized: the checker and the measurement layer ask per
        announcement, and paths are interned so the cache is shared.
        """
        origin = self._origin
        if origin is AsPath._UNSET:
            origins = self.origin_asns()
            origin = next(iter(origins)) if len(origins) == 1 else None
            object.__setattr__(self, "_origin", origin)
        return origin

    # -- construction -------------------------------------------------------

    def prepend(self, asn: ASN) -> "AsPath":
        """Return a new path with ``asn`` prepended (what a speaker does on
        eBGP export)."""
        validate_asn(asn)
        if self.segments and self.segments[0].kind is SegmentType.AS_SEQUENCE:
            head = self.segments[0]
            new_head = AsPathSegment(
                SegmentType.AS_SEQUENCE, (asn,) + head.asns
            )
            return AsPath((new_head,) + self.segments[1:])
        new_head = AsPathSegment(SegmentType.AS_SEQUENCE, (asn,))
        return AsPath((new_head,) + self.segments)

    @staticmethod
    def aggregate(paths: Sequence["AsPath"]) -> "AsPath":
        """Aggregate several paths RFC 4271-style.

        The longest common leading sequence is preserved; every other AS
        appearing in any path is collapsed into a trailing AS_SET.
        """
        if not paths:
            return AsPath()
        if len(paths) == 1:
            return paths[0]
        sequences = [list(p.asns()) for p in paths]
        common: List[ASN] = []
        for position, asn in enumerate(sequences[0]):
            if all(len(s) > position and s[position] == asn for s in sequences):
                common.append(asn)
            else:
                break
        leftovers = set()
        for seq in sequences:
            leftovers.update(seq[len(common):])
        segments: List[AsPathSegment] = []
        if common:
            segments.append(AsPathSegment(SegmentType.AS_SEQUENCE, common))
        if leftovers:
            segments.append(AsPathSegment(SegmentType.AS_SET, sorted(leftovers)))
        return AsPath(segments)

    # -- dunder ---------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, AsPath):
            return NotImplemented
        return self.segments == other.segments

    def __hash__(self) -> int:
        return hash(self.segments)

    def __reduce__(self) -> Tuple:
        # Rebuild through __init__ (the blocked __setattr__ breaks default
        # slot pickling); the memoized length/origins re-derive lazily.
        return (AsPath, (self.segments,))

    def __repr__(self) -> str:
        return "AsPath(" + " ".join(repr(s) for s in self.segments) + ")"

    def __str__(self) -> str:
        return " ".join(repr(s) for s in self.segments) or "<empty>"


class Community:
    """A four-octet RFC 1997 community, conventionally ``AS:value``.

    The paper reserves one well-known value of the low 16 bits (``MLVal``)
    to mean "the AS in the high 16 bits may originate this prefix"; that
    encoding lives in :mod:`repro.core.moas_list`, which builds on this
    class.
    """

    __slots__ = ("asn", "value")

    # RFC 1997 well-known communities.
    NO_EXPORT = 0xFFFFFF01
    NO_ADVERTISE = 0xFFFFFF02
    NO_EXPORT_SUBCONFED = 0xFFFFFF03

    def __init__(self, asn: int, value: int) -> None:
        if not 0 <= asn <= 0xFFFF:
            raise AttributeError_(f"community AS part out of range: {asn}")
        if not 0 <= value <= 0xFFFF:
            raise AttributeError_(f"community value part out of range: {value}")
        object.__setattr__(self, "asn", asn)
        object.__setattr__(self, "value", value)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("Community is immutable")

    @classmethod
    def from_u32(cls, raw: int) -> "Community":
        if not 0 <= raw <= 0xFFFFFFFF:
            raise AttributeError_(f"community out of range: {raw}")
        return cls(raw >> 16, raw & 0xFFFF)

    def to_u32(self) -> int:
        return (self.asn << 16) | self.value

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Community):
            return NotImplemented
        return self.asn == other.asn and self.value == other.value

    def __lt__(self, other: "Community") -> bool:
        return self.to_u32() < other.to_u32()

    def __hash__(self) -> int:
        return hash((self.asn, self.value))

    def __reduce__(self) -> Tuple:
        return (Community, (self.asn, self.value))

    def __repr__(self) -> str:
        return f"Community({self.asn}:{self.value})"

    def __str__(self) -> str:
        return f"{self.asn}:{self.value}"


class PathAttributes:
    """The full attribute bundle attached to a route.

    Immutable; the ``replace``/``with_*`` helpers derive modified copies.
    """

    __slots__ = (
        "origin",
        "as_path",
        "next_hop",
        "med",
        "local_pref",
        "communities",
        "atomic_aggregate",
        "aggregator",
        "_key_cache",
        "_hash_cache",
    )

    DEFAULT_LOCAL_PREF = 100

    def __init__(
        self,
        origin: Origin = Origin.IGP,
        as_path: Optional[AsPath] = None,
        next_hop: Optional[ASN] = None,
        med: int = 0,
        local_pref: int = DEFAULT_LOCAL_PREF,
        communities: Iterable[Community] = (),
        atomic_aggregate: bool = False,
        aggregator: Optional[ASN] = None,
    ) -> None:
        if med < 0:
            raise AttributeError_(f"MED must be non-negative, got {med}")
        if local_pref < 0:
            raise AttributeError_(f"LOCAL_PREF must be non-negative, got {local_pref}")
        object.__setattr__(self, "origin", Origin(origin))
        object.__setattr__(self, "as_path", as_path if as_path is not None else AsPath())
        object.__setattr__(self, "next_hop", next_hop)
        object.__setattr__(self, "med", int(med))
        object.__setattr__(self, "local_pref", int(local_pref))
        object.__setattr__(self, "communities", frozenset(communities))
        object.__setattr__(self, "atomic_aggregate", bool(atomic_aggregate))
        object.__setattr__(self, "aggregator", aggregator)
        object.__setattr__(self, "_key_cache", None)
        object.__setattr__(self, "_hash_cache", None)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("PathAttributes is immutable")

    # -- derivation helpers ---------------------------------------------------

    def replace(self, **changes: object) -> "PathAttributes":
        """Return a copy with the named fields replaced."""
        current = {
            "origin": self.origin,
            "as_path": self.as_path,
            "next_hop": self.next_hop,
            "med": self.med,
            "local_pref": self.local_pref,
            "communities": self.communities,
            "atomic_aggregate": self.atomic_aggregate,
            "aggregator": self.aggregator,
        }
        unknown = set(changes) - set(current)
        if unknown:
            raise AttributeError_(f"unknown attribute fields: {sorted(unknown)}")
        current.update(changes)
        return PathAttributes(**current)  # type: ignore[arg-type]

    def with_prepended(self, asn: ASN, next_hop: ASN) -> "PathAttributes":
        """Derive export attributes: prepend ``asn``, rewrite next hop."""
        return self.replace(as_path=self.as_path.prepend(asn), next_hop=next_hop)

    def with_communities(self, communities: Iterable[Community]) -> "PathAttributes":
        return self.replace(communities=frozenset(communities))

    def add_communities(self, communities: Iterable[Community]) -> "PathAttributes":
        return self.replace(communities=self.communities | frozenset(communities))

    def without_communities(self) -> "PathAttributes":
        """Drop the (optional transitive) community attribute — the allowed
        behaviour §4.3 warns about."""
        return self.replace(communities=frozenset())

    # -- queries ----------------------------------------------------------------

    @property
    def origin_asn(self) -> Optional[ASN]:
        return self.as_path.origin_asn

    def communities_of_value(self, value: int) -> FrozenSet[Community]:
        return frozenset(c for c in self.communities if c.value == value)

    # -- dunder -------------------------------------------------------------------

    def _key(self) -> Tuple:
        # Attribute bundles are immutable and compared/hashed on every
        # Adj-RIB-Out duplicate check and announcement grouping — memoize
        # the comparison key (and its hash, below) per instance.
        key = self._key_cache
        if key is None:
            key = (
                self.origin,
                self.as_path,
                self.next_hop,
                self.med,
                self.local_pref,
                self.communities,
                self.atomic_aggregate,
                self.aggregator,
            )
            object.__setattr__(self, "_key_cache", key)
        return key

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PathAttributes):
            return NotImplemented
        if self is other:
            return True
        return self._key() == other._key()

    def __hash__(self) -> int:
        value = self._hash_cache
        if value is None:
            value = hash(self._key())
            object.__setattr__(self, "_hash_cache", value)
        return value

    def __reduce__(self) -> Tuple:
        # Reconstruct through __init__ (the blocked __setattr__ breaks the
        # default slot-state path); the key/hash caches re-derive lazily.
        return (
            PathAttributes,
            (
                self.origin,
                self.as_path,
                self.next_hop,
                self.med,
                self.local_pref,
                self.communities,
                self.atomic_aggregate,
                self.aggregator,
            ),
        )

    def __repr__(self) -> str:
        return (
            f"PathAttributes(path={self.as_path}, origin={self.origin.name}, "
            f"lp={self.local_pref}, med={self.med}, "
            f"communities={sorted(self.communities)})"
        )
