"""One shard's slice of a sharded BGP network.

:class:`ShardNetwork` mirrors :class:`~repro.bgp.network.Network` for the
subset of speakers a shard owns: full :class:`ShardLink` objects between
two local speakers, and a :class:`BoundaryLink` half for every peering
whose other end lives on a different shard.  Boundary links are the *only*
way messages cross shards: an outbound send appends a canonically-ordered
record to the shard's :class:`ShardOutbox` mailbox, and inbound records —
routed by the coordinator at a barrier — are enqueued as one simulator
event each, carrying the order key minted on the sending shard.

The module also owns the snapshot algebra that makes warm-start compose
with sharding: :func:`merge_network_snapshots` folds per-shard captures
into the exact format :class:`Network` produces, and
:func:`split_network_snapshot` cuts a serial capture into per-shard
slices — so one cached baseline serves serial and sharded runs alike.
"""

from __future__ import annotations

from functools import partial
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.bgp.interning import RouteInterner
from repro.bgp.policy import Policy
from repro.bgp.speaker import BGPSpeaker, SpeakerConfig
from repro.eventsim.sharded import OrderKey, ShardSimulator
from repro.eventsim.simulator import RearmPlan, SimulationError, SnapshotError
from repro.net.addresses import Prefix
from repro.net.asn import ASN
from repro.net.link import Link, LinkState, _Flight
from repro.topology.asgraph import ASGraph

PolicyFactory = Callable[[ASN], Optional[Policy]]

#: One cross-shard message in flight:
#: ``(link_key, sender, delivery_time, order_key, message)``.
MailRecord = Tuple[Tuple[ASN, ASN], ASN, float, OrderKey, Any]


class ShardOutbox:
    """Per-destination-shard mailboxes accumulated between barriers.

    Append order within one mailbox is exactly the shard's push order (the
    order keys ascend), so a drained batch is already canonical — the
    receiving side inserts records verbatim and the keys do the sorting.
    """

    def __init__(self) -> None:
        self._by_dest: Dict[int, List[MailRecord]] = {}
        self.messages_out = 0

    def append(self, dest_shard: int, record: MailRecord) -> None:
        self._by_dest.setdefault(dest_shard, []).append(record)
        self.messages_out += 1

    def is_empty(self) -> bool:
        return not self._by_dest

    def drain(self) -> Dict[int, List[MailRecord]]:
        """Take every pending mailbox (the per-barrier flush)."""
        drained = self._by_dest
        self._by_dest = {}
        return drained


class ShardLink(Link):
    """An intra-shard link with the stricter sharded coalescing rule.

    The serial engine may coalesce consecutive same-direction sends from
    *different* firings (its ``last_seq`` guard proves nothing local was
    scheduled in between).  Under sharding that proof is too weak: an
    event from another shard can hold a rank *between* the two firings and
    would then rightfully sort between the batch members.  Batching here
    is therefore only allowed within one firing with no intervening push —
    local or outbox — which is exactly the window in which no remote key
    can interleave.  ``account_extra_events`` keeps the event accounting
    batching-invariant, so outcomes cannot tell the difference.
    """

    _SNAPSHOT_WAIVED = Link._SNAPSHOT_WAIVED | frozenset({"_flight_ctx"})

    def __init__(
        self, sim: ShardSimulator, a: ASN, b: ASN, delay: float = 0.01
    ) -> None:
        super().__init__(sim, a, b, delay=delay)
        self.sim: ShardSimulator = sim
        # Open-batch context: token -> (firing_token, push_count at open).
        self._flight_ctx: Dict[int, Tuple[Tuple[int, int], int]] = {}

    def _send_at(self, sender: Any, message: Any, epoch: int, time: float) -> None:
        sim = self.sim
        token = self._open.get(sender)
        if token is not None:
            flight = self._in_flight.get(token)
            context = self._flight_ctx.get(token)
            if (
                flight is not None
                and flight.time == time
                and flight.epoch == epoch
                and context == (sim.firing_token, sim.push_count)
                and not flight.handle.cancelled
            ):
                flight.messages.append(message)
                return
        # Not coalescible: schedule a fresh batch (the push claims the next
        # order key), then remember the context it was opened under.
        token = self._flight_seq
        self._flight_seq += 1
        handle = sim.schedule_at(
            time, partial(self._deliver, token), label=self._labels[sender]
        )
        self._in_flight[token] = _Flight(
            sender, [message], epoch, time, handle, handle.sort_key[2]
        )
        self._open[sender] = token
        self._flight_ctx[token] = (sim.firing_token, sim.push_count)

    def _deliver(self, token: int) -> None:
        self._flight_ctx.pop(token, None)
        super()._deliver(token)


class BoundaryLink:
    """The local half of a peering whose other end lives on another shard.

    Duck-types the :class:`~repro.net.link.Link` surface the BGP layer
    touches — ``attach``/``send``/``other_end``/``endpoints``/``delay``/
    ``state``/counters/``pending_events``/snapshot — but carries traffic
    through the shard mailbox instead of the local event queue.  Sends are
    stamped with the firing context's order key at send time; deliveries
    are scheduled by :meth:`enqueue_inbound` when the coordinator routes
    the record in, one simulator event per message (the serial engine's
    batching credit keeps the event accounting aligned; see
    :class:`ShardLink`).
    """

    # Wiring and topology identity, rebuilt at construction; the pending
    # inbound count tracks live queue events the same way Link's in-flight
    # map does and is regenerated by the delivery protocol.
    _SNAPSHOT_WAIVED = frozenset(
        {
            "sim",
            "a",
            "b",
            "delay",
            "local_end",
            "remote_end",
            "dest_shard",
            "key",
            "outbox",
            "_receiver",
            "_label",
            "_pending_inbound",
            "_m_out",
        }
    )

    def __init__(
        self,
        sim: ShardSimulator,
        a: ASN,
        b: ASN,
        local_end: ASN,
        dest_shard: int,
        outbox: ShardOutbox,
        delay: float = 0.01,
    ) -> None:
        if a == b:
            raise ValueError(f"link endpoints must differ, got {a!r} twice")
        if delay <= 0:
            # Positive delay is the lookahead the whole barrier design
            # rests on: a zero-delay boundary link would deliver within
            # the sending tick, which the rank exchange cannot order.
            raise ValueError(f"link delay must be positive, got {delay!r}")
        if local_end not in (a, b):
            raise ValueError(f"{local_end!r} is not an endpoint")
        self.sim = sim
        self.a = a
        self.b = b
        self.key: Tuple[ASN, ASN] = (a, b)
        self.delay = float(delay)
        self.local_end = local_end
        self.remote_end = b if local_end == a else a
        self.dest_shard = dest_shard
        self.outbox = outbox
        self.state = LinkState.UP
        self._epoch = 0
        self.messages_sent = 0
        self.messages_dropped = 0
        self._receiver: Optional[Callable[[Any, Any], None]] = None
        self._pending_inbound = 0
        self._label = f"deliver {self.remote_end}->{self.local_end}"
        metrics = sim.metrics
        self._m_out = (
            metrics.counter("shard.cross_messages_out")
            if metrics is not None
            else None
        )

    @property
    def endpoints(self) -> Tuple[ASN, ASN]:
        return (self.a, self.b)

    def other_end(self, endpoint: ASN) -> ASN:
        if endpoint == self.a:
            return self.b
        if endpoint == self.b:
            return self.a
        raise ValueError(f"{endpoint!r} is not an endpoint of {self!r}")

    def attach(self, endpoint: ASN, receiver: Callable[[Any, Any], None]) -> None:
        """Register the local receiver; the remote end attaches on its own
        shard's half."""
        if endpoint != self.local_end:
            raise ValueError(
                f"{endpoint!r} is not the local end of {self!r}; the remote "
                "half lives on shard-owned state there"
            )
        self._receiver = receiver

    def send(self, sender: ASN, message: Any) -> bool:
        """Append ``message`` to the outbound mailbox (the canonical — and
        only — cross-shard delivery API)."""
        if sender != self.local_end:
            raise ValueError(
                f"{sender!r} cannot send on {self!r}: only the local end "
                f"{self.local_end!r} is owned by this shard"
            )
        if self.state is LinkState.DOWN:
            self.messages_dropped += 1
            return False
        self.messages_sent += 1
        if self._m_out is not None:
            self._m_out.inc()
        sim = self.sim
        epoch, rank = sim.order_context
        order_key: OrderKey = (epoch, rank, sim.next_push_index())
        self.outbox.append(
            self.dest_shard,
            (self.key, sender, sim.now + self.delay, order_key, message),
        )
        return True

    def enqueue_inbound(
        self, sender: ASN, time: float, order_key: OrderKey, message: Any
    ) -> None:
        """Schedule a routed-in record for delivery under its carried key."""
        self._pending_inbound += 1
        self.sim.schedule_remote(
            time,
            order_key,
            partial(self._deliver_inbound, sender, message),
            label=self._label,
        )

    def _deliver_inbound(self, sender: ASN, message: Any) -> None:
        self._pending_inbound -= 1
        if self.state is LinkState.DOWN:
            self.messages_dropped += 1
            return
        receiver = self._receiver
        if receiver is None:
            raise RuntimeError(
                f"no receiver attached at {self.local_end!r} on {self!r}"
            )
        receiver(sender, message)

    def fail(self) -> None:
        raise SimulationError(
            "failing a cross-shard link mid-run is not supported: both "
            "halves would need a coordinated epoch bump (run fault "
            "scenarios on the serial engine)"
        )

    def restore(self) -> None:
        self.state = LinkState.UP

    # -- snapshot / restore --------------------------------------------------

    def pending_events(self) -> int:
        """Live inbound delivery events on this shard's queue."""
        return self._pending_inbound

    def snapshot_state(self) -> Dict[str, Any]:
        if self._pending_inbound:
            raise SnapshotError(
                f"{self!r} has {self._pending_inbound} inbound deliveries "
                "in flight; sharded baselines may only be captured at "
                "quiescence"
            )
        return {
            "state": self.state.value,
            "epoch": self._epoch,
            "messages_sent": self.messages_sent,
            "messages_dropped": self.messages_dropped,
            "in_flight": [],
        }

    def restore_state(self, state: Dict[str, Any], rearm: RearmPlan) -> None:
        if state["in_flight"]:
            raise SnapshotError(
                f"{self!r}: cannot restore in-flight cross-shard messages; "
                "baselines are captured at quiescence"
            )
        self.state = LinkState(state["state"])
        self._epoch = int(state["epoch"])
        self.messages_sent = int(state["messages_sent"])
        self.messages_dropped = int(state["messages_dropped"])

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"BoundaryLink({self.a!r}<->{self.b!r}, local={self.local_end!r}, "
            f"dest_shard={self.dest_shard})"
        )


class ShardNetwork:
    """The slice of a simulated internetwork owned by one shard."""

    # The graph, assignment, config and interner define *which* slice this
    # is; the outbox is barrier-transient coordination state.
    _SNAPSHOT_WAIVED = frozenset(
        {"graph", "assignment", "shard_id", "config", "interner", "outbox",
         "boundary"}
    )

    def __init__(
        self,
        graph: ASGraph,
        assignment: Dict[ASN, int],
        shard_id: int,
        sim: ShardSimulator,
        config: Optional[SpeakerConfig] = None,
        policy_factory: Optional[PolicyFactory] = None,
        link_delay: float = 0.01,
    ) -> None:
        self.graph = graph
        self.assignment = assignment
        self.shard_id = shard_id
        self.sim = sim
        self.config = config or SpeakerConfig()
        self.outbox = ShardOutbox()
        # Process-local intern table: route objects never cross shards by
        # reference, so each shard interns what its speakers hold.
        self.interner = RouteInterner()
        self.sim.add_reset_hook(self.interner.clear)

        self.speakers: Dict[ASN, BGPSpeaker] = {}
        for asn in graph.asns():
            if assignment[asn] != shard_id:
                continue
            policy = policy_factory(asn) if policy_factory is not None else None
            self.speakers[asn] = BGPSpeaker(
                sim, asn, config=self.config, policy=policy,
                interner=self.interner,
            )

        # Links touching at least one local speaker.  A link's key matches
        # the serial Network's (the graph's edge tuple) so snapshot slices
        # line up; boundary links additionally appear in ``boundary`` for
        # inbound routing by key.
        self.links: Dict[Tuple[ASN, ASN], Any] = {}
        self.boundary: Dict[Tuple[ASN, ASN], BoundaryLink] = {}
        for a, b in graph.edges():
            local_a = a in self.speakers
            local_b = b in self.speakers
            if not (local_a or local_b):
                continue
            if local_a and local_b:
                link: Any = ShardLink(sim, a, b, delay=link_delay)
                self.speakers[a].add_peer(b, link)
                self.speakers[b].add_peer(a, link)
            else:
                local_end = a if local_a else b
                remote_end = b if local_a else a
                link = BoundaryLink(
                    sim,
                    a,
                    b,
                    local_end=local_end,
                    dest_shard=assignment[remote_end],
                    outbox=self.outbox,
                    delay=link_delay,
                )
                self.speakers[local_end].add_peer(remote_end, link)
                self.boundary[(a, b)] = link
            self.links[(a, b)] = link

    # -- global setup ops ----------------------------------------------------

    def establish_ops(self) -> None:
        """Execute this shard's share of the global session-open sweep.

        Every shard walks the *full* edge list so the global op index —
        and with it the order keys of the OPENs — lines up with the serial
        engine's push order; only the shard owning the initiating (lower)
        endpoint actually acts.
        """
        for index, (a, b) in enumerate(self.graph.edges()):
            self.sim.begin_op(index)
            speaker = self.speakers.get(a)
            if speaker is not None:
                speaker.start_session(b)

    def originate_ops(
        self, origins: Sequence[ASN], prefix: Prefix, communities: Any = ()
    ) -> None:
        """Execute this shard's share of the genuine-origination sweep."""
        for index, origin in enumerate(sorted(origins)):
            self.sim.begin_op(index)
            speaker = self.speakers.get(origin)
            if speaker is not None:
                speaker.originate(prefix, communities=communities)

    def attack_ops(
        self,
        strategy: Any,
        attackers: Sequence[ASN],
        prefix: Prefix,
        victim_origins: Any,
    ) -> None:
        """Execute this shard's share of the attack launches."""
        for index, attacker in enumerate(sorted(attackers)):
            self.sim.begin_op(index)
            if attacker in self.speakers:
                strategy.launch(self, attacker, prefix, victim_origins)

    def check_established(self) -> None:
        """Verify every session this shard initiated came up (both halves
        check their own side, covering every edge globally)."""
        unestablished = [
            (a, b)
            for a, b in self.graph.edges()
            if a in self.speakers and not self.speakers[a].sessions[b].established
        ]
        if unestablished:
            raise RuntimeError(f"sessions failed to establish: {unestablished}")

    # -- routing -------------------------------------------------------------

    def deliver_inbound(self, records: Sequence[MailRecord]) -> None:
        """Enqueue coordinator-routed records on their boundary links."""
        for link_key, sender, time, order_key, message in records:
            self.boundary[link_key].enqueue_inbound(
                sender, time, order_key, message
            )

    # -- convenience (the Network surface the harness layers use) -----------

    def speaker(self, asn: ASN) -> BGPSpeaker:
        try:
            return self.speakers[asn]
        except KeyError:
            raise KeyError(f"AS{asn} is not owned by shard {self.shard_id}")

    def link(self, a: ASN, b: ASN) -> Any:
        key = (min(a, b), max(a, b))
        try:
            return self.links[key]
        except KeyError:
            raise KeyError(f"no link between AS{a} and AS{b} on this shard")

    def originate(
        self, asn: ASN, prefix: Prefix, communities: Any = ()
    ) -> None:
        self.speaker(asn).originate(prefix, communities=communities)

    def best_origins(self, prefix: Prefix) -> Dict[ASN, Optional[ASN]]:
        """Best-route origins for the speakers this shard owns."""
        return {
            asn: speaker.best_origin(prefix)
            for asn, speaker in sorted(self.speakers.items())
        }

    def total_updates_sent(self) -> int:
        return sum(s.updates_sent for s in self.speakers.values())

    # -- snapshot / restore --------------------------------------------------

    def snapshot_state(self) -> Dict[str, Any]:
        """Capture this shard's slice in the serial snapshot's shape."""
        if not self.outbox.is_empty():
            raise SnapshotError(
                "outbox holds undelivered cross-shard messages; snapshots "
                "are only taken at barrier quiescence"
            )
        expected = sum(
            speaker.pending_events() for speaker in self.speakers.values()
        ) + sum(link.pending_events() for link in self.links.values())
        live = len(self.sim.queue)
        if live != expected:
            raise SnapshotError(
                f"event queue holds {live} live event(s) but components "
                f"account for {expected}; cannot snapshot foreign events"
            )
        return {
            "sim": self.sim.snapshot_state(),
            "speakers": {
                asn: speaker.snapshot_state()
                for asn, speaker in sorted(self.speakers.items())
            },
            "links": {
                key: link.snapshot_state()
                for key, link in sorted(self.links.items())
            },
        }

    def restore_state(self, state: Dict[str, Any]) -> None:
        """Overlay a per-shard slice (see :func:`split_network_snapshot`)."""
        if set(state["speakers"]) != set(self.speakers):
            raise SnapshotError(
                "snapshot speaker set does not match this shard's slice"
            )
        if set(state["links"]) != set(self.links):
            raise SnapshotError(
                "snapshot link set does not match this shard's slice"
            )
        self.sim.restore_state(state["sim"])
        rearm = RearmPlan()
        for asn, speaker_state in state["speakers"].items():
            self.speakers[asn].restore_state(speaker_state, rearm)
        for key, link_state in state["links"].items():
            self.links[key].restore_state(link_state, rearm)
        rearm.execute()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ShardNetwork(shard={self.shard_id}, {len(self.speakers)} ASes, "
            f"{len(self.links)} links)"
        )


# -- snapshot algebra ---------------------------------------------------------


def merge_network_snapshots(
    slices: Sequence[Dict[str, Any]]
) -> Dict[str, Any]:
    """Fold per-shard captures into the serial ``Network`` snapshot format.

    Speakers are disjoint across shards, so their union is the serial
    speaker map.  A boundary link appears in exactly two slices (one half
    each); the halves' message counters sum to the serial link's and their
    state/epoch must agree.  The simulator record merges as: ``now`` is the
    maximum (the globally last event fired on some shard), ``sequence`` the
    maximum (sub-tick counters are compared per speaker only, so the merged
    continuation just needs to stay above every captured value),
    ``events_processed`` the sum, and RNG streams must be identical across
    shards (the harness never draws during a run — a seed-consuming run is
    uncacheable anyway, which :func:`snapshot_is_seed_free` enforces).
    """
    if not slices:
        raise ValueError("need at least one shard slice")
    sims = [part["sim"] for part in slices]
    rng = sims[0]["rng_streams"]
    for other in sims[1:]:
        if other["rng_streams"] != rng:
            raise SnapshotError(
                "shard RNG streams diverged; cannot merge into one baseline"
            )
    speakers: Dict[ASN, Any] = {}
    for part in slices:
        for asn, state in part["speakers"].items():
            if asn in speakers:
                raise SnapshotError(f"AS{asn} captured by two shards")
            speakers[asn] = state

    links: Dict[Tuple[ASN, ASN], Any] = {}
    for part in slices:
        for key, state in part["links"].items():
            held = links.get(key)
            if held is None:
                links[key] = dict(state)
                continue
            # Second half of a boundary link: counters sum, identity must
            # agree, and neither half may carry in-flight messages.
            if held["state"] != state["state"] or held["epoch"] != state["epoch"]:
                raise SnapshotError(
                    f"boundary link {key} halves disagree on state/epoch"
                )
            if held["in_flight"] or state["in_flight"]:
                raise SnapshotError(
                    f"boundary link {key} captured with in-flight messages"
                )
            held["messages_sent"] += state["messages_sent"]
            held["messages_dropped"] += state["messages_dropped"]
    return {
        "sim": {
            "now": max(sim["now"] for sim in sims),
            "sequence": max(sim["sequence"] for sim in sims),
            "events_processed": sum(sim["events_processed"] for sim in sims),
            "rng_streams": rng,
        },
        "speakers": {asn: speakers[asn] for asn in sorted(speakers)},
        "links": {key: links[key] for key in sorted(links)},
    }


def split_network_snapshot(
    state: Dict[str, Any],
    graph: ASGraph,
    assignment: Dict[ASN, int],
    shard_id: int,
) -> Dict[str, Any]:
    """Cut a serial-format snapshot into the slice one shard restores.

    Exact inverse of :func:`merge_network_snapshots` for quiescent
    captures: a boundary link's counters restore wholly into the half on
    the shard owning the edge's first endpoint (the other half gets
    zeros), so a later re-merge reproduces the serial totals.  The full
    ``events_processed`` count rides on shard 0 for the same reason.
    """
    sim_state = state["sim"]
    speakers = {
        asn: speaker_state
        for asn, speaker_state in state["speakers"].items()
        if assignment[asn] == shard_id
    }
    links: Dict[Tuple[ASN, ASN], Any] = {}
    for a, b in graph.edges():
        key = (a, b)
        link_state = state["links"][key]
        shard_a = assignment[a]
        shard_b = assignment[b]
        if shard_a != shard_id and shard_b != shard_id:
            continue
        if shard_a == shard_b:
            links[key] = link_state
            continue
        if link_state["in_flight"]:
            raise SnapshotError(
                f"boundary link {key} has in-flight messages; a serial "
                "snapshot with pending cross-shard traffic cannot be "
                "restored onto shards"
            )
        counters_here = shard_a == shard_id
        links[key] = {
            "state": link_state["state"],
            "epoch": link_state["epoch"],
            "messages_sent": link_state["messages_sent"] if counters_here else 0,
            "messages_dropped": (
                link_state["messages_dropped"] if counters_here else 0
            ),
            "in_flight": [],
        }
    return {
        "sim": {
            "now": sim_state["now"],
            "sequence": sim_state["sequence"],
            "events_processed": (
                sim_state["events_processed"] if shard_id == 0 else 0
            ),
            "rng_streams": sim_state["rng_streams"],
        },
        "speakers": speakers,
        "links": links,
    }
