"""BGP route aggregation (RFC 4271 §9.2.2.2).

Aggregation is why AS paths contain AS_SET segments — the paper's
footnote 1: "in the case of route aggregation, an element in the AS path
may include a set of ASes" — and why the MOAS observer must treat a
trailing AS_SET as a set of origin candidates.

The engine combines sibling prefixes bottom-up into maximal aggregates:

* sibling routes with *identical* attributes merge losslessly;
* sibling routes with differing paths merge into an aggregate whose path
  is the longest common leading sequence plus a trailing AS_SET, marked
  ``ATOMIC_AGGREGATE`` and stamped with the aggregating AS (AGGREGATOR).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.bgp.attributes import AsPath, Origin, PathAttributes
from repro.bgp.rib import RibEntry
from repro.net.addresses import Prefix, aggregate_adjacent
from repro.net.asn import ASN, validate_asn


@dataclass
class AggregationResult:
    """Outcome of one aggregation pass."""

    aggregates: List[RibEntry] = field(default_factory=list)
    untouched: List[RibEntry] = field(default_factory=list)
    routes_absorbed: int = 0  # original routes folded into aggregates

    def all_routes(self) -> List[RibEntry]:
        return self.aggregates + self.untouched

    @property
    def table_reduction(self) -> int:
        """How many table entries aggregation saved."""
        return self.routes_absorbed - len(self.aggregates)


def _merge_origin(a: Origin, b: Origin) -> Origin:
    """RFC 4271: the aggregate's ORIGIN is the 'worst' (highest) value."""
    return max(a, b)


def _merge_siblings(
    parent: Prefix, left: RibEntry, right: RibEntry, aggregator_asn: ASN
) -> RibEntry:
    """Combine two sibling routes into their parent aggregate."""
    la, ra = left.attributes, right.attributes
    if la == ra:
        attributes = la
    else:
        attributes = PathAttributes(
            origin=_merge_origin(la.origin, ra.origin),
            as_path=AsPath.aggregate([la.as_path, ra.as_path]),
            next_hop=None,
            med=0,  # MED is not propagated across aggregation
            local_pref=min(la.local_pref, ra.local_pref),
            communities=la.communities | ra.communities,
            atomic_aggregate=True,
            aggregator=aggregator_asn,
        )
    installed_at = max(left.installed_at, right.installed_at)
    return RibEntry(parent, attributes, peer=None, installed_at=installed_at)


def aggregate_routes(
    entries: Iterable[RibEntry],
    aggregator_asn: ASN,
    min_length: int = 8,
) -> AggregationResult:
    """Aggregate a route set bottom-up into maximal covering prefixes.

    ``min_length`` stops aggregation from collapsing past a sane boundary
    (aggregating to /0 would claim the whole Internet).  Routes for
    duplicate prefixes are rejected — callers aggregate a Loc-RIB view,
    which has one route per prefix by construction.
    """
    validate_asn(aggregator_asn)
    if min_length < 0 or min_length > 32:
        raise ValueError(f"min_length out of range: {min_length}")

    by_prefix: Dict[Prefix, RibEntry] = {}
    for entry in entries:
        if entry.prefix in by_prefix:
            raise ValueError(f"duplicate route for {entry.prefix}")
        by_prefix[entry.prefix] = entry

    original = set(by_prefix)

    # Bottom-up: repeatedly merge the deepest sibling pairs.
    changed = True
    while changed:
        changed = False
        for prefix in sorted(by_prefix, key=lambda p: (-p.length, p.network)):
            if prefix not in by_prefix or prefix.length <= min_length:
                continue
            parent = prefix.supernet()
            low, high = parent.subnets()
            sibling = high if prefix == low else low
            if sibling in by_prefix and parent not in by_prefix:
                merged = _merge_siblings(
                    parent, by_prefix[prefix], by_prefix[sibling], aggregator_asn
                )
                del by_prefix[prefix]
                del by_prefix[sibling]
                by_prefix[parent] = merged
                changed = True

    absorbed = len(original - set(by_prefix))

    aggregates = [
        entry for prefix, entry in sorted(by_prefix.items(), key=lambda kv: str(kv[0]))
        if prefix not in original
    ]
    untouched = [
        entry for prefix, entry in sorted(by_prefix.items(), key=lambda kv: str(kv[0]))
        if prefix in original
    ]
    return AggregationResult(
        aggregates=aggregates, untouched=untouched, routes_absorbed=absorbed
    )
