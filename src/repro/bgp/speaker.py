"""The BGP speaker.

One :class:`BGPSpeaker` models the routing process of one AS (the paper's
simulation granularity).  It owns the three RIBs, runs the decision process,
applies import/export policy, paces announcements with per-peer MRAI timers
and exchanges messages over :class:`repro.net.Link` objects.

Extension points used by the MOAS-list scheme (:mod:`repro.core`):

* ``add_import_validator`` — a validator sees every route that survived
  import policy and may reject it (this is where MOAS-list checking hooks
  in for capable routers);
* ``add_loc_rib_listener`` — notified on every best-route change (used by
  the experiment harness to measure false-route adoption);
* ``invalidate_route`` — retroactively removes an accepted route when a
  validator later learns it was bogus (a correct MOAS list arriving after
  the attacker's announcement).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, List, Optional, Set

from repro.bgp.attributes import Community, Origin, PathAttributes
from repro.bgp.decision import DecisionProcess, RouteComparison
from repro.bgp.errors import SessionError
from repro.bgp.interning import RouteInterner
from repro.bgp.messages import Message, UpdateMessage
from repro.bgp.policy import AcceptAllPolicy, Policy
from repro.bgp.rib import AdjRibIn, AdjRibOut, LocRib, RibEntry
from repro.bgp.session import Session, SessionState
from repro.eventsim.simulator import RearmPlan, Simulator
from repro.eventsim.timers import Timer
from repro.net.addresses import Prefix
from repro.net.asn import ASN, validate_asn
from repro.net.link import Link
from repro.sanitize import InvariantError, check_speaker_invariants

# An import validator: (peer, prefix, attributes) -> accept?
ImportValidator = Callable[[ASN, Prefix, PathAttributes], bool]
# A Loc-RIB listener: (prefix, new_entry_or_None, old_entry_or_None) -> None
LocRibListener = Callable[[Prefix, Optional[RibEntry], Optional[RibEntry]], None]
# A withdrawal listener: (peer, prefix) -> None, fired when a peer's
# explicit withdrawal removes a route from the Adj-RIB-In.
WithdrawalListener = Callable[[ASN, Prefix], None]


class SpeakerConfig:
    """Tunables for a speaker.

    ``mrai`` is the Min Route Advertisement Interval per RFC 4271 (the
    paper-era default was 30 s for eBGP); zero disables pacing, which the
    experiment harness uses since the figures measure converged state, not
    convergence time.
    """

    def __init__(
        self,
        mrai: float = 0.0,
        hold_time: float = 0.0,
        med_across_peers: bool = False,
        prefer_oldest: bool = True,
    ) -> None:
        if mrai < 0:
            raise ValueError(f"MRAI must be non-negative, got {mrai}")
        self.mrai = float(mrai)
        self.hold_time = float(hold_time)
        self.med_across_peers = med_across_peers
        self.prefer_oldest = prefer_oldest


class BGPSpeaker:
    """The BGP routing process of one AS."""

    # Identity and wiring (asn/config/sim, link map, interner, policy and
    # decision processes, listener/validator registrations) are rebuilt by
    # constructing the same network; metric instruments are re-resolved
    # there too.  ``_established_cache`` is a derived memo that restore
    # explicitly invalidates instead of capturing.
    _SNAPSHOT_WAIVED = frozenset(
        {
            "asn",
            "config",
            "sim",
            "policy",
            "decision",
            "_interner",
            "_links",
            "_import_validators",
            "_loc_rib_listeners",
            "_withdrawal_listeners",
            "_passthrough_policy",
            "_established_cache",
            "_m_updates_received",
            "_m_updates_sent",
            "_m_decision_runs",
            "_m_mrai_fires",
            "_m_export_cache_hits",
            "_m_export_cache_misses",
        }
    )

    def __init__(
        self,
        sim: Simulator,
        asn: ASN,
        config: Optional[SpeakerConfig] = None,
        policy: Optional[Policy] = None,
        interner: Optional[RouteInterner] = None,
    ) -> None:
        self.sim = sim
        self.asn = validate_asn(asn)
        self.config = config or SpeakerConfig()
        self.policy = policy or AcceptAllPolicy()
        # Accept-all import/export is the default experiment setup; spotting
        # it by exact type lets the import hot path skip a PolicyVerdict
        # allocation per route.  Subclasses must not take this shortcut.
        self._passthrough_policy = type(self.policy) in (Policy, AcceptAllPolicy)
        self.decision = DecisionProcess(
            self.config.med_across_peers, prefer_oldest=self.config.prefer_oldest
        )
        # Shared across the whole network when built through Network (the
        # cross-speaker intern table); private for standalone speakers.
        self._interner = interner if interner is not None else RouteInterner()

        self.adj_rib_in = AdjRibIn()
        self.loc_rib = LocRib()
        self.adj_rib_out = AdjRibOut()

        self.sessions: Dict[ASN, Session] = {}
        self._links: Dict[ASN, Link] = {}
        self._local_routes: Dict[Prefix, RibEntry] = {}

        self._import_validators: List[ImportValidator] = []
        self._loc_rib_listeners: List[LocRibListener] = []
        self._withdrawal_listeners: List[WithdrawalListener] = []

        # MRAI machinery: per-peer pending announcement sets and timers.
        self._pending_announce: Dict[ASN, Set[Prefix]] = {}
        self._mrai_timers: Dict[ASN, Timer] = {}

        # Caches for the propagation hot path.  The established-peer list
        # changes only at session state transitions; export attributes are a
        # pure function of (peer, prefix, attributes, locality) because
        # policies are stateless, so the prepend/replace work for a best
        # route fanned out to many peers is done once and interned.
        self._established_cache: Optional[List[ASN]] = None
        self._export_cache: Dict[tuple, Optional[PathAttributes]] = {}
        self._prepend_cache: Dict[PathAttributes, PathAttributes] = {}
        # A simulator reset rewinds the clock but keeps the speakers; the
        # caches must not outlive the run that built them.
        sim.add_reset_hook(self.clear_caches)

        # Counters for diagnostics and benchmarks.
        self.updates_received = 0
        self.updates_sent = 0
        self.routes_rejected_by_policy = 0
        self.routes_rejected_by_validator = 0
        self.loops_detected = 0

        # Network-wide metric instruments (shared through the registry by
        # name); None when the simulator runs without metrics, so every
        # instrumentation site below is a single attribute test.
        metrics = sim.metrics
        if metrics is not None:
            self._m_updates_sent = metrics.counter("bgp.updates_sent")
            self._m_updates_received = metrics.counter("bgp.updates_received")
            self._m_decision_runs = metrics.counter("bgp.decision_runs")
            self._m_export_cache_hits = metrics.counter("bgp.export_cache_hits")
            self._m_export_cache_misses = metrics.counter(
                "bgp.export_cache_misses"
            )
            self._m_mrai_fires = metrics.counter("bgp.mrai_fires")
        else:
            self._m_updates_sent = None
            self._m_updates_received = None
            self._m_decision_runs = None
            self._m_export_cache_hits = None
            self._m_export_cache_misses = None
            self._m_mrai_fires = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"BGPSpeaker(AS{self.asn}, {len(self.loc_rib)} routes)"

    # -- extension points ---------------------------------------------------

    def add_import_validator(self, validator: ImportValidator) -> None:
        self._import_validators.append(validator)

    def add_loc_rib_listener(self, listener: LocRibListener) -> None:
        self._loc_rib_listeners.append(listener)

    def add_withdrawal_listener(self, listener: WithdrawalListener) -> None:
        """Observe explicit withdrawals from peers (used by flap damping)."""
        self._withdrawal_listeners.append(listener)

    # -- peering ---------------------------------------------------------------

    def add_peer(self, peer_asn: ASN, link: Link) -> Session:
        """Register a peering over ``link``; does not start the session."""
        validate_asn(peer_asn)
        if peer_asn == self.asn:
            raise SessionError(f"AS{self.asn} cannot peer with itself")
        if peer_asn in self.sessions:
            raise SessionError(f"AS{self.asn} already peers with AS{peer_asn}")
        session = Session(
            self.sim, self, peer_asn, link, hold_time=self.config.hold_time
        )
        self.sessions[peer_asn] = session
        self._links[peer_asn] = link
        # Deliveries go straight to the session owning this peering — the
        # link already guarantees the sender is the other endpoint, so the
        # per-message session lookup of the generic _receive path is
        # unnecessary.
        link.attach(self.asn, session.handle_wire)
        return session

    def start_session(self, peer_asn: ASN) -> None:
        self._session_for(peer_asn).start()

    def start_all_sessions(self) -> None:
        """Actively open every configured session that is still idle.

        Both endpoints may call this: the passive side's session answers the
        incoming OPEN from idle state.
        """
        for session in self.sessions.values():
            if session.state is SessionState.IDLE:
                session.start()

    def _session_for(self, peer_asn: ASN) -> Session:
        try:
            return self.sessions[peer_asn]
        except KeyError:
            raise SessionError(f"AS{self.asn} has no session with AS{peer_asn}")

    def _receive(self, sender: ASN, message: Message) -> None:
        # Per-message hot path: one dict probe, no helper frame.
        session = self.sessions.get(sender)
        if session is None:
            raise SessionError(f"AS{self.asn} has no session with AS{sender}")
        session.handle_message(message)

    @property
    def established_peers(self) -> List[ASN]:
        peers = self._established_cache
        if peers is None:
            peers = sorted(
                asn for asn, session in self.sessions.items() if session.established
            )
            self._established_cache = peers
        return peers

    def clear_caches(self) -> None:
        """Drop the propagation-path memo caches.

        Registered as a simulator reset hook: without it a reused network
        keeps stale export/prepend entries forever and memory grows
        monotonically across long sweeps.  Safe at any time — the caches
        are pure memoisation and rebuild on demand.
        """
        self._established_cache = None
        self._export_cache.clear()
        self._prepend_cache.clear()

    # -- origination ------------------------------------------------------------

    def originate(
        self,
        prefix: Prefix,
        communities: Iterable[Community] = (),
        origin: Origin = Origin.IGP,
    ) -> None:
        """Start announcing ``prefix`` as locally reachable.

        The local route has an empty AS path; this speaker's ASN is
        prepended on export, so neighbours see path ``(self.asn)`` —
        making this AS the route's origin.
        """
        attributes = self._interner.attributes(
            PathAttributes(
                origin=origin,
                communities=communities,
            )
        )
        entry = RibEntry(
            prefix,
            attributes,
            peer=None,
            installed_at=self.sim.now,
            installed_seq=self.sim.next_sequence(),
        )
        self._local_routes[prefix] = entry
        self._run_decision(prefix)

    def withdraw_origination(self, prefix: Prefix) -> None:
        """Stop announcing a locally originated prefix."""
        if prefix not in self._local_routes:
            raise ValueError(f"AS{self.asn} does not originate {prefix}")
        del self._local_routes[prefix]
        self._run_decision(prefix)

    @property
    def originated_prefixes(self) -> List[Prefix]:
        return sorted(self._local_routes)

    # -- update processing ----------------------------------------------------------

    def handle_update(self, peer: ASN, message: UpdateMessage) -> None:
        """Process an UPDATE from an established peer.

        The per-prefix candidate deltas (what was inserted into / removed
        from the Adj-RIB-In) are collected into a dirty-prefix map and fed
        to the incremental decision path, which can usually adjudicate a
        single challenger against the cached best route without rescanning
        all candidates.
        """
        self.updates_received += 1
        if self._m_updates_received is not None:
            self._m_updates_received.inc()
        # Dirty prefixes: prefix -> (inserted entry or None, removed entry
        # or None).  An UPDATE touches each prefix at most once (announced
        # and withdrawn sets are disjoint by construction).
        changes: Dict[Prefix, tuple] = {}

        # Withdrawal listeners observe removal order; iterate sorted so the
        # set's hash order never reaches flap-damping (or any other) state.
        if message.withdrawn:
            withdrawn = message.withdrawn
            # Most UPDATEs carry one prefix; skip the sort for those.
            for prefix in (
                sorted(withdrawn) if len(withdrawn) > 1 else withdrawn
            ):
                removed = self.adj_rib_in.remove(peer, prefix)
                if removed is not None:
                    changes[prefix] = (None, removed)
                    for listener in self._withdrawal_listeners:
                        listener(peer, prefix)

        if message.announced:
            attributes = message.attributes
            if attributes is None:
                raise InvariantError(
                    f"AS{self.asn}: UPDATE from peer {peer} announces "
                    f"{len(message.announced)} prefix(es) without attributes"
                )
            if self.asn in attributes.as_path:
                # Loop detection: our own ASN in the path (RFC 4271 §9.1.2).
                # The announcement still *replaces* the peer's previous
                # route for these prefixes — treating it as unreachable.
                # Keeping the stale route would leave ghost paths alive
                # after the real origin withdraws.
                self.loops_detected += 1
                self.sim.trace.record(
                    self.sim.now, "bgp.loop_detected", asn=self.asn, peer=peer
                )
                for prefix in sorted(message.announced):
                    removed = self.adj_rib_in.remove(peer, prefix)
                    if removed is not None:
                        changes[prefix] = (None, removed)
            else:
                announced = message.announced
                for prefix in (
                    sorted(announced) if len(announced) > 1 else announced
                ):
                    changed, inserted, removed = self._import_route(
                        peer, prefix, attributes
                    )
                    if changed:
                        changes[prefix] = (inserted, removed)

        if changes:
            for prefix in sorted(changes) if len(changes) > 1 else changes:
                inserted, removed = changes[prefix]
                self._decide_after_change(prefix, inserted, removed)

    def _import_route(
        self, peer: ASN, prefix: Prefix, attributes: PathAttributes
    ) -> tuple:
        """Run import policy and validators; install into Adj-RIB-In.

        Returns ``(changed, inserted, removed)``: whether the prefix's
        candidate set changed, the entry installed (if any) and the entry
        displaced (if any).  A rejection still *removes* any previous route
        from this peer for the prefix — an announcement implicitly replaces
        the old route, and if the replacement is rejected the old one must
        not linger.
        """
        if self._passthrough_policy:
            # Accept-all policy: skip the call and its PolicyVerdict.
            imported: Optional[PathAttributes] = attributes
        else:
            verdict = self.policy.apply_import(peer, prefix, attributes)
            if not verdict.accepted:
                self.routes_rejected_by_policy += 1
                removed = self.adj_rib_in.remove(peer, prefix)
                return (removed is not None, None, removed)
            imported = verdict.attributes
            if imported is None:
                raise InvariantError(
                    f"AS{self.asn}: import policy accepted {prefix} from peer "
                    f"{peer} but returned no attributes"
                )

        for validator in self._import_validators:
            if not validator(peer, prefix, imported):
                self.routes_rejected_by_validator += 1
                self.sim.trace.record(
                    self.sim.now,
                    "bgp.validator_reject",
                    asn=self.asn,
                    peer=peer,
                    prefix=str(prefix),
                    origin=imported.origin_asn,
                )
                removed = self.adj_rib_in.remove(peer, prefix)
                return (removed is not None, None, removed)

        # Canonicalise through the network-wide intern table: equal
        # attribute bundles held by many speakers collapse to one object,
        # and the duplicate check below usually hits the identity path.
        imported = self._interner.attributes(imported)
        previous = self.adj_rib_in.get(peer, prefix)
        if previous is not None and previous.attributes == imported:
            # Duplicate announcement: the candidate set is unchanged, so the
            # decision process need not re-run.  Keeping the original entry
            # also preserves its install time for prefer-oldest tie-breaks.
            return (False, None, None)

        entry = RibEntry(
            prefix,
            imported,
            peer=peer,
            installed_at=self.sim.now,
            installed_seq=self.sim.next_sequence(),
        )
        self.adj_rib_in.insert(entry)
        return (True, entry, previous)

    def invalidate_route(self, peer: ASN, prefix: Prefix) -> bool:
        """Retroactively remove an accepted route (validator callback).

        Returns True if a route was actually removed.
        """
        removed = self.adj_rib_in.remove(peer, prefix)
        if removed is None:
            return False
        self.sim.trace.record(
            self.sim.now,
            "bgp.route_invalidated",
            asn=self.asn,
            peer=peer,
            prefix=str(prefix),
        )
        self._run_decision(prefix)
        return True

    # -- decision process --------------------------------------------------------------

    def _run_decision(self, prefix: Prefix) -> None:
        """Re-select the best route for ``prefix`` over all candidates."""
        if self._m_decision_runs is not None:
            self._m_decision_runs.inc()
        candidates = list(self.adj_rib_in.routes_for_prefix(prefix))
        local = self._local_routes.get(prefix)
        if local is not None:
            candidates.append(local)

        new_best = self.decision.select_best(candidates)
        old_best = self.loc_rib.get(prefix)

        if new_best is old_best:
            return
        if (
            new_best is not None
            and old_best is not None
            and new_best.attributes == old_best.attributes
            and new_best.peer == old_best.peer
        ):
            return  # same route object semantics; nothing to re-advertise

        self._apply_best(prefix, new_best, old_best)

    def _decide_after_change(
        self,
        prefix: Prefix,
        inserted: Optional[RibEntry],
        removed: Optional[RibEntry],
    ) -> None:
        """Incremental decision: adjudicate one candidate delta against the
        cached best route instead of rescanning every candidate.

        The shortcut is only sound when the route comparator is a total
        order, because then ``max(S ∪ {c}) = max(max(S), c)``.  The one
        rung that can break transitivity is MED-compared-only-within-peer
        (RFC 4271's default): with every installed MED equal (tracked by
        the Adj-RIB-In) — or MED compared across peers — the ladder is a
        strict lexicographic order and the algebra holds.  Locally
        originated routes always carry MED 0 (:meth:`originate` builds
        them without one).  Any state this cannot prove safe falls back to
        the full scan, which is always correct.
        """
        if not self.decision.med_across_peers and self.adj_rib_in.has_nonzero_med:
            self._run_decision(prefix)
            return
        old_best = self.loc_rib.get(prefix)
        if old_best is None:
            # No incumbent: the candidate set was empty before this change,
            # or something unusual happened — scan.
            self._run_decision(prefix)
            return
        # The incumbent must still be installed (checked by identity — a
        # replacement by an equal-valued entry must not pass).  This is
        # exactly the case where this very change removed/replaced the
        # best route, and the remaining candidates must be rescanned.
        if old_best.peer is None:
            if self._local_routes.get(prefix) is not old_best:
                self._run_decision(prefix)
                return
        elif self.adj_rib_in.get(old_best.peer, prefix) is not old_best:
            self._run_decision(prefix)
            return
        if inserted is None:
            # Pure removal of a non-best candidate: removing a non-maximal
            # element leaves the maximum — and the full scan would have
            # early-returned on ``new_best is old_best``.
            if self._m_decision_runs is not None:
                self._m_decision_runs.inc()
            return
        outcome = self.decision.compare(inserted, old_best)
        if outcome is RouteComparison.RIGHT_BETTER:
            # Challenger loses to the incumbent, which already beats every
            # other candidate: the full scan would re-select old_best and
            # early-return without side effects.
            if self._m_decision_runs is not None:
                self._m_decision_runs.inc()
            return
        if outcome is RouteComparison.LEFT_BETTER:
            # Challenger beats the incumbent, hence every candidate: it is
            # the new best.  (The "same attributes, same peer" early-return
            # of the full scan cannot apply — the challenger's peer differs
            # from the incumbent's, or the incumbent would have failed the
            # identity check above.)
            if self._m_decision_runs is not None:
                self._m_decision_runs.inc()
            self._apply_best(prefix, inserted, old_best)
            return
        self._run_decision(prefix)  # EQUAL should be unreachable; be safe

    def _apply_best(
        self,
        prefix: Prefix,
        new_best: Optional[RibEntry],
        old_best: Optional[RibEntry],
    ) -> None:
        """Install/withdraw the Loc-RIB best route and propagate the change."""
        if new_best is None:
            self.loc_rib.withdraw(prefix)
        else:
            self.loc_rib.install(new_best)

        trace = self.sim.trace
        if trace.wants("bgp.best_changed"):
            # Guarded at the call site: str(prefix) and the kwargs dict are
            # measurable per best-route change on large convergence runs.
            trace.record(
                self.sim.now,
                "bgp.best_changed",
                asn=self.asn,
                prefix=str(prefix),
                origin=None if new_best is None else new_best.origin_asn,
            )
        for listener in self._loc_rib_listeners:
            listener(prefix, new_best, old_best)

        self._schedule_propagation(prefix)

        if self.sim.sanitize:
            check_speaker_invariants(self)

    # -- propagation --------------------------------------------------------------------

    def on_session_established(self, peer: ASN) -> None:
        """Advertise the full Loc-RIB to a newly established peer."""
        self._established_cache = None
        for prefix in sorted(self.loc_rib.prefixes()):
            self._enqueue_announcement(peer, prefix)
        self._flush_peer(peer)

    def on_session_closed(self, peer: ASN) -> None:
        """Flush routes learned from a dead peer and re-run decisions."""
        self._established_cache = None
        removed = self.adj_rib_in.remove_peer(peer)
        self.adj_rib_out.remove_peer(peer)
        self._pending_announce.pop(peer, None)
        timer = self._mrai_timers.pop(peer, None)
        if timer is not None:
            timer.stop()
        for entry in removed:
            self._run_decision(entry.prefix)

    def _schedule_propagation(self, prefix: Prefix) -> None:
        for peer in self.established_peers:
            self._enqueue_announcement(peer, prefix)
        for peer in self.established_peers:
            self._maybe_flush(peer)

    def _enqueue_announcement(self, peer: ASN, prefix: Prefix) -> None:
        self._pending_announce.setdefault(peer, set()).add(prefix)

    def _maybe_flush(self, peer: ASN) -> None:
        """Send pending routes to ``peer`` unless MRAI is holding them."""
        timer = self._mrai_timers.get(peer)
        if timer is not None and timer.running:
            return  # MRAI in effect; timer expiry will flush
        self._flush_peer(peer)

    def _flush_peer(self, peer: ASN) -> None:
        pending = self._pending_announce.get(peer)
        if not pending:
            return
        self._pending_announce[peer] = set()

        # Containers are created lazily: the common flush outcome is full
        # duplicate suppression (nothing to send at all).
        announcements: Optional[Dict[PathAttributes, Set[Prefix]]] = None
        withdrawals: Optional[Set[Prefix]] = None

        for prefix in sorted(pending) if len(pending) > 1 else pending:
            best = self.loc_rib.get(prefix)
            if best is None or best.peer == peer:
                # Nothing to advertise (or learned from this very peer):
                # withdraw if we had previously advertised it.
                if self.adj_rib_out.has_advertised(peer, prefix):
                    if withdrawals is None:
                        withdrawals = set()
                    withdrawals.add(prefix)
                    self.adj_rib_out.record_withdrawal(peer, prefix)
                continue
            export = self._export_attributes(peer, best)
            if export is None:
                if self.adj_rib_out.has_advertised(peer, prefix):
                    if withdrawals is None:
                        withdrawals = set()
                    withdrawals.add(prefix)
                    self.adj_rib_out.record_withdrawal(peer, prefix)
                continue
            if self.adj_rib_out.advertised(peer, prefix) == export:
                continue  # duplicate suppression
            if announcements is None:
                announcements = {}
            announcements.setdefault(export, set()).add(prefix)
            self.adj_rib_out.record_advertisement(peer, prefix, export)

        if announcements is None and withdrawals is None:
            return

        sent_any = False
        sent_count = 0
        link = self._links[peer]
        if withdrawals:
            link.send(self.asn, UpdateMessage(withdrawn=withdrawals))
            self.updates_sent += 1
            sent_count += 1
            sent_any = True
        if announcements:
            for attributes, prefixes in announcements.items():
                link.send(
                    self.asn,
                    UpdateMessage(announced=prefixes, attributes=attributes),
                )
                self.updates_sent += 1
                sent_count += 1
                sent_any = True
        if sent_count and self._m_updates_sent is not None:
            self._m_updates_sent.inc(sent_count)

        if sent_any and self.config.mrai > 0:
            timer = self._mrai_timers.get(peer)
            if timer is None:
                timer = Timer(
                    self.sim,
                    self.config.mrai,
                    lambda p=peer: self._mrai_fire(p),
                    label=f"mrai->{peer}",
                )
                self._mrai_timers[peer] = timer
            timer.restart()

    def _mrai_fire(self, peer: ASN) -> None:
        """MRAI expiry: flush whatever pacing held back for ``peer``."""
        if self._m_mrai_fires is not None:
            self._m_mrai_fires.inc()
        self._flush_peer(peer)

    def _export_attributes(
        self, peer: ASN, entry: RibEntry
    ) -> Optional[PathAttributes]:
        """Apply export policy and prepend our ASN; None means do-not-export.

        The RFC 1997 well-known communities are honoured first: a route
        carrying NO_ADVERTISE is never re-advertised, and — with every
        session in this simulator an eBGP session between distinct ASes —
        NO_EXPORT has the same effect.  Locally originated routes are
        exempt (the originator may still announce its own prefix).

        Results are memoized per (peer, prefix, attributes, locality):
        policies are stateless, so the same best route fanned out to many
        peers — or re-flushed after an unrelated change — reuses one
        computed (and interned) attribute object instead of rebuilding the
        prepended path each time.  Interning keeps Adj-RIB-Out duplicate
        checks on the fast identity path.
        """
        cache_key = (peer, entry.prefix, entry.attributes, entry.is_local)
        try:
            result = self._export_cache[cache_key]
        except KeyError:
            pass
        else:
            if self._m_export_cache_hits is not None:
                self._m_export_cache_hits.inc()
            return result
        if self._m_export_cache_misses is not None:
            self._m_export_cache_misses.inc()
        exported = self._compute_export_attributes(peer, entry)
        self._export_cache[cache_key] = exported
        return exported

    def _compute_export_attributes(
        self, peer: ASN, entry: RibEntry
    ) -> Optional[PathAttributes]:
        if not entry.is_local:
            community_values = {c.to_u32() for c in entry.attributes.communities}
            if community_values & {
                Community.NO_ADVERTISE,
                Community.NO_EXPORT,
                Community.NO_EXPORT_SUBCONFED,
            }:
                return None
        verdict = self.policy.apply_export(peer, entry.prefix, entry.attributes)
        if not verdict.accepted:
            return None
        base = verdict.attributes
        if base is None:
            raise InvariantError(
                f"AS{self.asn}: export policy accepted {entry.prefix} for "
                f"peer {peer} but returned no attributes"
            )
        # The prepend + LOCAL_PREF reset depends only on the post-policy
        # attributes (our ASN is fixed), so a best route exported to many
        # peers builds the exported bundle exactly once; the interned object
        # keeps downstream equality checks on the identity fast path.
        # (LOCAL_PREF is not sent across eBGP sessions; reset to default.)
        exported = self._prepend_cache.get(base)
        if exported is None:
            exported = self._interner.attributes(
                base.with_prepended(self.asn, next_hop=self.asn).replace(
                    local_pref=PathAttributes.DEFAULT_LOCAL_PREF
                )
            )
            self._prepend_cache[base] = exported
        return exported

    # -- snapshot / restore ------------------------------------------------------------

    def pending_events(self) -> int:
        """Armed timer expiries owned by this speaker (MRAI + sessions)."""
        count = sum(1 for timer in self._mrai_timers.values() if timer.running)
        count += sum(session.pending_events() for session in self.sessions.values())
        return count

    def snapshot_state(self) -> Dict[str, Any]:
        """Capture the full routing process state.

        Containers are copied; the entries, attributes and prefixes inside
        them are immutable value objects and shared with the live tables.
        The memo caches are captured too — not for correctness of routing,
        but so a restored run's cache-hit counters (and hence its masked
        metric snapshot) are bit-identical to the cold continuation.
        """
        mrai: Dict[ASN, Dict[str, Any]] = {}
        for peer, timer in sorted(self._mrai_timers.items()):
            if timer.running:
                mrai[peer] = {
                    "expires_at": timer.expires_at,
                    "sort_key": timer.sort_key,
                }
        return {
            "adj_rib_in": self.adj_rib_in.snapshot_state(),
            "loc_rib": self.loc_rib.snapshot_state(),
            "adj_rib_out": self.adj_rib_out.snapshot_state(),
            "local_routes": dict(self._local_routes),
            "pending_announce": {
                peer: set(prefixes)
                for peer, prefixes in self._pending_announce.items()
            },
            "sessions": {
                peer: session.snapshot_state()
                for peer, session in sorted(self.sessions.items())
            },
            "mrai": mrai,
            "export_cache": dict(self._export_cache),
            "prepend_cache": dict(self._prepend_cache),
            "counters": {
                "updates_received": self.updates_received,
                "updates_sent": self.updates_sent,
                "routes_rejected_by_policy": self.routes_rejected_by_policy,
                "routes_rejected_by_validator": self.routes_rejected_by_validator,
                "loops_detected": self.loops_detected,
            },
        }

    def restore_state(self, state: Dict[str, Any], rearm: RearmPlan) -> None:
        """Overlay a snapshot onto this speaker (built for the same graph).

        Session FSM state is overwritten directly — ``on_session_established``
        must not re-fire, because the restored Adj-RIB-Out already reflects
        the advertisements it would trigger.
        """
        self.adj_rib_in.restore_state(state["adj_rib_in"])
        self.loc_rib.restore_state(state["loc_rib"])
        self.adj_rib_out.restore_state(state["adj_rib_out"])
        self._local_routes = dict(state["local_routes"])
        self._pending_announce = {
            peer: set(prefixes)
            for peer, prefixes in state["pending_announce"].items()
        }
        for peer, session_state in state["sessions"].items():
            session = self.sessions.get(peer)
            if session is None:
                raise SessionError(
                    f"snapshot has a session AS{self.asn}<->AS{peer} missing "
                    "from the restored network"
                )
            session.restore_state(session_state, rearm)
        self._mrai_timers = {}
        for peer, info in state["mrai"].items():
            timer = Timer(
                self.sim,
                self.config.mrai,
                lambda p=peer: self._mrai_fire(p),
                label=f"mrai->{peer}",
            )
            self._mrai_timers[peer] = timer
            rearm.add(
                info["sort_key"],
                lambda t=timer, at=info["expires_at"]: t.resume_at(at),
            )
        self._established_cache = None
        self._export_cache = dict(state["export_cache"])
        self._prepend_cache = dict(state["prepend_cache"])
        counters = state["counters"]
        self.updates_received = counters["updates_received"]
        self.updates_sent = counters["updates_sent"]
        self.routes_rejected_by_policy = counters["routes_rejected_by_policy"]
        self.routes_rejected_by_validator = counters["routes_rejected_by_validator"]
        self.loops_detected = counters["loops_detected"]

    # -- queries ---------------------------------------------------------------------------

    def best_route(self, prefix: Prefix) -> Optional[RibEntry]:
        return self.loc_rib.get(prefix)

    def best_origin(self, prefix: Prefix) -> Optional[ASN]:
        entry = self.loc_rib.get(prefix)
        if entry is None:
            return None
        if entry.is_local and entry.attributes.as_path.is_empty:
            return self.asn
        return entry.origin_asn

    def routing_table(self) -> Dict[Prefix, RibEntry]:
        return {entry.prefix: entry for entry in self.loc_rib.entries()}
