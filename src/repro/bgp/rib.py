"""Routing Information Bases.

A BGP speaker keeps three RIB layers per RFC 4271:

* **Adj-RIB-In** — routes learned from each peer, post-import-policy.
* **Loc-RIB** — the best route per prefix chosen by the decision process.
* **Adj-RIB-Out** — what has been advertised to each peer, so the speaker
  can send withdrawals and suppress duplicate announcements.

Entries record the peer the route came from and the simulation time it was
installed, which the measurement layer uses for duration statistics.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.bgp.attributes import PathAttributes
from repro.net.addresses import Prefix
from repro.net.asn import ASN


class RibEntry:
    """One route: a prefix, its attributes, provenance and install time.

    ``installed_seq`` is a global arrival sequence number: two routes
    installed at the same simulated instant are still totally ordered by
    arrival, so the prefer-oldest decision rule is exact rather than
    tick-granular.
    """

    __slots__ = ("prefix", "attributes", "peer", "installed_at", "installed_seq")

    def __init__(
        self,
        prefix: Prefix,
        attributes: PathAttributes,
        peer: Optional[ASN],
        installed_at: float = 0.0,
        installed_seq: int = 0,
    ) -> None:
        self.prefix = prefix
        self.attributes = attributes
        self.peer = peer  # None for locally originated routes
        self.installed_at = installed_at
        self.installed_seq = installed_seq

    @property
    def age_key(self) -> Tuple[float, int]:
        """Sort key for prefer-oldest comparisons (smaller = older)."""
        return (self.installed_at, self.installed_seq)

    @property
    def origin_asn(self) -> Optional[ASN]:
        return self.attributes.origin_asn

    @property
    def is_local(self) -> bool:
        return self.peer is None

    def _key(self) -> Tuple[Prefix, PathAttributes, Optional[ASN], float, int]:
        return (
            self.prefix,
            self.attributes,
            self.peer,
            self.installed_at,
            self.installed_seq,
        )

    def __eq__(self, other: object) -> bool:
        # Value equality: two RIBs that evolved identically hold equal
        # entries even across networks (what snapshot round-trip tests
        # compare); identity equality would make that vacuously false.
        if not isinstance(other, RibEntry):
            return NotImplemented
        return self._key() == other._key()

    def __hash__(self) -> int:
        return hash(self._key())

    def __repr__(self) -> str:
        source = "local" if self.is_local else f"peer {self.peer}"
        return f"RibEntry({self.prefix}, via {source}, {self.attributes.as_path})"


class AdjRibIn:
    """Routes accepted from peers, keyed by (peer, prefix).

    A peer contributes at most one route per prefix: a new announcement for
    the same prefix implicitly replaces the old one (RFC 4271 §9).
    """

    # Derived indexes over ``_routes`` (cached peer order, non-zero-MED
    # count): restore recomputes them from the captured table.
    _SNAPSHOT_WAIVED = frozenset({"_sorted_peers", "_nonzero_med"})

    def __init__(self) -> None:
        self._routes: Dict[ASN, Dict[Prefix, RibEntry]] = {}
        # Peer iteration order is consulted on every decision run; the peer
        # *set* changes only on first-route-from-peer and session teardown,
        # so the sorted order is cached and invalidated on those events.
        self._sorted_peers: Optional[List[ASN]] = None
        # Count of installed entries carrying a non-zero MED.  While zero,
        # the decision ladder's MED rung can never discriminate, making the
        # route comparator a genuine total order — the precondition for the
        # speaker's incremental (challenger-vs-incumbent) decision path.
        self._nonzero_med = 0

    def _peer_order(self) -> List[ASN]:
        order = self._sorted_peers
        if order is None:
            order = sorted(self._routes)
            self._sorted_peers = order
        return order

    @property
    def has_nonzero_med(self) -> bool:
        """True when any installed entry carries MED != 0 (see __init__)."""
        return self._nonzero_med > 0

    def insert(self, entry: RibEntry) -> Optional[RibEntry]:
        """Install ``entry``; returns the entry it replaced, if any."""
        if entry.peer is None:
            raise ValueError("Adj-RIB-In entries must come from a peer")
        per_peer = self._routes.get(entry.peer)
        if per_peer is None:
            per_peer = self._routes[entry.peer] = {}
            self._sorted_peers = None
        previous = per_peer.get(entry.prefix)
        per_peer[entry.prefix] = entry
        if entry.attributes.med != 0:
            self._nonzero_med += 1
        if previous is not None and previous.attributes.med != 0:
            self._nonzero_med -= 1
        return previous

    def remove(self, peer: ASN, prefix: Prefix) -> Optional[RibEntry]:
        per_peer = self._routes.get(peer)
        if not per_peer:
            return None
        removed = per_peer.pop(prefix, None)
        if removed is not None and removed.attributes.med != 0:
            self._nonzero_med -= 1
        return removed

    def remove_peer(self, peer: ASN) -> List[RibEntry]:
        """Drop all routes from ``peer`` (session teardown); returns them."""
        per_peer = self._routes.pop(peer, None)
        if per_peer is None:
            return []
        self._sorted_peers = None
        removed = list(per_peer.values())
        for entry in removed:
            if entry.attributes.med != 0:
                self._nonzero_med -= 1
        return removed

    def get(self, peer: ASN, prefix: Prefix) -> Optional[RibEntry]:
        per_peer = self._routes.get(peer)
        return None if per_peer is None else per_peer.get(prefix)

    def routes_for_prefix(self, prefix: Prefix) -> List[RibEntry]:
        """All candidate routes for ``prefix``, in deterministic peer order."""
        routes = self._routes
        candidates = []
        for peer in self._peer_order():
            entry = routes[peer].get(prefix)
            if entry is not None:
                candidates.append(entry)
        return candidates

    def prefixes(self) -> Iterator[Prefix]:
        seen = set()
        for per_peer in self._routes.values():
            for prefix in per_peer:
                if prefix not in seen:
                    seen.add(prefix)
                    yield prefix

    def entries(self) -> Iterator[RibEntry]:
        for peer in self._peer_order():
            yield from self._routes[peer].values()

    def __len__(self) -> int:
        return sum(len(per_peer) for per_peer in self._routes.values())

    def snapshot_state(self) -> Dict[ASN, Dict[Prefix, RibEntry]]:
        # Entries are immutable after install, so sharing them between the
        # snapshot and the live table is safe; only the containers copy.
        return {peer: dict(per_peer) for peer, per_peer in self._routes.items()}

    def restore_state(self, state: Dict[ASN, Dict[Prefix, RibEntry]]) -> None:
        self._routes = {peer: dict(per_peer) for peer, per_peer in state.items()}
        self._sorted_peers = None
        self._nonzero_med = sum(
            1
            for per_peer in self._routes.values()
            for entry in per_peer.values()
            if entry.attributes.med != 0
        )


class LocRib:
    """Best route per prefix, plus locally originated routes.

    A prefix trie backs the forwarding plane's longest-match queries in
    O(address bits).  The trie is *derived* state, rebuilt lazily: installs
    and withdrawals during convergence churn just invalidate it, and the
    first ``longest_match`` after the table settles pays one O(table)
    rebuild — forwarding queries always follow convergence, so the rebuild
    runs once where eager maintenance paid per route change.
    """

    # The prefix trie is lazily derived from ``_best``; restore just
    # invalidates it and the next longest-match rebuilds.
    _SNAPSHOT_WAIVED = frozenset({"_trie"})

    def __init__(self) -> None:
        self._best: Dict[Prefix, RibEntry] = {}
        self._trie: Optional[Any] = None

    def install(self, entry: RibEntry) -> Optional[RibEntry]:
        previous = self._best.get(entry.prefix)
        self._best[entry.prefix] = entry
        self._trie = None
        return previous

    def withdraw(self, prefix: Prefix) -> Optional[RibEntry]:
        removed = self._best.pop(prefix, None)
        if removed is not None:
            self._trie = None
        return removed

    def get(self, prefix: Prefix) -> Optional[RibEntry]:
        return self._best.get(prefix)

    def longest_match(self, prefix: Prefix) -> Optional[RibEntry]:
        """The most specific installed route covering ``prefix`` — what
        the forwarding plane consults per packet."""
        trie = self._trie
        if trie is None:
            from repro.net.trie import PrefixTrie

            trie = PrefixTrie()
            # Trie shape depends only on the key set, so rebuild order is
            # immaterial; iteration order is deterministic regardless.
            for entry in self._best.values():
                trie.insert(entry.prefix, entry)
            self._trie = trie
        found = trie.covering(prefix)
        return None if found is None else found[1]

    def prefixes(self) -> Iterator[Prefix]:
        return iter(self._best)

    def entries(self) -> Iterator[RibEntry]:
        return iter(self._best.values())

    def __contains__(self, prefix: Prefix) -> bool:
        return prefix in self._best

    def __len__(self) -> int:
        return len(self._best)

    def snapshot_state(self) -> Dict[Prefix, RibEntry]:
        return dict(self._best)

    def restore_state(self, state: Dict[Prefix, RibEntry]) -> None:
        self._best = dict(state)
        # Derived state: the next longest_match rebuilds the trie.
        self._trie = None


class AdjRibOut:
    """Per-peer record of what has been advertised.

    Storing the advertised attributes (not just the prefix) lets the speaker
    skip no-op re-announcements, which is what keeps the simulation quiescent
    once routing converges.
    """

    def __init__(self) -> None:
        self._advertised: Dict[ASN, Dict[Prefix, PathAttributes]] = {}

    def record_advertisement(
        self, peer: ASN, prefix: Prefix, attributes: PathAttributes
    ) -> None:
        self._advertised.setdefault(peer, {})[prefix] = attributes

    def record_withdrawal(self, peer: ASN, prefix: Prefix) -> None:
        self._advertised.get(peer, {}).pop(prefix, None)

    def advertised(self, peer: ASN, prefix: Prefix) -> Optional[PathAttributes]:
        return self._advertised.get(peer, {}).get(prefix)

    def has_advertised(self, peer: ASN, prefix: Prefix) -> bool:
        return prefix in self._advertised.get(peer, {})

    def prefixes_for_peer(self, peer: ASN) -> List[Prefix]:
        return list(self._advertised.get(peer, {}))

    def remove_peer(self, peer: ASN) -> None:
        self._advertised.pop(peer, None)

    def __len__(self) -> int:
        return sum(len(v) for v in self._advertised.values())

    def snapshot_state(self) -> Dict[ASN, Dict[Prefix, PathAttributes]]:
        return {peer: dict(routes) for peer, routes in self._advertised.items()}

    def restore_state(self, state: Dict[ASN, Dict[Prefix, PathAttributes]]) -> None:
        self._advertised = {peer: dict(routes) for peer, routes in state.items()}
