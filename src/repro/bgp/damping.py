"""Route-flap damping (RFC 2439).

Period-authentic BGP stability machinery: each (peer, prefix) accumulates a
penalty on every flap (withdrawal or attribute change); once the penalty
crosses the *suppress* threshold the route is ignored until exponential
decay brings the penalty below the *reuse* threshold.

Damping matters to this paper's setting in two ways:

* an attacker that re-announces aggressively to win races gets damped,
  limiting the blast radius of repeated false originations;
* conversely, damping can penalise a *victim* whose announcements churn
  because the MOAS machinery is invalidating interleaved bogus routes —
  the classic damping-harms-the-victim effect, reproducible in tests.

Implemented as an import-validator plus a speaker hook, consistent with how
the MOAS checker integrates.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Any, Dict, Optional, Tuple

from repro.bgp.attributes import PathAttributes
from repro.bgp.speaker import BGPSpeaker
from repro.net.addresses import Prefix
from repro.net.asn import ASN


@dataclass
class DampingConfig:
    """RFC 2439 parameters (defaults follow the common vendor profile)."""

    penalty_per_flap: float = 1000.0
    suppress_threshold: float = 2000.0
    reuse_threshold: float = 750.0
    half_life: float = 900.0  # seconds
    max_suppress_time: float = 3600.0

    def validate(self) -> None:
        if self.penalty_per_flap <= 0:
            raise ValueError("penalty_per_flap must be positive")
        if self.reuse_threshold <= 0:
            raise ValueError("reuse_threshold must be positive")
        if self.suppress_threshold <= self.reuse_threshold:
            raise ValueError("suppress threshold must exceed reuse threshold")
        if self.half_life <= 0:
            raise ValueError("half_life must be positive")
        if self.max_suppress_time < 0:
            raise ValueError("max_suppress_time must be non-negative")

    @property
    def max_penalty(self) -> float:
        """Penalty ceiling implied by the maximum suppression time."""
        return self.reuse_threshold * 2 ** (
            self.max_suppress_time / self.half_life
        )


@dataclass
class _FlapRecord:
    penalty: float = 0.0
    last_update: float = 0.0
    suppressed: bool = False
    last_attributes: Optional[PathAttributes] = None
    flaps: int = 0


class RouteFlapDamper:
    """Per-router damping state, attachable to a speaker.

    ``attach`` registers the damper as an import validator (suppressed
    routes are rejected on arrival) and as a withdrawal listener, so both
    flap flavours — withdrawal and attribute change — are tracked
    automatically.
    """

    # The damping parameter set is construction config and the speaker
    # back-reference is re-wired by attach(); only flap records are state.
    _SNAPSHOT_WAIVED = frozenset({"config", "_speaker"})

    def __init__(self, config: Optional[DampingConfig] = None) -> None:
        self.config = config or DampingConfig()
        self.config.validate()
        self._records: Dict[Tuple[ASN, Prefix], _FlapRecord] = {}
        self._speaker: Optional[BGPSpeaker] = None
        self.suppressions = 0
        self.reuses = 0

    def attach(self, speaker: BGPSpeaker) -> None:
        if self._speaker is not None:
            raise RuntimeError("damper is already attached")
        self._speaker = speaker
        speaker.add_import_validator(self.validate)
        speaker.add_withdrawal_listener(self.note_withdrawal)

    def _now(self) -> float:
        assert self._speaker is not None
        return self._speaker.sim.now

    # -- penalty mechanics ----------------------------------------------------

    def _decay(self, record: _FlapRecord, now: float) -> None:
        elapsed = now - record.last_update
        if elapsed > 0:
            record.penalty *= math.pow(2.0, -elapsed / self.config.half_life)
            record.last_update = now
        if record.suppressed and record.penalty < self.config.reuse_threshold:
            record.suppressed = False
            self.reuses += 1

    def _add_penalty(self, record: _FlapRecord, now: float) -> None:
        self._decay(record, now)
        record.penalty = min(
            record.penalty + self.config.penalty_per_flap,
            self.config.max_penalty,
        )
        record.flaps += 1
        record.last_update = now
        if (
            not record.suppressed
            and record.penalty >= self.config.suppress_threshold
        ):
            record.suppressed = True
            self.suppressions += 1

    # -- hooks ---------------------------------------------------------------------

    def validate(self, peer: ASN, prefix: Prefix, attributes: PathAttributes) -> bool:
        """Import-validator entry point."""
        now = self._now()
        record = self._records.setdefault((peer, prefix), _FlapRecord(last_update=now))
        self._decay(record, now)
        if record.last_attributes is not None and record.last_attributes != attributes:
            # An attribute change counts as a flap (RFC 2439 §4.4.3).
            self._add_penalty(record, now)
        elif record.last_attributes is None and record.flaps > 0:
            # Re-announcement after a withdrawal is the canonical flap.
            self._add_penalty(record, now)
        record.last_attributes = attributes
        return not record.suppressed

    def note_withdrawal(self, peer: ASN, prefix: Prefix) -> None:
        """Record a withdrawal flap (wired automatically by attach)."""
        now = self._now()
        record = self._records.setdefault((peer, prefix), _FlapRecord(last_update=now))
        self._add_penalty(record, now)
        record.last_attributes = None

    # -- snapshot / restore -----------------------------------------------------

    def snapshot_state(self) -> Dict[str, Any]:
        """Capture per-(peer, prefix) flap records and counters.

        :class:`_FlapRecord` is mutable (penalties decay in place), so each
        record is copied on capture *and* on restore — a cached snapshot is
        never aliased by a live damper.
        """
        return {
            "records": {key: replace(record) for key, record in self._records.items()},
            "suppressions": self.suppressions,
            "reuses": self.reuses,
        }

    def restore_state(self, state: Dict[str, Any]) -> None:
        self._records = {
            key: replace(record) for key, record in state["records"].items()
        }
        self.suppressions = state["suppressions"]
        self.reuses = state["reuses"]

    # -- queries ---------------------------------------------------------------------

    def penalty(self, peer: ASN, prefix: Prefix) -> float:
        record = self._records.get((peer, prefix))
        if record is None:
            return 0.0
        self._decay(record, self._now())
        return record.penalty

    def is_suppressed(self, peer: ASN, prefix: Prefix) -> bool:
        record = self._records.get((peer, prefix))
        if record is None:
            return False
        self._decay(record, self._now())
        return record.suppressed

    def flap_count(self, peer: ASN, prefix: Prefix) -> int:
        record = self._records.get((peer, prefix))
        return 0 if record is None else record.flaps
