"""Cross-speaker route/attribute interning.

At Internet scale, N speakers hold largely overlapping sets of immutable
route value objects: the same :class:`PathAttributes` bundle is re-derived
on every re-announcement, re-import and export recomputation, and every
copy drags its own :class:`AsPath` tuple chain along.  A
:class:`RouteInterner` is a per-simulation intern table mapping each value
to its first-seen instance, so equal routes share one object no matter how
many speakers hold them.

Interning is semantics-free by construction — the returned object compares
equal to the argument, and all interned types are deeply immutable — but it
buys two things:

* memory: one ``PathAttributes``/``AsPath`` instance per distinct value
  instead of one per (speaker, derivation);
* speed: downstream equality checks (Adj-RIB-Out duplicate suppression,
  import duplicate detection, export memo keys) hit the ``x is y``
  identity fast path, and dict lookups short-circuit on identity before
  ever comparing payloads.

One interner is shared by every speaker of a
:class:`~repro.bgp.network.Network`; standalone speakers get a private
one.  Lint rule R008 enforces that hot-path BGP modules route fresh
``PathAttributes``/``AsPath`` construction through this table.
"""

from __future__ import annotations

from typing import Dict

from repro.bgp.attributes import AsPath, PathAttributes


class RouteInterner:
    """Per-simulation intern table for immutable route value objects."""

    __slots__ = ("_attributes", "_paths", "hits", "misses")

    def __init__(self) -> None:
        self._attributes: Dict[PathAttributes, PathAttributes] = {}
        self._paths: Dict[AsPath, AsPath] = {}
        self.hits = 0
        self.misses = 0

    def attributes(self, attributes: PathAttributes) -> PathAttributes:
        """The canonical instance equal to ``attributes``.

        The first instance seen for a value becomes canonical; later equal
        instances are dropped in favour of it.
        """
        canonical = self._attributes.get(attributes)
        if canonical is None:
            self._attributes[attributes] = attributes
            self.misses += 1
            return attributes
        self.hits += 1
        return canonical

    def as_path(self, path: AsPath) -> AsPath:
        """The canonical instance equal to ``path``."""
        canonical = self._paths.get(path)
        if canonical is None:
            self._paths[path] = path
            self.misses += 1
            return path
        self.hits += 1
        return canonical

    def __len__(self) -> int:
        return len(self._attributes) + len(self._paths)

    def stats(self) -> Dict[str, int]:
        """Table sizes and hit counters (diagnostics / benchmarks)."""
        return {
            "attributes": len(self._attributes),
            "paths": len(self._paths),
            "hits": self.hits,
            "misses": self.misses,
        }

    def clear(self) -> None:
        """Drop the tables (idempotent; canonical objects stay valid)."""
        self._attributes.clear()
        self._paths.clear()
        self.hits = 0
        self.misses = 0
