"""BGP messages.

The four RFC 4271 message types.  UPDATE carries withdrawn prefixes plus a
set of announced prefixes sharing one attribute bundle, exactly as on the
wire.  Messages are immutable value objects.
"""

from __future__ import annotations

import enum
import itertools
from typing import FrozenSet, Iterable, Optional, Tuple

from repro.bgp.attributes import PathAttributes
from repro.net.addresses import Prefix
from repro.net.asn import ASN, validate_asn


class MessageType(enum.Enum):
    OPEN = 1
    UPDATE = 2
    NOTIFICATION = 3
    KEEPALIVE = 4


class Message:
    """Base class; carries a monotonically increasing id for tracing."""

    _ids = itertools.count(1)

    __slots__ = ("msg_id",)

    type: MessageType

    def __init__(self) -> None:
        object.__setattr__(self, "msg_id", next(Message._ids))

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError(f"{type(self).__name__} is immutable")

    # The immutability guard (__setattr__ raises) breaks default pickling
    # of slotted instances; state is restored through object.__setattr__,
    # mirroring the attribute classes' __reduce__ approach.  Cross-shard
    # delivery serialises messages through this path.
    def __getstate__(self) -> dict:
        return {
            name: getattr(self, name)
            for klass in type(self).__mro__
            for name in getattr(klass, "__slots__", ())
        }

    def __setstate__(self, state: dict) -> None:
        for name, value in state.items():
            object.__setattr__(self, name, value)


class OpenMessage(Message):
    """Session establishment: advertises the sender's ASN and hold time."""

    __slots__ = ("asn", "hold_time", "router_id")

    type = MessageType.OPEN

    def __init__(self, asn: ASN, hold_time: float = 90.0, router_id: int = 0) -> None:
        super().__init__()
        if hold_time < 0:
            raise ValueError(f"hold time must be non-negative, got {hold_time}")
        object.__setattr__(self, "asn", validate_asn(asn))
        object.__setattr__(self, "hold_time", float(hold_time))
        object.__setattr__(self, "router_id", int(router_id))

    def __repr__(self) -> str:
        return f"Open(asn={self.asn}, hold={self.hold_time})"


class UpdateMessage(Message):
    """Route advertisement and/or withdrawal.

    ``announced`` prefixes share the single ``attributes`` bundle;
    ``withdrawn`` prefixes carry no attributes.  An UPDATE must do at least
    one of the two.
    """

    __slots__ = ("announced", "attributes", "withdrawn")

    type = MessageType.UPDATE

    def __init__(
        self,
        announced: Iterable[Prefix] = (),
        attributes: Optional[PathAttributes] = None,
        withdrawn: Iterable[Prefix] = (),
    ) -> None:
        super().__init__()
        announced_set = frozenset(announced)
        withdrawn_set = frozenset(withdrawn)
        if not announced_set and not withdrawn_set:
            raise ValueError("UPDATE must announce or withdraw at least one prefix")
        if announced_set and attributes is None:
            raise ValueError("announced prefixes require path attributes")
        if announced_set & withdrawn_set:
            overlap = sorted(str(p) for p in announced_set & withdrawn_set)
            raise ValueError(f"prefixes both announced and withdrawn: {overlap}")
        object.__setattr__(self, "announced", announced_set)
        object.__setattr__(self, "attributes", attributes)
        object.__setattr__(self, "withdrawn", withdrawn_set)

    @property
    def is_withdrawal_only(self) -> bool:
        return not self.announced

    def __repr__(self) -> str:
        ann = ",".join(sorted(str(p) for p in self.announced))
        wd = ",".join(sorted(str(p) for p in self.withdrawn))
        return f"Update(announce=[{ann}], withdraw=[{wd}], attrs={self.attributes})"


class KeepaliveMessage(Message):
    __slots__ = ()

    type = MessageType.KEEPALIVE

    def __repr__(self) -> str:
        return "Keepalive()"


class NotificationMessage(Message):
    """Error notification; closes the session."""

    __slots__ = ("code", "subcode", "reason")

    type = MessageType.NOTIFICATION

    # RFC 4271 error codes (the subset the simulator generates).
    CEASE = 6
    UPDATE_ERROR = 3
    HOLD_TIMER_EXPIRED = 4

    def __init__(self, code: int, subcode: int = 0, reason: str = "") -> None:
        super().__init__()
        object.__setattr__(self, "code", int(code))
        object.__setattr__(self, "subcode", int(subcode))
        object.__setattr__(self, "reason", reason)

    def __repr__(self) -> str:
        return f"Notification(code={self.code}, reason={self.reason!r})"
