"""The forwarding plane: where do packets actually go?

BGP is a control-plane protocol; the damage the paper cares about is in the
data plane — "packets following such bogus routes will be either dropped
or, in the case of an intentional attack, delivered to a machine of the
attacker's choosing."  This module walks a packet hop by hop through the
converged Loc-RIBs (longest-match at every hop) and classifies the outcome:

* ``DELIVERED`` — reached an AS that legitimately originates the prefix;
* ``HIJACKED`` — reached an AS that originates the prefix but is not a
  legitimate origin (the attacker's machine);
* ``BLACKHOLED`` — some AS on the way had no route;
* ``LOOPED`` — forwarding revisited an AS (control/data-plane mismatch).

This is the metric that exposes AS-path spoofing: the control plane claims
a genuine origin, but the walk ends at the attacker.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable, List, Optional, Set, Tuple

from repro.bgp.network import Network
from repro.net.addresses import Prefix
from repro.net.asn import ASN


class DeliveryOutcome(enum.Enum):
    DELIVERED = "delivered"
    HIJACKED = "hijacked"
    BLACKHOLED = "blackholed"
    LOOPED = "looped"


@dataclass(frozen=True)
class ForwardingTrace:
    """The result of one data-plane walk."""

    source: ASN
    prefix: Prefix
    hops: Tuple[ASN, ...]
    outcome: DeliveryOutcome
    final_as: Optional[ASN]

    @property
    def hop_count(self) -> int:
        return len(self.hops) - 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        path = " -> ".join(str(h) for h in self.hops)
        return f"ForwardingTrace({path}: {self.outcome.value})"


def _next_hop(network: Network, current: ASN, prefix: Prefix) -> Optional[ASN]:
    """The AS the current AS forwards toward, per its Loc-RIB.

    Longest-match (via the Loc-RIB's trie): a more-specific route (e.g.
    from a de-aggregation fault) beats the covering prefix.
    """
    best_entry = network.speaker(current).loc_rib.longest_match(prefix)
    if best_entry is None:
        return None
    return best_entry.peer  # None = locally originated (we are the end)


def trace_packet(
    network: Network,
    source: ASN,
    prefix: Prefix,
    legitimate_origins: Iterable[ASN],
    max_hops: int = 64,
) -> ForwardingTrace:
    """Walk a packet for ``prefix`` from ``source`` through the data plane."""
    legitimate = frozenset(legitimate_origins)
    hops: List[ASN] = [source]
    visited: Set[ASN] = {source}
    current = source

    for _ in range(max_hops):
        next_as = _next_hop(network, current, prefix)
        if next_as is None:
            speaker = network.speaker(current)
            if speaker.loc_rib.longest_match(prefix) is not None:
                # Locally originated: the packet terminates here.
                outcome = (
                    DeliveryOutcome.DELIVERED
                    if current in legitimate
                    else DeliveryOutcome.HIJACKED
                )
                return ForwardingTrace(
                    source=source,
                    prefix=prefix,
                    hops=tuple(hops),
                    outcome=outcome,
                    final_as=current,
                )
            return ForwardingTrace(
                source=source,
                prefix=prefix,
                hops=tuple(hops),
                outcome=DeliveryOutcome.BLACKHOLED,
                final_as=current,
            )
        if next_as in visited:
            hops.append(next_as)
            return ForwardingTrace(
                source=source,
                prefix=prefix,
                hops=tuple(hops),
                outcome=DeliveryOutcome.LOOPED,
                final_as=next_as,
            )
        hops.append(next_as)
        visited.add(next_as)
        current = next_as

    return ForwardingTrace(
        source=source,
        prefix=prefix,
        hops=tuple(hops),
        outcome=DeliveryOutcome.LOOPED,
        final_as=current,
    )


def delivery_census(
    network: Network,
    prefix: Prefix,
    legitimate_origins: Iterable[ASN],
    exclude: Iterable[ASN] = (),
) -> dict:
    """Trace from every AS (minus ``exclude``); returns outcome → [ASes].

    The data-plane analogue of the paper's poisoned-AS percentage: the
    ``HIJACKED`` bucket is the set of ASes whose *traffic* the attacker
    captures, regardless of what the control plane claims.
    """
    legitimate = frozenset(legitimate_origins)
    excluded = frozenset(exclude)
    census: dict = {outcome: [] for outcome in DeliveryOutcome}
    for asn in network.graph.asns():
        if asn in excluded:
            continue
        trace = trace_packet(network, asn, prefix, legitimate)
        census[trace.outcome].append(asn)
    return census
