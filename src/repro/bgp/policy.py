"""Import/export routing policy.

A :class:`Policy` sees a route at a policy point (import from a peer or
export to a peer) and can accept it unchanged, accept it with modified
attributes, or reject it.  Policies compose into a :class:`PolicyChain`.

Besides the trivial accept-all policy, the package ships:

* :class:`PrefixFilterPolicy` — allow/deny lists of prefixes, the building
  block of IRR-style filtering (the related work the paper contrasts with).
* :class:`GaoRexfordPolicy` — the canonical customer/provider/peer export
  rules ("valley-free" routing) plus the matching local-pref assignment, so
  experiments can optionally run under commercial routing policy instead of
  shortest-path.
* :class:`CommunityStripPolicy` — drops the community attribute on export,
  modelling the §4.3 routers that discard optional transitive attributes.
"""

from __future__ import annotations

import enum
from typing import Dict, Iterable, Optional, Sequence

from repro.bgp.attributes import PathAttributes
from repro.bgp.errors import PolicyError
from repro.net.addresses import Prefix
from repro.net.asn import ASN


class PolicyVerdict:
    """Result of applying a policy: rejected, or accepted with attributes."""

    __slots__ = ("accepted", "attributes")

    def __init__(self, accepted: bool, attributes: Optional[PathAttributes]) -> None:
        if accepted and attributes is None:
            raise PolicyError("accepted verdict requires attributes")
        self.accepted = accepted
        self.attributes = attributes

    @classmethod
    def accept(cls, attributes: PathAttributes) -> "PolicyVerdict":
        return cls(True, attributes)

    @classmethod
    def reject(cls) -> "PolicyVerdict":
        return cls(False, None)


class Policy:
    """Base policy: accept everything unchanged.  Subclass and override."""

    def apply_import(
        self, peer: ASN, prefix: Prefix, attributes: PathAttributes
    ) -> PolicyVerdict:
        return PolicyVerdict.accept(attributes)

    def apply_export(
        self, peer: ASN, prefix: Prefix, attributes: PathAttributes
    ) -> PolicyVerdict:
        return PolicyVerdict.accept(attributes)


class AcceptAllPolicy(Policy):
    """Explicit name for the default policy (shortest-path routing)."""


class PolicyChain(Policy):
    """Apply policies in order; first rejection wins, attribute changes
    accumulate."""

    def __init__(self, policies: Sequence[Policy]) -> None:
        self.policies = list(policies)

    def apply_import(
        self, peer: ASN, prefix: Prefix, attributes: PathAttributes
    ) -> PolicyVerdict:
        current = attributes
        for policy in self.policies:
            verdict = policy.apply_import(peer, prefix, current)
            if not verdict.accepted:
                return verdict
            assert verdict.attributes is not None
            current = verdict.attributes
        return PolicyVerdict.accept(current)

    def apply_export(
        self, peer: ASN, prefix: Prefix, attributes: PathAttributes
    ) -> PolicyVerdict:
        current = attributes
        for policy in self.policies:
            verdict = policy.apply_export(peer, prefix, current)
            if not verdict.accepted:
                return verdict
            assert verdict.attributes is not None
            current = verdict.attributes
        return PolicyVerdict.accept(current)


class PrefixFilterPolicy(Policy):
    """Allow/deny prefix lists, applied on import, export, or both.

    ``mode`` is ``"deny"`` (listed prefixes rejected) or ``"allow"`` (only
    listed prefixes accepted).  ``match_specifics`` extends a rule to all
    more-specific prefixes, which is how operators express "deny anything
    inside 10.0.0.0/8".
    """

    def __init__(
        self,
        prefixes: Iterable[Prefix],
        mode: str = "deny",
        direction: str = "both",
        match_specifics: bool = False,
    ) -> None:
        if mode not in ("deny", "allow"):
            raise PolicyError(f"mode must be 'deny' or 'allow', got {mode!r}")
        if direction not in ("import", "export", "both"):
            raise PolicyError(
                f"direction must be 'import', 'export' or 'both', got {direction!r}"
            )
        self.prefixes = frozenset(prefixes)
        self.mode = mode
        self.direction = direction
        self.match_specifics = match_specifics

    def _matches(self, prefix: Prefix) -> bool:
        if prefix in self.prefixes:
            return True
        if self.match_specifics:
            return any(listed.contains(prefix) for listed in self.prefixes)
        return False

    def _verdict(self, prefix: Prefix, attributes: PathAttributes) -> PolicyVerdict:
        matched = self._matches(prefix)
        if self.mode == "deny" and matched:
            return PolicyVerdict.reject()
        if self.mode == "allow" and not matched:
            return PolicyVerdict.reject()
        return PolicyVerdict.accept(attributes)

    def apply_import(
        self, peer: ASN, prefix: Prefix, attributes: PathAttributes
    ) -> PolicyVerdict:
        if self.direction == "export":
            return PolicyVerdict.accept(attributes)
        return self._verdict(prefix, attributes)

    def apply_export(
        self, peer: ASN, prefix: Prefix, attributes: PathAttributes
    ) -> PolicyVerdict:
        if self.direction == "import":
            return PolicyVerdict.accept(attributes)
        return self._verdict(prefix, attributes)


class PeerRelation(enum.Enum):
    """Commercial relationship with a neighbour, from our point of view."""

    CUSTOMER = "customer"
    PEER = "peer"
    PROVIDER = "provider"


class GaoRexfordPolicy(Policy):
    """Valley-free export rules and customer-preferred local-pref.

    Export rule: routes learned from a customer are exported to everyone;
    routes learned from a peer or provider are exported only to customers.
    Import rule: local-pref customer(200) > peer(150) > provider(100), so the
    decision process prefers revenue-generating routes.
    """

    LOCAL_PREF = {
        PeerRelation.CUSTOMER: 200,
        PeerRelation.PEER: 150,
        PeerRelation.PROVIDER: 100,
    }

    def __init__(self, relations: Dict[ASN, PeerRelation]) -> None:
        self.relations = dict(relations)
        # Remember which neighbour each route came in from so the export
        # decision can look it up.  Keyed by (prefix, as_path) — immutable
        # and unique per learned route.
        self._learned_from: Dict[tuple, ASN] = {}

    def relation(self, peer: ASN) -> PeerRelation:
        try:
            return self.relations[peer]
        except KeyError:
            raise PolicyError(f"no relationship configured for peer {peer}")

    def apply_import(
        self, peer: ASN, prefix: Prefix, attributes: PathAttributes
    ) -> PolicyVerdict:
        relation = self.relation(peer)
        self._learned_from[(prefix, attributes.as_path)] = peer
        return PolicyVerdict.accept(
            attributes.replace(local_pref=self.LOCAL_PREF[relation])
        )

    def apply_export(
        self, peer: ASN, prefix: Prefix, attributes: PathAttributes
    ) -> PolicyVerdict:
        # Locally originated routes (empty pre-prepend path recorded) export
        # to everyone.  The speaker calls export policy with the *pre-export*
        # attributes, i.e. before prepending its own ASN.
        source_peer = self._learned_from.get((prefix, attributes.as_path))
        if source_peer is None:
            return PolicyVerdict.accept(attributes)  # locally originated
        source_relation = self.relation(source_peer)
        export_relation = self.relation(peer)
        if source_relation is PeerRelation.CUSTOMER:
            return PolicyVerdict.accept(attributes)
        # Peer/provider routes go only to customers.
        if export_relation is PeerRelation.CUSTOMER:
            return PolicyVerdict.accept(attributes)
        return PolicyVerdict.reject()


class CommunityStripPolicy(Policy):
    """Drop all communities on export.

    Models routers that discard optional transitive attributes — the
    §4.3 deployment hazard that turns valid MOAS into false alarms and that
    the attack models also exploit deliberately.
    """

    def apply_export(
        self, peer: ASN, prefix: Prefix, attributes: PathAttributes
    ) -> PolicyVerdict:
        return PolicyVerdict.accept(attributes.without_communities())
