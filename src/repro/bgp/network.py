"""Assemble a network of BGP speakers from an AS graph.

:class:`Network` is the top of the simulation stack: it instantiates one
:class:`BGPSpeaker` per AS, one :class:`Link` per peering edge, wires the
sessions, and offers convergence helpers.  The experiment harness and the
examples build everything through this class.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, List, Optional

from repro.bgp.interning import RouteInterner
from repro.bgp.policy import Policy
from repro.bgp.speaker import BGPSpeaker, SpeakerConfig
from repro.eventsim.simulator import RearmPlan, Simulator, SnapshotError
from repro.net.addresses import Prefix
from repro.net.asn import ASN
from repro.net.link import Link
from repro.topology.asgraph import ASGraph

PolicyFactory = Callable[[ASN], Optional[Policy]]


class Network:
    """A simulated internetwork: one BGP speaker per AS in a topology."""

    # The graph, speaker config and attribute interner define *which*
    # network this is — a snapshot may only be overlaid onto a network
    # constructed from the same inputs (enforced by the baseline key).
    _SNAPSHOT_WAIVED = frozenset({"graph", "config", "interner"})

    def __init__(
        self,
        graph: ASGraph,
        sim: Optional[Simulator] = None,
        config: Optional[SpeakerConfig] = None,
        policy_factory: Optional[PolicyFactory] = None,
        link_delay: float = 0.01,
        seed: int = 0,
    ) -> None:
        self.graph = graph
        self.sim = sim if sim is not None else Simulator(seed=seed)
        self.config = config or SpeakerConfig()
        self.speakers: Dict[ASN, BGPSpeaker] = {}
        self.links: Dict[tuple, Link] = {}
        # One intern table shared by every speaker: N ASes holding the same
        # route share one PathAttributes/AsPath instance (the cross-speaker
        # part of the interning design).  Cleared on simulator reset so the
        # table cannot grow without bound across reused networks.
        self.interner = RouteInterner()
        self.sim.add_reset_hook(self.interner.clear)

        for asn in graph.asns():
            policy = policy_factory(asn) if policy_factory is not None else None
            self.speakers[asn] = BGPSpeaker(
                self.sim, asn, config=self.config, policy=policy,
                interner=self.interner,
            )

        for a, b in graph.edges():
            link = Link(self.sim, a, b, delay=link_delay)
            self.links[(a, b)] = link
            self.speakers[a].add_peer(b, link)
            self.speakers[b].add_peer(a, link)

    # -- lifecycle ---------------------------------------------------------

    def establish_sessions(self) -> None:
        """Open every session (lower ASN initiates) and let them establish.

        With keepalives disabled (``hold_time == 0``, the default) the event
        queue drains completely; with keepalives on it never drains, so the
        run is bounded to the handful of link round-trips an OPEN exchange
        needs.
        """
        for a, b in self.graph.edges():
            self.speakers[a].start_session(b)
        if self.config.hold_time > 0:
            max_delay = max(link.delay for link in self.links.values())
            self.sim.run(until=self.sim.now + 4 * max_delay)
        else:
            self.sim.run_to_quiescence()
        unestablished = [
            (a, b)
            for a, b in self.graph.edges()
            if not self.speakers[a].sessions[b].established
        ]
        if unestablished:
            raise RuntimeError(f"sessions failed to establish: {unestablished}")

    def run_to_convergence(self) -> int:
        """Drain the event queue; returns events processed.

        Only terminates when keepalives are disabled (``hold_time == 0``);
        with keepalives on, use :meth:`run_for` instead.
        """
        return self.sim.run_to_quiescence()

    def run_for(self, duration: float) -> int:
        """Advance the simulation by ``duration`` seconds."""
        if duration < 0:
            raise ValueError(f"duration must be non-negative, got {duration}")
        return self.sim.run(until=self.sim.now + duration)

    # -- snapshot / restore ------------------------------------------------

    def snapshot_state(self) -> Dict[str, Any]:
        """Capture the whole network: simulator, every speaker, every link.

        Raises :class:`SnapshotError` if the live event queue holds events
        the component inventory cannot account for (a foreign callback
        scheduled directly on the simulator) — restoring would silently
        drop them, so snapshotting refuses instead.
        """
        expected = sum(
            speaker.pending_events() for speaker in self.speakers.values()
        ) + sum(link.pending_events() for link in self.links.values())
        live = len(self.sim.queue)
        if live != expected:
            raise SnapshotError(
                f"event queue holds {live} live event(s) but components "
                f"account for {expected}; cannot snapshot foreign events"
            )
        return {
            "sim": self.sim.snapshot_state(),
            "speakers": {
                asn: speaker.snapshot_state()
                for asn, speaker in sorted(self.speakers.items())
            },
            "links": {
                key: link.snapshot_state()
                for key, link in sorted(self.links.items())
            },
        }

    def restore_state(self, state: Dict[str, Any]) -> None:
        """Overlay a snapshot onto this network (same graph, fresh or used).

        Clears the simulator queue, overwrites component state, then
        re-arms every captured pending event in its original queue order so
        the continuation is bit-identical to running on from the snapshot
        point.
        """
        if set(state["speakers"]) != set(self.speakers):
            raise SnapshotError(
                "snapshot speaker set does not match this network's topology"
            )
        if set(state["links"]) != set(self.links):
            raise SnapshotError(
                "snapshot link set does not match this network's topology"
            )
        self.sim.restore_state(state["sim"])
        rearm = RearmPlan()
        for asn, speaker_state in state["speakers"].items():
            self.speakers[asn].restore_state(speaker_state, rearm)
        for key, link_state in state["links"].items():
            self.links[key].restore_state(link_state, rearm)
        rearm.execute()

    # -- convenience -------------------------------------------------------

    def speaker(self, asn: ASN) -> BGPSpeaker:
        try:
            return self.speakers[asn]
        except KeyError:
            raise KeyError(f"AS{asn} is not in this network")

    def link(self, a: ASN, b: ASN) -> Link:
        key = (min(a, b), max(a, b))
        try:
            return self.links[key]
        except KeyError:
            raise KeyError(f"no link between AS{a} and AS{b}")

    def originate(
        self, asn: ASN, prefix: Prefix, communities: Iterable = ()
    ) -> None:
        self.speaker(asn).originate(prefix, communities=communities)

    def best_origins(self, prefix: Prefix) -> Dict[ASN, Optional[ASN]]:
        """Map every AS to the origin of its current best route for
        ``prefix`` (None = no route)."""
        return {
            asn: speaker.best_origin(prefix)
            for asn, speaker in sorted(self.speakers.items())
        }

    def ases_preferring_origin(
        self, prefix: Prefix, origins: Iterable[ASN]
    ) -> List[ASN]:
        """ASes whose best route for ``prefix`` originates in ``origins``."""
        wanted = set(origins)
        return [
            asn
            for asn, origin in self.best_origins(prefix).items()
            if origin in wanted
        ]

    def total_updates_sent(self) -> int:
        return sum(s.updates_sent for s in self.speakers.values())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Network({len(self.speakers)} ASes, {len(self.links)} links)"
