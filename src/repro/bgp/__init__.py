"""A BGP-4 simulator at AS granularity.

This package is a clean-room reimplementation of the protocol machinery the
paper's evaluation relied on (a modified SSFnet BGP): path attributes
(including the community attribute the MOAS list rides on), the three RIBs,
the decision process, import/export policy, per-peer MRAI timers, session
management and UPDATE propagation over :class:`repro.net.Link` objects.

One :class:`BGPSpeaker` represents one AS, exactly as in the paper's
simulation topologies where "each node represents an Autonomous System".
"""

from repro.bgp.attributes import (
    AsPath,
    AsPathSegment,
    Community,
    Origin,
    PathAttributes,
    SegmentType,
)
from repro.bgp.errors import BgpError, PolicyError, SessionError
from repro.bgp.messages import (
    KeepaliveMessage,
    Message,
    NotificationMessage,
    OpenMessage,
    UpdateMessage,
)
from repro.bgp.policy import (
    AcceptAllPolicy,
    GaoRexfordPolicy,
    PeerRelation,
    Policy,
    PolicyChain,
    PrefixFilterPolicy,
)
from repro.bgp.rib import AdjRibIn, AdjRibOut, LocRib, RibEntry
from repro.bgp.decision import DecisionProcess, RouteComparison
from repro.bgp.session import SessionState
from repro.bgp.speaker import BGPSpeaker, SpeakerConfig

__all__ = [
    "AsPath",
    "AsPathSegment",
    "SegmentType",
    "Community",
    "Origin",
    "PathAttributes",
    "BgpError",
    "PolicyError",
    "SessionError",
    "Message",
    "OpenMessage",
    "UpdateMessage",
    "KeepaliveMessage",
    "NotificationMessage",
    "Policy",
    "PolicyChain",
    "AcceptAllPolicy",
    "PrefixFilterPolicy",
    "GaoRexfordPolicy",
    "PeerRelation",
    "AdjRibIn",
    "AdjRibOut",
    "LocRib",
    "RibEntry",
    "DecisionProcess",
    "RouteComparison",
    "SessionState",
    "BGPSpeaker",
    "SpeakerConfig",
]
