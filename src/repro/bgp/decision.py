"""The BGP decision process.

Implements the RFC 4271 route-selection ladder over Adj-RIB-In candidates:

1. highest LOCAL_PREF;
2. shortest AS_PATH (AS_SET counts as one);
3. lowest ORIGIN (IGP < EGP < INCOMPLETE);
4. lowest MED, compared only between routes from the same neighbouring AS;
5. prefer locally originated routes over learned ones;
6. prefer the oldest route (the classic "prefer oldest external path"
   stability rule of paper-era BGP implementations; disable with
   ``prefer_oldest=False`` for strict RFC 4271 behaviour);
7. lowest peer ASN (standing in for lowest router id — the deterministic
   final tie-break that makes the whole simulation replayable).

The comparison is exposed both as a "pick best from list" operation and as a
pairwise comparator so tests can probe each rung of the ladder in isolation.
"""

from __future__ import annotations

import enum
from typing import List, Optional, Sequence

from repro.bgp.rib import RibEntry


class RouteComparison(enum.Enum):
    """Outcome of a pairwise comparison, annotated with the deciding rule."""

    LEFT_BETTER = "left"
    RIGHT_BETTER = "right"
    EQUAL = "equal"


class DecisionProcess:
    """Stateless best-path selection.

    ``med_across_peers`` enables "always-compare-MED" mode (a common
    operational knob); the default is the RFC behaviour of only comparing
    MED between routes learned from the same neighbour AS.
    """

    def __init__(
        self, med_across_peers: bool = False, prefer_oldest: bool = True
    ) -> None:
        self.med_across_peers = med_across_peers
        self.prefer_oldest = prefer_oldest

    # -- pairwise --------------------------------------------------------------

    def compare(self, left: RibEntry, right: RibEntry) -> RouteComparison:
        """Compare two candidate routes for the same prefix."""
        if left.prefix != right.prefix:
            raise ValueError(
                f"cannot compare routes for different prefixes "
                f"{left.prefix} vs {right.prefix}"
            )
        la, ra = left.attributes, right.attributes

        if la.local_pref != ra.local_pref:
            return (
                RouteComparison.LEFT_BETTER
                if la.local_pref > ra.local_pref
                else RouteComparison.RIGHT_BETTER
            )
        if la.as_path.length != ra.as_path.length:
            return (
                RouteComparison.LEFT_BETTER
                if la.as_path.length < ra.as_path.length
                else RouteComparison.RIGHT_BETTER
            )
        if la.origin != ra.origin:
            return (
                RouteComparison.LEFT_BETTER
                if la.origin < ra.origin
                else RouteComparison.RIGHT_BETTER
            )
        if self._med_comparable(left, right) and la.med != ra.med:
            return (
                RouteComparison.LEFT_BETTER
                if la.med < ra.med
                else RouteComparison.RIGHT_BETTER
            )
        if left.is_local != right.is_local:
            return (
                RouteComparison.LEFT_BETTER
                if left.is_local
                else RouteComparison.RIGHT_BETTER
            )
        if self.prefer_oldest and left.age_key != right.age_key:
            return (
                RouteComparison.LEFT_BETTER
                if left.age_key < right.age_key
                else RouteComparison.RIGHT_BETTER
            )
        if left.peer is not None and right.peer is not None and left.peer != right.peer:
            return (
                RouteComparison.LEFT_BETTER
                if left.peer < right.peer
                else RouteComparison.RIGHT_BETTER
            )
        return RouteComparison.EQUAL

    def _med_comparable(self, left: RibEntry, right: RibEntry) -> bool:
        if self.med_across_peers:
            return True
        left_neighbor = left.attributes.as_path.first_asn
        right_neighbor = right.attributes.as_path.first_asn
        return (
            left_neighbor is not None
            and left_neighbor == right_neighbor
        )

    # -- selection ----------------------------------------------------------------

    def select_best(self, candidates: Sequence[RibEntry]) -> Optional[RibEntry]:
        """Return the best route among ``candidates`` (``None`` if empty).

        The result is independent of input order: the comparator is a total
        order once the peer-ASN tie-break applies, and candidates from the
        same peer cannot coexist for one prefix.
        """
        best: Optional[RibEntry] = None
        for candidate in candidates:
            if best is None:
                best = candidate
                continue
            outcome = self.compare(candidate, best)
            if outcome is RouteComparison.LEFT_BETTER:
                best = candidate
        return best

    def rank(self, candidates: Sequence[RibEntry]) -> List[RibEntry]:
        """All candidates, best first — used by diagnostics and tests."""
        import functools

        def cmp(a: RibEntry, b: RibEntry) -> int:
            outcome = self.compare(a, b)
            if outcome is RouteComparison.LEFT_BETTER:
                return -1
            if outcome is RouteComparison.RIGHT_BETTER:
                return 1
            return 0

        return sorted(candidates, key=functools.cmp_to_key(cmp))
