"""BGP error hierarchy."""

from __future__ import annotations


class BgpError(Exception):
    """Base class for all BGP-layer errors."""


class SessionError(BgpError):
    """Session management violations (peering with self, duplicate peers…)."""


class PolicyError(BgpError):
    """Raised by malformed policy configuration."""


class AttributeError_(BgpError):
    """Malformed path attribute (named with a trailing underscore to avoid
    shadowing the builtin)."""
