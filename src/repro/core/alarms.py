"""MOAS alarms.

"Whenever a BGP router notices any inconsistency in the MOAS Lists
received, it should generate an alarm signal; further investigation should
be conducted to identify the cause of the inconsistency." (§4.2)

The alarm log is the audit trail of that signal: which router, which
prefix, which conflicting lists, and what the investigation (origin-oracle
lookup) concluded.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional

from repro.core.moas_list import MoasList
from repro.net.addresses import Prefix
from repro.net.asn import ASN


class AlarmKind(enum.Enum):
    #: Two announcements for the same prefix carried different MOAS lists.
    INCONSISTENT_LISTS = "inconsistent-lists"
    #: An announcement's own origin AS is absent from the list it carries —
    #: malformed by construction, caught without needing a second view.
    ORIGIN_NOT_IN_OWN_LIST = "origin-not-in-own-list"
    #: Oracle lookup concluded an origin is unauthorised for the prefix.
    UNAUTHORISED_ORIGIN = "unauthorised-origin"


@dataclass(frozen=True)
class Alarm:
    """One alarm event."""

    time: float
    detector: ASN
    prefix: Prefix
    kind: AlarmKind
    observed_list: Optional[MoasList] = None
    conflicting_list: Optional[MoasList] = None
    suspect_origin: Optional[ASN] = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Alarm(t={self.time:.3f}, AS{self.detector}, {self.prefix}, "
            f"{self.kind.value}, suspect={self.suspect_origin})"
        )


class AlarmLog:
    """Append-only log of alarms with query helpers."""

    def __init__(self) -> None:
        self._alarms: List[Alarm] = []

    def raise_alarm(self, alarm: Alarm) -> None:
        self._alarms.append(alarm)

    def snapshot_state(self) -> List[Alarm]:
        """Copy of the alarm list (alarms themselves are frozen/shared)."""
        return list(self._alarms)

    def restore_state(self, state: List[Alarm]) -> None:
        self._alarms = list(state)

    def __len__(self) -> int:
        return len(self._alarms)

    def __iter__(self):
        return iter(self._alarms)

    def all(self) -> List[Alarm]:
        return list(self._alarms)

    def for_prefix(self, prefix: Prefix) -> List[Alarm]:
        return [a for a in self._alarms if a.prefix == prefix]

    def by_detector(self) -> Dict[ASN, List[Alarm]]:
        out: Dict[ASN, List[Alarm]] = {}
        for alarm in self._alarms:
            out.setdefault(alarm.detector, []).append(alarm)
        return out

    def detectors(self) -> FrozenSet[ASN]:
        return frozenset(a.detector for a in self._alarms)

    def count(self, kind: AlarmKind) -> int:
        return sum(1 for a in self._alarms if a.kind is kind)

    #: Alarm kinds that actually implicate an origin.  INCONSISTENT_LISTS
    #: records the *arriving* route's origin for context, but the arriving
    #: route may be the genuine one (conflict discovered when the valid
    #: announcement lands after the bogus one) — it accuses no one.
    _IMPLICATING_KINDS = frozenset(
        {AlarmKind.UNAUTHORISED_ORIGIN, AlarmKind.ORIGIN_NOT_IN_OWN_LIST}
    )

    def suspects(self) -> FrozenSet[ASN]:
        """Origin ASes that adjudicated alarms actually implicate."""
        return frozenset(
            a.suspect_origin
            for a in self._alarms
            if a.suspect_origin is not None and a.kind in self._IMPLICATING_KINDS
        )

    def clear(self) -> None:
        self._alarms.clear()
