"""Deployment plans: which routers check MOAS lists (§5.4).

Experiment 3 evaluates partial deployment: "we randomly select 50% of the
nodes to have the capability of processing MOAS List ... The other nodes
ignore the MOAS List, which means they may accept and install a false
route in their routing table and advertise the false route to their peers".

A :class:`DeploymentPlan` names the capable ASes; :meth:`apply` builds one
checker per capable AS and attaches it to the corresponding speaker in a
:class:`~repro.bgp.network.Network`, returning the checkers so callers can
inspect alarms and suppression counts.
"""

from __future__ import annotations

import random
from typing import Dict, FrozenSet, Iterable, Optional

from repro.bgp.network import Network
from repro.core.alarms import AlarmLog
from repro.core.checker import CheckerMode, MoasChecker
from repro.core.origin_verification import OriginOracle
from repro.net.asn import ASN


class DeploymentPlan:
    """The set of MOAS-capable ASes."""

    def __init__(self, capable: Iterable[ASN]) -> None:
        self.capable: FrozenSet[ASN] = frozenset(capable)

    # -- constructors --------------------------------------------------------

    @classmethod
    def full(cls, asns: Iterable[ASN]) -> "DeploymentPlan":
        """Everyone checks — the paper's "Full MOAS Detection" curves."""
        return cls(asns)

    @classmethod
    def none(cls) -> "DeploymentPlan":
        """No one checks — the paper's "Normal BGP" curves."""
        return cls(())

    @classmethod
    def random_fraction(
        cls, asns: Iterable[ASN], fraction: float, rng: random.Random
    ) -> "DeploymentPlan":
        """A random ``fraction`` of ASes check — "Half MOAS Detection" at
        fraction=0.5."""
        if not 0 <= fraction <= 1:
            raise ValueError(f"fraction must be in [0, 1], got {fraction}")
        pool = sorted(asns)
        count = round(fraction * len(pool))
        return cls(rng.sample(pool, count))

    # -- queries ------------------------------------------------------------------

    def is_capable(self, asn: ASN) -> bool:
        return asn in self.capable

    def __len__(self) -> int:
        return len(self.capable)

    def __contains__(self, asn: ASN) -> bool:
        return asn in self.capable

    # -- application ------------------------------------------------------------------

    def apply(
        self,
        network: Network,
        oracle: Optional[OriginOracle],
        mode: CheckerMode = CheckerMode.DETECT_AND_SUPPRESS,
        shared_alarm_log: Optional[AlarmLog] = None,
    ) -> Dict[ASN, MoasChecker]:
        """Attach a checker to every capable AS present in ``network``.

        ``shared_alarm_log`` lets an experiment aggregate alarms across all
        detectors into one log; omit it for per-checker logs.
        """
        checkers: Dict[ASN, MoasChecker] = {}
        for asn in sorted(self.capable):
            if asn not in network.speakers:
                continue
            checker = MoasChecker(
                mode=mode, oracle=oracle, alarm_log=shared_alarm_log
            )
            checker.attach(network.speaker(asn))
            checkers[asn] = checker
        return checkers
