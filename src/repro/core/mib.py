"""The BGP-4 MIB deployment path (§4.2).

"If the router is equipped to support the new BGP MIB [10], one could also
run a management application to get all MOAS List through the MIB
interface and check the MOAS List consistency."

Two pieces, mirroring that sentence:

* :class:`BgpMib` — a read-only management view of one speaker, shaped
  after the draft-ietf-idr-bgp4-mib tables the paper cites: the peer table
  (``bgp4PeerTable``) and the received-path-attribute table
  (``bgp4PathAttrTable``), each row carrying the attributes the MOAS
  checker needs (prefix, peer, AS path, communities);
* :class:`MibMoasApplication` — the management application: it polls the
  MIBs of a set of routers, reconstructs every announcement's effective
  MOAS list, and reports consistency violations per prefix — detection
  without touching the routers' forwarding behaviour (monitoring-only,
  like the off-line process, but live against router state rather than
  archived dumps).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.bgp.attributes import AsPath, Community
from repro.bgp.speaker import BGPSpeaker
from repro.core.moas_list import MoasList, extract_moas_list
from repro.net.addresses import Prefix
from repro.net.asn import ASN


@dataclass(frozen=True)
class PeerTableRow:
    """One row of the peer table: session state for one neighbour."""

    local_asn: ASN
    remote_asn: ASN
    state: str


@dataclass(frozen=True)
class PathAttrRow:
    """One row of the path-attribute table: one received route."""

    prefix: Prefix
    peer: ASN
    as_path: AsPath
    communities: FrozenSet[Community]
    best: bool

    @property
    def origin_asn(self) -> Optional[ASN]:
        return self.as_path.origin_asn


class BgpMib:
    """Read-only management view over one BGP speaker."""

    def __init__(self, speaker: BGPSpeaker) -> None:
        self._speaker = speaker

    @property
    def local_asn(self) -> ASN:
        return self._speaker.asn

    def peer_table(self) -> List[PeerTableRow]:
        return [
            PeerTableRow(
                local_asn=self._speaker.asn,
                remote_asn=peer,
                state=session.state.value,
            )
            for peer, session in sorted(self._speaker.sessions.items())
        ]

    def path_attr_table(self) -> List[PathAttrRow]:
        """Every received route, flagged with whether it is the best."""
        rows: List[PathAttrRow] = []
        for entry in self._speaker.adj_rib_in.entries():
            assert entry.peer is not None
            best = self._speaker.loc_rib.get(entry.prefix)
            rows.append(
                PathAttrRow(
                    prefix=entry.prefix,
                    peer=entry.peer,
                    as_path=entry.attributes.as_path,
                    communities=entry.attributes.communities,
                    best=best is entry,
                )
            )
        rows.sort(key=lambda r: (str(r.prefix), r.peer))
        return rows


@dataclass(frozen=True)
class MibFinding:
    """One inconsistency found by the management application."""

    prefix: Prefix
    lists_seen: FrozenSet[MoasList]
    origins_seen: FrozenSet[ASN]
    observed_at: FrozenSet[ASN]  # routers whose MIBs exposed the conflict


class MibMoasApplication:
    """Polls router MIBs and checks MOAS-list consistency across them."""

    def __init__(self, mibs: Iterable[BgpMib]) -> None:
        self._mibs = list(mibs)
        self.polls = 0

    def add_router(self, mib: BgpMib) -> None:
        self._mibs.append(mib)

    def poll(self) -> List[MibFinding]:
        """One management sweep; returns the current inconsistencies."""
        self.polls += 1
        # prefix -> {moas list -> set of routers that saw it}, and origins.
        lists: Dict[Prefix, Dict[MoasList, Set[ASN]]] = {}
        origins: Dict[Prefix, Set[ASN]] = {}

        for mib in self._mibs:
            for row in mib.path_attr_table():
                effective = extract_moas_list_from_row(row)
                if effective is None:
                    continue
                lists.setdefault(row.prefix, {}).setdefault(
                    effective, set()
                ).add(mib.local_asn)
                if row.origin_asn is not None:
                    origins.setdefault(row.prefix, set()).add(row.origin_asn)

        findings: List[MibFinding] = []
        for prefix, per_list in sorted(lists.items(), key=lambda kv: str(kv[0])):
            if len(per_list) > 1:
                observers: Set[ASN] = set()
                for watchers in per_list.values():
                    observers.update(watchers)
                findings.append(
                    MibFinding(
                        prefix=prefix,
                        lists_seen=frozenset(per_list),
                        origins_seen=frozenset(origins.get(prefix, set())),
                        observed_at=frozenset(observers),
                    )
                )
        return findings


def extract_moas_list_from_row(row: PathAttrRow) -> Optional[MoasList]:
    """The effective MOAS list of one MIB row (footnote-3 semantics)."""
    explicit = MoasList.from_communities(row.communities)
    if explicit is not None:
        return explicit
    origin = row.origin_asn
    if origin is None:
        return None
    return MoasList([origin])
