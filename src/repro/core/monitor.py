"""The off-line MOAS monitoring process (§4.2).

"One could deploy the MOAS List checking quickly in the operational
Internet via an off-line monitoring process, which periodically downloads
the BGP routing messages and checks the MOAS List consistency from
multiple peers."

:class:`OfflineMonitor` consumes RouteViews-style table dumps (the same
format the topology/measurement pipeline uses), reconstructs each route's
effective MOAS list from its communities — the dump format does not carry
communities, so the monitor accepts a side table of per-(prefix, origin)
community claims — and reports consistency violations per prefix.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.core.moas_list import MoasList
from repro.core.origin_verification import PrefixOriginRegistry
from repro.net.addresses import Prefix
from repro.net.asn import ASN
from repro.topology.routeviews import RouteViewsTable


@dataclass(frozen=True)
class MonitorFinding:
    """One per-prefix verdict from a monitoring pass."""

    prefix: Prefix
    origins_seen: FrozenSet[ASN]
    lists_seen: FrozenSet[MoasList]
    consistent: bool
    unauthorised_origins: FrozenSet[ASN] = frozenset()


@dataclass
class MonitorReport:
    """The outcome of one monitoring pass over one table dump."""

    date: str
    findings: List[MonitorFinding] = field(default_factory=list)

    @property
    def conflicts(self) -> List[MonitorFinding]:
        return [f for f in self.findings if not f.consistent]

    @property
    def moas_prefixes(self) -> List[MonitorFinding]:
        return [f for f in self.findings if len(f.origins_seen) > 1]

    def summary(self) -> str:
        return (
            f"{self.date}: {len(self.findings)} prefixes, "
            f"{len(self.moas_prefixes)} MOAS, {len(self.conflicts)} conflicts"
        )


# A claims table: what MOAS list each origin attaches for each prefix
# (None = the origin attaches no list, i.e. footnote 3 applies).
ClaimsTable = Dict[Tuple[Prefix, ASN], Optional[MoasList]]


class OfflineMonitor:
    """Checks MOAS-list consistency across the views in a table dump."""

    def __init__(
        self,
        claims: Optional[ClaimsTable] = None,
        registry: Optional[PrefixOriginRegistry] = None,
    ) -> None:
        self.claims = claims or {}
        self.registry = registry

    def _effective_list(self, prefix: Prefix, origin: ASN) -> MoasList:
        claimed = self.claims.get((prefix, origin))
        if claimed is not None:
            return claimed
        return MoasList([origin])  # footnote 3

    def check_table(self, table: RouteViewsTable) -> MonitorReport:
        """One monitoring pass: consistency verdict per prefix."""
        report = MonitorReport(date=table.date)
        for prefix, origins in sorted(
            table.origins_by_prefix().items(), key=lambda kv: str(kv[0])
        ):
            lists = frozenset(
                self._effective_list(prefix, origin) for origin in origins
            )
            consistent = len(lists) <= 1
            unauthorised: FrozenSet[ASN] = frozenset()
            if self.registry is not None:
                authorised = self.registry.origins(prefix)
                if authorised is not None:
                    unauthorised = frozenset(origins - authorised)
            report.findings.append(
                MonitorFinding(
                    prefix=prefix,
                    origins_seen=frozenset(origins),
                    lists_seen=lists,
                    consistent=consistent,
                    unauthorised_origins=unauthorised,
                )
            )
        return report

    def check_series(self, tables: List[RouteViewsTable]) -> List[MonitorReport]:
        """Periodic monitoring over a dump series (one report per day)."""
        return [self.check_table(table) for table in tables]
