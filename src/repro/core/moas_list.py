"""The MOAS list and its BGP community encoding (§4.1-4.2).

The paper reserves one of the 2^16 values available in the low two octets
of a community for "MOAS List Value" (``MLVal``).  A community
``(X : MLVal)`` attached to a route means "AS X may originate a route to
this prefix"; the full MOAS list for a prefix is the set of ASes appearing
in such communities.  Consistency between two lists is *set equality* —
"the order in the list may differ, but the set of ASes included in each
route announcement must be identical".

Footnote 3 supplies the semantics for routes without any MOAS community:
they are treated as carrying the singleton list {origin AS}.
"""

from __future__ import annotations

from functools import lru_cache
from typing import FrozenSet, Iterable, List, Optional, Tuple

from repro.bgp.attributes import Community, PathAttributes
from repro.net.asn import ASN, validate_asn

#: The reserved low-16-bit community value denoting "MOAS list member".
#: Any value works as long as the whole network agrees; we pick 0x00FF,
#: mnemonic for "origin FF-irmed".  The draft cited as [23] reserves the
#: actual IANA value; the simulator only needs network-wide agreement.
MLVAL = 0x00FF


class MoasList:
    """An immutable set of ASes entitled to originate a prefix."""

    __slots__ = ("origins",)

    def __init__(self, origins: Iterable[ASN]) -> None:
        origin_set = frozenset(validate_asn(a) for a in origins)
        if not origin_set:
            raise ValueError("a MOAS list must contain at least one AS")
        object.__setattr__(self, "origins", origin_set)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("MoasList is immutable")

    # -- the §4.2 consistency predicate -------------------------------------

    def consistent_with(self, other: "MoasList") -> bool:
        """Set equality — the paper's single consistency rule."""
        return self.origins == other.origins

    def authorises(self, asn: ASN) -> bool:
        return asn in self.origins

    # -- encoding -------------------------------------------------------------

    def to_communities(self) -> FrozenSet[Community]:
        """Encode as ``(AS : MLVal)`` communities (Figure 7)."""
        return frozenset(Community(asn, MLVAL) for asn in self.origins)

    @classmethod
    def from_communities(
        cls, communities: Iterable[Community]
    ) -> Optional["MoasList"]:
        """Decode from a community set; None if no MOAS communities present."""
        members = [c.asn for c in communities if c.value == MLVAL]
        if not members:
            return None
        return cls(members)

    # -- sizing (the §4.3 overhead discussion) ----------------------------------

    def encoded_size_bytes(self) -> int:
        """Wire footprint: four octets per community (RFC 1997)."""
        return 4 * len(self.origins)

    # -- dunder ---------------------------------------------------------------------

    def __contains__(self, asn: ASN) -> bool:
        return asn in self.origins

    def __len__(self) -> int:
        return len(self.origins)

    def __iter__(self):
        return iter(sorted(self.origins))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, MoasList):
            return NotImplemented
        return self.origins == other.origins

    def __hash__(self) -> int:
        return hash(self.origins)

    def __reduce__(self) -> Tuple[type, Tuple[Tuple[ASN, ...]]]:
        # The immutability guard breaks default slot pickling; rebuild via
        # the constructor, sorted so the pickle byte stream is canonical.
        return (MoasList, (tuple(sorted(self.origins)),))

    def __repr__(self) -> str:
        return "MoasList({" + ", ".join(str(a) for a in sorted(self.origins)) + "})"


def moas_communities(origins: Iterable[ASN]) -> FrozenSet[Community]:
    """Convenience: the community set an origin AS attaches when announcing
    a prefix shared by ``origins`` (Figure 6/7)."""
    return MoasList(origins).to_communities()


@lru_cache(maxsize=8192)
def _decode_communities(communities: FrozenSet[Community]) -> Optional[MoasList]:
    return MoasList.from_communities(communities)


@lru_cache(maxsize=8192)
def _singleton_list(origin: ASN) -> MoasList:
    return MoasList([origin])


def extract_moas_list(
    attributes: PathAttributes, implicit_origin: Optional[ASN] = None
) -> Optional[MoasList]:
    """The MOAS list a route effectively carries.

    Explicit MOAS communities win.  Otherwise footnote 3 applies: the route
    is treated as carrying {origin AS}.  ``implicit_origin`` overrides the
    AS-path-derived origin for locally originated routes (whose path is
    still empty).  Returns None only when no origin can be determined
    (aggregated path ending in an AS_SET and no communities).

    Both construction paths are memoized: the checker extracts a list from
    every announcement, but the distinct (communities, origin) inputs number
    a handful per topology, and :class:`MoasList` is immutable so sharing
    instances is safe.
    """
    explicit = _decode_communities(attributes.communities)
    if explicit is not None:
        return explicit
    origin = implicit_origin if implicit_origin is not None else attributes.origin_asn
    if origin is None:
        return None
    return _singleton_list(origin)
