"""The paper's contribution: the MOAS-list detection scheme (§4).

* :mod:`repro.core.moas_list` — the MOAS list and its encoding in the BGP
  community attribute (``AS : MLVal`` values, §4.2);
* :mod:`repro.core.alarms` — alarm records and the alarm log raised on
  inconsistent lists;
* :mod:`repro.core.checker` — the per-router consistency checker that hooks
  into the BGP import path, raises alarms, and (when an origin oracle is
  available) suppresses routes from unauthorised origins;
* :mod:`repro.core.origin_verification` — origin oracles: ground-truth
  registry and the DNS MOASRR-backed resolver of §4.4;
* :mod:`repro.core.deployment` — full / partial / no deployment plans that
  attach checkers to a simulated network (§5.4);
* :mod:`repro.core.monitor` — the §4.2 off-line monitoring process that
  checks MOAS-list consistency across multi-peer table dumps.
"""

from repro.core.moas_list import (
    MLVAL,
    MoasList,
    extract_moas_list,
    moas_communities,
)
from repro.core.alarms import Alarm, AlarmKind, AlarmLog
from repro.core.checker import CheckerMode, MoasChecker
from repro.core.origin_verification import (
    DnsOracle,
    GroundTruthOracle,
    OriginOracle,
    PrefixOriginRegistry,
    build_moas_zone,
)
from repro.core.deployment import DeploymentPlan
from repro.core.monitor import MonitorReport, OfflineMonitor
from repro.core.mib import BgpMib, MibMoasApplication
from repro.core.networked_dns import NetworkedDnsOracle, NetworkedDnsService

__all__ = [
    "MLVAL",
    "MoasList",
    "moas_communities",
    "extract_moas_list",
    "Alarm",
    "AlarmKind",
    "AlarmLog",
    "MoasChecker",
    "CheckerMode",
    "OriginOracle",
    "PrefixOriginRegistry",
    "GroundTruthOracle",
    "DnsOracle",
    "build_moas_zone",
    "DeploymentPlan",
    "OfflineMonitor",
    "MonitorReport",
    "NetworkedDnsService",
    "NetworkedDnsOracle",
    "BgpMib",
    "MibMoasApplication",
]
