"""DNS service hosted inside the simulated network.

§2's critique of DNS-based origin verification: "given that DNS operations
rely on the routing to function correctly, requiring BGP to interact with
the DNS for correctness checking introduces a circular dependency."

:class:`NetworkedDnsService` makes that dependency concrete instead of
assumed: the MOASRR zone lives at a *server AS* that announces a *service
prefix* into the simulated BGP network.  A router's lookup succeeds only
if the router's own forwarding actually delivers packets to the server AS
— verified by walking the data plane, not by consulting an oracle.  If an
attacker hijacks the DNS service prefix itself, origin verification
silently degrades exactly as the paper warns.
"""

from __future__ import annotations

from typing import FrozenSet, Optional

from repro.bgp.forwarding import DeliveryOutcome, trace_packet
from repro.bgp.network import Network
from repro.core.origin_verification import (
    DnsOracle,
    PrefixOriginRegistry,
    build_moas_zone,
)
from repro.dnssub.dnssec import KeyRing
from repro.dnssub.resolver import Resolver
from repro.net.addresses import Prefix
from repro.net.asn import ASN


class NetworkedDnsService:
    """The MOASRR database, reachable only through the routed network."""

    def __init__(
        self,
        network: Network,
        server_asn: ASN,
        service_prefix: Prefix,
        registry: PrefixOriginRegistry,
        keyring: Optional[KeyRing] = None,
        secure: bool = False,
    ) -> None:
        if server_asn not in network.speakers:
            raise ValueError(f"AS{server_asn} is not part of the network")
        self.network = network
        self.server_asn = server_asn
        self.service_prefix = service_prefix
        self.registry = registry
        self._querier: Optional[ASN] = None

        self.resolver = Resolver(
            keyring=keyring,
            secure=secure,
            reachability=self._zone_reachable,
        )
        self.resolver.host_zone(build_moas_zone(registry, keyring=keyring))
        # Reachability depends on who is asking; caching a positive answer
        # obtained by one router must not satisfy another router whose own
        # path to the server is broken.
        self._cache_disabled = True

    def announce(self) -> None:
        """The server AS announces the DNS service prefix."""
        self.network.originate(self.server_asn, self.service_prefix)

    # -- reachability through the data plane -------------------------------

    def _zone_reachable(self, apex: str) -> bool:
        if self._querier is None:
            return False
        if self._querier == self.server_asn:
            return True
        trace = trace_packet(
            self.network,
            self._querier,
            self.service_prefix,
            legitimate_origins=[self.server_asn],
        )
        return trace.outcome is DeliveryOutcome.DELIVERED

    def oracle_for(self, querier: ASN) -> "NetworkedDnsOracle":
        """An oracle bound to the AS doing the asking."""
        return NetworkedDnsOracle(self, querier)


class NetworkedDnsOracle:
    """Per-router oracle view: lookups traverse the querier's own routes."""

    def __init__(self, service: NetworkedDnsService, querier: ASN) -> None:
        self.service = service
        self.querier = querier
        self.lookups = 0
        self.failures = 0

    def authorised_origins(self, prefix: Prefix) -> Optional[FrozenSet[ASN]]:
        self.lookups += 1
        service = self.service
        service._querier = self.querier
        if service._cache_disabled:
            service.resolver.invalidate_cache()
        try:
            inner = DnsOracle(service.resolver)
            answer = inner.authorised_origins(prefix)
        finally:
            service._querier = None
        if answer is None:
            self.failures += 1
        return answer
