"""Origin oracles: who may originate a prefix? (§4.4)

When a MOAS alarm fires, the router must decide which of the conflicting
announcements is bogus.  The paper proposes resolving via an enhanced DNS
carrying MOASRR records.  We provide:

* :class:`PrefixOriginRegistry` — the ground-truth database of authorised
  (prefix → origin-AS set) bindings, maintained by the experiment scenario;
* :class:`GroundTruthOracle` — answers directly from the registry (an
  idealised instant verification channel);
* :class:`DnsOracle` — answers by querying MOASRR records through the
  :mod:`repro.dnssub` resolver, inheriting its failure modes (unreachable
  zones, forged records under DNSSEC) so the paper's circular-dependency
  critique of pure-DNS checking is reproducible;
* :func:`build_moas_zone` — publishes a registry into a DNS zone, signing
  records when a keyring is supplied.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Optional, Protocol

from repro.dnssub.dnssec import KeyRing, sign_record
from repro.dnssub.records import (
    MoasRecordData,
    RecordType,
    ResourceRecord,
    moasrr_name_for_prefix,
)
from repro.dnssub.resolver import Resolver
from repro.dnssub.zone import Zone
from repro.net.addresses import Prefix
from repro.net.asn import ASN, validate_asn


class OriginOracle(Protocol):
    """Answers "which ASes are authorised to originate ``prefix``?"."""

    def authorised_origins(self, prefix: Prefix) -> Optional[FrozenSet[ASN]]:
        """The authorised set, or None when the answer is unavailable
        (unknown prefix, unreachable/unverifiable DNS...)."""
        ...  # pragma: no cover - protocol


class PrefixOriginRegistry:
    """Ground truth: which ASes legitimately originate each prefix."""

    def __init__(self) -> None:
        self._bindings: Dict[Prefix, FrozenSet[ASN]] = {}

    def register(self, prefix: Prefix, origins: Iterable[ASN]) -> None:
        origin_set = frozenset(validate_asn(a) for a in origins)
        if not origin_set:
            raise ValueError(f"{prefix} needs at least one authorised origin")
        self._bindings[prefix] = origin_set

    def deregister(self, prefix: Prefix) -> None:
        self._bindings.pop(prefix, None)

    def origins(self, prefix: Prefix) -> Optional[FrozenSet[ASN]]:
        return self._bindings.get(prefix)

    def prefixes(self) -> Iterable[Prefix]:
        return self._bindings.keys()

    def is_authorised(self, prefix: Prefix, asn: ASN) -> Optional[bool]:
        origins = self._bindings.get(prefix)
        if origins is None:
            return None
        return asn in origins

    def __len__(self) -> int:
        return len(self._bindings)

    def __contains__(self, prefix: Prefix) -> bool:
        return prefix in self._bindings


class GroundTruthOracle:
    """Answers straight from the registry; never fails.

    This is the oracle the paper's Experiment 1 effectively assumes: nodes
    that detect a MOAS conflict "stop the further propagation of a false
    route (e.g. by checking with DNS as proposed in the paper or using some
    other mechanism)".
    """

    def __init__(self, registry: PrefixOriginRegistry) -> None:
        self.registry = registry
        self.lookups = 0

    def authorised_origins(self, prefix: Prefix) -> Optional[FrozenSet[ASN]]:
        self.lookups += 1
        return self.registry.origins(prefix)


class DnsOracle:
    """Answers by resolving the prefix's MOASRR record (§4.4).

    Failure modes are inherited from the resolver: an unreachable zone or a
    signature failure yields None, leaving the checker unable to adjudicate
    — exactly the degraded behaviour the paper warns about for DNS-based
    verification without the MOAS-list first line of defence.
    """

    def __init__(self, resolver: Resolver) -> None:
        self.resolver = resolver
        self.lookups = 0

    def authorised_origins(self, prefix: Prefix) -> Optional[FrozenSet[ASN]]:
        self.lookups += 1
        name = moasrr_name_for_prefix(prefix)
        records = self.resolver.try_resolve(name, RecordType.MOASRR)
        if not records:
            return None
        origins: set = set()
        for record in records:
            assert isinstance(record.data, MoasRecordData)
            origins.update(record.data.origins)
        return frozenset(origins)


def build_moas_zone(
    registry: PrefixOriginRegistry,
    apex: str = "moas.arpa",
    keyring: Optional[KeyRing] = None,
) -> Zone:
    """Publish a registry's bindings as MOASRR records in a zone.

    With a keyring, each record is signed so a secure resolver will accept
    it; without one the zone is unsigned (and a secure resolver rejects it,
    modelling a deployment gap).
    """
    zone = Zone(apex)
    for prefix in registry.prefixes():
        origins = registry.origins(prefix)
        assert origins is not None
        record = ResourceRecord(
            moasrr_name_for_prefix(prefix),
            RecordType.MOASRR,
            MoasRecordData(origins),
        )
        if keyring is not None:
            record = sign_record(record, keyring, apex)
        zone.add(record)
    return zone
