"""Shared detection constants and rule predicates (the R102 registry).

Detection logic runs in two drivers today — the batch
:class:`~repro.core.checker.MoasChecker` and the online
:class:`~repro.stream.engine.StreamEngine` — and the whole stream == batch
bit-identity guarantee rests on both applying *exactly* the same rules.
Every constant or predicate that exists in both places is therefore defined
once, here, and imported by both sides.  ``repro-lint`` rule R102 enforces
the discipline statically: a detection constant or rule predicate
re-defined locally in either module (same name, diverging — or even equal —
value) is a lint violation, so the two halves cannot silently drift apart
the way the reproducibility literature shows duplicated logic always does.

Everything in this module is deliberately dependency-light: values and pure
functions over :class:`~repro.core.moas_list.MoasList`, nothing that knows
about speakers, feeds or alarms.
"""

from __future__ import annotations

from typing import AbstractSet, MutableSet, Tuple

from repro.core.moas_list import MoasList

__all__ = [
    "DEFAULT_EVIDENCE_WINDOW",
    "conflict_evidence_key",
    "evaluate_list_conflict",
    "select_conflicting",
]

#: How long (in feed-time days) conflict evidence for a *dead* prefix is
#: retained before eviction.  The streaming engine's bounded-window analogue
#: of the batch checker's per-run ``_observed`` map; any second consumer of
#: evidence retention must import this value, not re-declare it.
DEFAULT_EVIDENCE_WINDOW: float = 30.0


def conflict_evidence_key(moas_list: MoasList) -> Tuple[int, ...]:
    """Deterministic ordering key for MOAS-list evidence.

    Raw set iteration order would let alarm evidence depend on hash order;
    every place that has to pick *one* list out of an evidence set sorts by
    this key first.
    """
    return tuple(moas_list)


def evaluate_list_conflict(
    seen: MutableSet[MoasList], moas_list: MoasList
) -> Tuple[bool, bool]:
    """Step 3 of the §4.2 checking rule, shared by batch and stream.

    Compares ``moas_list`` against every distinct list previously observed
    for the prefix, records it as evidence, and returns
    ``(conflict, is_new_list)``.  The steady-state fast path — the only list
    ever seen for the prefix is this very one — skips the comparison
    entirely (lists are memoized by extraction, so the membership test is an
    identity hit).
    """
    if len(seen) == 1 and moas_list in seen:
        return False, False
    conflict = any(not moas_list.consistent_with(other) for other in seen)
    is_new_list = moas_list not in seen
    seen.add(moas_list)
    return conflict, is_new_list


def select_conflicting(
    seen: AbstractSet[MoasList], moas_list: MoasList
) -> MoasList:
    """Pick the conflicting list used as alarm evidence, deterministically.

    The first list inconsistent with ``moas_list`` in
    :func:`conflict_evidence_key` order.  Callers guarantee a conflict
    exists (``evaluate_list_conflict`` returned True).
    """
    return next(
        other
        for other in sorted(seen, key=conflict_evidence_key)
        if not moas_list.consistent_with(other)
    )
