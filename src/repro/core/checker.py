"""The per-router MOAS-list consistency checker (§4.2).

A :class:`MoasChecker` attaches to one :class:`~repro.bgp.speaker.BGPSpeaker`
as an import validator.  For every route that survives import policy it:

1. decodes the route's MOAS list (explicit communities, or the footnote-3
   implicit singleton {origin});
2. rejects announcements whose own origin is missing from the list they
   carry (malformed by construction — no second view needed);
3. compares the list against every distinct list previously observed for
   the prefix; any mismatch raises an :class:`~repro.core.alarms.Alarm`;
4. in ``DETECT_AND_SUPPRESS`` mode, a conflict triggers an origin-oracle
   lookup (§4.4); routes whose origin is not authorised are rejected, and
   already-accepted routes from unauthorised origins are retroactively
   invalidated — "they stop the further propagation of a false route".

``ALARM_ONLY`` mode performs steps 1-3 but never drops a route; it is the
ablation arm measuring the value of suppression, and also models the
off-line §4.2 deployment where checking is advisory.
"""

from __future__ import annotations

import enum
from typing import Any, Dict, List, Optional, Set

from repro.bgp.attributes import PathAttributes
from repro.bgp.speaker import BGPSpeaker
from repro.core.alarms import Alarm, AlarmKind, AlarmLog
from repro.core.detection import evaluate_list_conflict, select_conflicting
from repro.core.moas_list import MoasList, extract_moas_list
from repro.core.origin_verification import OriginOracle
from repro.net.addresses import Prefix
from repro.net.asn import ASN
from repro.sanitize import InvariantError


class CheckerMode(enum.Enum):
    ALARM_ONLY = "alarm-only"
    DETECT_AND_SUPPRESS = "detect-and-suppress"


class MoasChecker:
    """MOAS-list checking for one router."""

    # Not run state: mode/oracle are construction config pinned by the
    # warm-start baseline key, the alarm log is captured at the
    # BaselineSnapshot level, and the speaker back-reference plus metric
    # instruments are re-wired by attach() on the restored network.
    _SNAPSHOT_WAIVED = frozenset(
        {
            "mode",
            "oracle",
            "alarms",
            "_speaker",
            "_m_checks",
            "_m_alarms",
            "_m_conflicts",
            "_m_suppressed",
        }
    )

    def __init__(
        self,
        mode: CheckerMode = CheckerMode.DETECT_AND_SUPPRESS,
        oracle: Optional[OriginOracle] = None,
        alarm_log: Optional[AlarmLog] = None,
    ) -> None:
        if mode is CheckerMode.DETECT_AND_SUPPRESS and oracle is None:
            raise ValueError("DETECT_AND_SUPPRESS mode requires an origin oracle")
        self.mode = mode
        self.oracle = oracle
        self.alarms = alarm_log if alarm_log is not None else AlarmLog()
        self._speaker: Optional[BGPSpeaker] = None
        # Metric instruments, resolved at attach() from the speaker's
        # simulator registry; None when metrics are disabled.
        self._m_checks = None
        self._m_alarms = None
        self._m_conflicts = None
        self._m_suppressed = None
        # Distinct MOAS lists observed per prefix (across accepted AND
        # rejected routes — a rejected bogus route must still count as
        # evidence of conflict for later arrivals).
        self._observed: Dict[Prefix, Set[MoasList]] = {}
        # Prefixes already adjudicated by the oracle, with the verdict.
        self._verdicts: Dict[Prefix, Optional[frozenset]] = {}
        self.checks = 0
        self.conflicts_detected = 0
        self.routes_suppressed = 0

    # -- wiring --------------------------------------------------------------

    def attach(self, speaker: BGPSpeaker) -> None:
        """Install this checker as the speaker's import validator."""
        if self._speaker is not None:
            raise RuntimeError("checker is already attached to a speaker")
        self._speaker = speaker
        speaker.add_import_validator(self.validate)
        metrics = speaker.sim.metrics
        if metrics is not None:
            self._m_checks = metrics.counter("checker.checks")
            self._m_alarms = metrics.counter("checker.alarms")
            self._m_conflicts = metrics.counter("checker.list_conflicts")
            self._m_suppressed = metrics.counter("checker.routes_suppressed")

    @property
    def speaker(self) -> BGPSpeaker:
        if self._speaker is None:
            raise RuntimeError("checker is not attached to a speaker")
        return self._speaker

    def _now(self) -> float:
        return self.speaker.sim.now if self._speaker is not None else 0.0

    def _raise_alarm(self, alarm: Alarm) -> None:
        if self._m_alarms is not None:
            self._m_alarms.inc()
        self.alarms.raise_alarm(alarm)

    def _count_suppressed(self) -> None:
        self.routes_suppressed += 1
        if self._m_suppressed is not None:
            self._m_suppressed.inc()

    # -- snapshot / restore ------------------------------------------------------

    def snapshot_state(self) -> Dict[str, Any]:
        """Capture observed lists, verdicts and counters.

        :class:`~repro.core.moas_list.MoasList` values and verdict frozensets
        are immutable and shared; the containers are copied.
        """
        return {
            "observed": {
                prefix: set(lists) for prefix, lists in self._observed.items()
            },
            "verdicts": dict(self._verdicts),
            "checks": self.checks,
            "conflicts_detected": self.conflicts_detected,
            "routes_suppressed": self.routes_suppressed,
        }

    def restore_state(self, state: Dict[str, Any]) -> None:
        self._observed = {
            prefix: set(lists) for prefix, lists in state["observed"].items()
        }
        self._verdicts = dict(state["verdicts"])
        self.checks = state["checks"]
        self.conflicts_detected = state["conflicts_detected"]
        self.routes_suppressed = state["routes_suppressed"]

    # -- the import validator ----------------------------------------------------

    def validate(self, peer: ASN, prefix: Prefix, attributes: PathAttributes) -> bool:
        """Import-validator entry point; False rejects the route."""
        self.checks += 1
        if self._m_checks is not None:
            self._m_checks.inc()
        moas_list = extract_moas_list(attributes)
        origin = attributes.origin_asn

        if moas_list is None:
            # Aggregated route with AS_SET origin and no communities: no
            # origin claim to check.  Accept — the paper's mechanism is
            # per-origin and has nothing to compare here.
            return True

        # Step 2: self-consistency of the announcement itself.
        if origin is not None and not moas_list.authorises(origin):
            self._raise_alarm(
                Alarm(
                    time=self._now(),
                    detector=self.speaker.asn,
                    prefix=prefix,
                    kind=AlarmKind.ORIGIN_NOT_IN_OWN_LIST,
                    observed_list=moas_list,
                    suspect_origin=origin,
                )
            )
            if self.mode is CheckerMode.DETECT_AND_SUPPRESS:
                self._count_suppressed()
                return False
            return True

        # Step 3: compare against every distinct list seen for the prefix.
        # The comparison and the deterministic evidence selection are the
        # shared repro.core.detection predicates — the stream engine applies
        # the identical rule, which is what keeps stream == batch.
        seen = self._observed.get(prefix)
        if seen is None:
            seen = self._observed[prefix] = set()
        conflict, is_new_list = evaluate_list_conflict(seen, moas_list)

        if conflict and is_new_list:
            self.conflicts_detected += 1
            if self._m_conflicts is not None:
                self._m_conflicts.inc()
            conflicting = select_conflicting(seen, moas_list)
            self._raise_alarm(
                Alarm(
                    time=self._now(),
                    detector=self.speaker.asn,
                    prefix=prefix,
                    kind=AlarmKind.INCONSISTENT_LISTS,
                    observed_list=moas_list,
                    conflicting_list=conflicting,
                    suspect_origin=origin,
                )
            )

        if self.mode is CheckerMode.ALARM_ONLY:
            return True

        # Step 4: adjudicate via the oracle once a conflict exists.
        if conflict or prefix in self._verdicts:
            authorised = self._adjudicate(prefix)
            if authorised is not None and origin is not None:
                if origin not in authorised:
                    self._raise_alarm(
                        Alarm(
                            time=self._now(),
                            detector=self.speaker.asn,
                            prefix=prefix,
                            kind=AlarmKind.UNAUTHORISED_ORIGIN,
                            observed_list=moas_list,
                            suspect_origin=origin,
                        )
                    )
                    self._count_suppressed()
                    return False
        return True

    def _adjudicate(self, prefix: Prefix) -> Optional[frozenset]:
        """Oracle lookup with caching; sweeps stale accepted routes once."""
        if prefix in self._verdicts:
            return self._verdicts[prefix]
        if self.oracle is None:
            raise InvariantError(
                "DETECT_AND_SUPPRESS checker reached adjudication without "
                "an origin oracle"
            )
        authorised = self.oracle.authorised_origins(prefix)
        self._verdicts[prefix] = authorised
        if authorised is not None:
            self._sweep_unauthorised(prefix, authorised)
        return authorised

    def _sweep_unauthorised(self, prefix: Prefix, authorised: frozenset) -> None:
        """Retroactively invalidate accepted routes from unauthorised
        origins — the bogus route may have arrived before the valid one."""
        stale = [
            entry
            for entry in self.speaker.adj_rib_in.routes_for_prefix(prefix)
            if entry.origin_asn is not None and entry.origin_asn not in authorised
        ]
        for entry in stale:
            if entry.peer is None:
                raise InvariantError(
                    f"locally originated route for {prefix} flagged as an "
                    "unauthorised Adj-RIB-In entry"
                )
            self._raise_alarm(
                Alarm(
                    time=self._now(),
                    detector=self.speaker.asn,
                    prefix=prefix,
                    kind=AlarmKind.UNAUTHORISED_ORIGIN,
                    suspect_origin=entry.origin_asn,
                )
            )
            self._count_suppressed()
            self.speaker.invalidate_route(entry.peer, prefix)
