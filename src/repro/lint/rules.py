"""The AST checker behind repro-lint.

One :class:`_FileChecker` pass per file implements rules R001-R007 (see
:data:`RULES`).  The checker is deliberately repo-specific: it knows the
project's seeded-stream discipline, which callables fan work out to the
process pool, and which modules hold the immutable value classes that cross
it.  It is *not* a general-purpose linter — precision over recall, so that
``src/repro`` staying clean is a meaningful guarantee rather than a
suppression festival.
"""

from __future__ import annotations

import ast
import fnmatch
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

#: Rule id -> one-line description (the catalogue printed by --list-rules).
RULES: Dict[str, str] = {
    "R001": "unseeded randomness: module-level random.* call, random.seed, "
    "or numpy.random use (seed an explicit random.Random instead)",
    "R002": "nondeterministic source: wall clock, os.urandom, uuid1/uuid4 "
    "or secrets in simulation code",
    "R003": "order-sensitive iteration over a bare set/frozenset without "
    "sorted(...)",
    "R004": "hash()/id() used inside a sort key (salted / address-based "
    "values are not stable orderings)",
    "R005": "pickle-unsafe object may cross the process pool (lambda given "
    "to the executor, or immutable __slots__ class without __reduce__/"
    "__getstate__)",
    "R006": "time.sleep in library code (blocks on the real clock; take an "
    "injectable sleeper/clock the way repro.stream.service does)",
    "R007": "copy.deepcopy in library code (walks the object graph "
    "generically and aliases shared immutables unpredictably; implement the "
    "explicit snapshot_state/restore_state protocol the way repro.warmstart "
    "does)",
    "R008": "bare PathAttributes(...)/AsPath(...) construction in a BGP "
    "hot-path module bypasses the route intern table; wrap the call in "
    "interner.attributes(...)/interner.as_path(...) so equal routes share "
    "one object",
    "R009": "cross-shard ordering hazard in a sharded module: id() (a "
    "process-local address, meaningless across shard boundaries), a direct "
    "call into a speaker delivery handler (cross-shard traffic must ride "
    "the mailbox: BoundaryLink.send -> enqueue_inbound/schedule_remote), or "
    "unordered set consumption inside a mailbox merge/drain path (even "
    "reductions must see a sorted sequence — float sums are "
    "order-dependent)",
    "R100": "nondeterminism taint: a value originating from a wall clock, "
    "unseeded randomness, os.urandom, uuid, id()/hash() or unordered set "
    "access flows (possibly through calls) into a determinism-critical "
    "sink: event scheduling, alarm evidence, checkpoint/manifest payloads "
    "or snapshot_state output",
    "R101": "snapshot completeness: a class implementing snapshot_state/"
    "restore_state has an instance attribute that is neither captured, "
    "restored, nor explicitly waived in _SNAPSHOT_WAIVED — adding a field "
    "must never silently break warm-start or checkpoint resume",
    "R102": "checker/engine rule parity: a detection constant, threshold "
    "default or rule predicate is defined in more than one detection "
    "module (or re-defined beside the repro.core.detection registry) with "
    "a diverging — or shadowing — value; import it from the registry",
}

#: ``random`` module functions that draw from the implicit global state.
_RANDOM_GLOBAL_FUNCS: FrozenSet[str] = frozenset(
    {
        "betavariate",
        "choice",
        "choices",
        "expovariate",
        "gammavariate",
        "gauss",
        "getrandbits",
        "lognormvariate",
        "normalvariate",
        "paretovariate",
        "randbytes",
        "randint",
        "random",
        "randrange",
        "sample",
        "seed",
        "shuffle",
        "triangular",
        "uniform",
        "vonmisesvariate",
        "weibullvariate",
    }
)

#: ``time`` module functions that read real clocks.
_TIME_FUNCS: FrozenSet[str] = frozenset(
    {
        "time",
        "time_ns",
        "monotonic",
        "monotonic_ns",
        "perf_counter",
        "perf_counter_ns",
        "process_time",
        "process_time_ns",
    }
)

_OS_FUNCS: FrozenSet[str] = frozenset({"urandom", "getrandom"})
_UUID_FUNCS: FrozenSet[str] = frozenset({"uuid1", "uuid4"})
_DATETIME_FUNCS: FrozenSet[str] = frozenset({"now", "utcnow", "today"})

#: Reducers whose result does not depend on iteration order, so a generator
#: expression over a set fed straight into them is deterministic.
_ORDER_INSENSITIVE_CONSUMERS: FrozenSet[str] = frozenset(
    {"any", "all", "sum", "min", "max", "len", "sorted", "set", "frozenset"}
)

#: Names treated as set-typed in annotations.
_SET_ANNOTATIONS: FrozenSet[str] = frozenset(
    {"set", "frozenset", "Set", "FrozenSet", "AbstractSet", "MutableSet"}
)

#: Set methods returning another set.
_SET_RETURNING_METHODS: FrozenSet[str] = frozenset(
    {"union", "intersection", "difference", "symmetric_difference", "copy"}
)

#: Dunder names any of which count as explicit pickle support (R005).
_PICKLE_SUPPORT: FrozenSet[str] = frozenset(
    {
        "__reduce__",
        "__reduce_ex__",
        "__getstate__",
        "__getnewargs__",
        "__getnewargs_ex__",
    }
)

#: Classes whose bare construction R008 flags in hot-path modules.
_INTERNABLE_CLASSES: FrozenSet[str] = frozenset({"PathAttributes", "AsPath"})

#: Interner methods whose direct argument may be a bare construction —
#: ``interner.attributes(PathAttributes(...))`` is the blessed idiom.
_INTERNER_METHODS: FrozenSet[str] = frozenset({"attributes", "as_path"})

#: Speaker entry points R009 forbids calling directly from sharded modules:
#: delivering an UPDATE by hand skips the order keys the mailbox assigns.
_DIRECT_DELIVERY_METHODS: FrozenSet[str] = frozenset(
    {"handle_update", "handle_wire"}
)

#: Function names that constitute a mailbox merge/drain path (R009): where
#: per-shard streams are combined, every input must arrive in key order.
_MERGE_PATH_RE = re.compile(
    r"merge|drain|mail|inbound|deliver|absorb", re.IGNORECASE
)

_SUPPRESS_RE = re.compile(r"#\s*repro-lint:\s*disable=([A-Za-z0-9_,\s]+)")


@dataclass(frozen=True, order=True)
class Violation:
    """One rule violation at one source location."""

    path: str
    line: int
    col: int
    rule: str
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"


@dataclass(frozen=True)
class LintConfig:
    """What to check.

    ``select`` limits the enabled rules (default: all).  ``spec_modules``
    are fnmatch patterns (matched against the path with ``/`` separators)
    naming modules whose classes cross the PR-1 process pool and therefore
    get the R005 class-level pickle check; the R005 lambda check and rules
    R001-R004 apply everywhere.  ``pool_functions`` are callables that fan
    their function argument out to worker processes.
    """

    select: FrozenSet[str] = frozenset(RULES)
    spec_modules: Tuple[str, ...] = (
        "*/net/addresses.py",
        "*/net/asn.py",
        "*/bgp/attributes.py",
        "*/core/moas_list.py",
        "*/attack/models.py",
        "*/topology/asgraph.py",
        "*/experiments/runner.py",
        "*/experiments/sweep.py",
    )
    pool_functions: Tuple[str, ...] = ("parallel_map", "execute_scenarios")
    #: Modules on the per-event hot path, where every route object must
    #: come out of the intern table (R008).  ``attributes.py`` (defines
    #: the classes), ``interning.py`` (is the table) and batch utilities
    #: like aggregation are deliberately not listed.
    hot_path_modules: Tuple[str, ...] = (
        "*/bgp/speaker.py",
        "*/bgp/session.py",
        "*/bgp/rib.py",
        "*/bgp/network.py",
        "*/bgp/messages.py",
    )
    #: Modules implementing the sharded simulator, where bit-identity with
    #: the serial engine rests on explicit order keys (R009): no id(), no
    #: hand-delivered UPDATEs, no unordered set consumption in merge paths.
    sharded_modules: Tuple[str, ...] = (
        "*/eventsim/sharded.py",
        "*/bgp/shardnet.py",
        "*/experiments/sharded_run.py",
    )
    #: Methods whose arguments are determinism-critical sinks for R100:
    #: event scheduling keys, alarm evidence, checkpoint payloads, and the
    #: query index's durable segment/manifest documents.
    taint_sink_methods: Tuple[str, ...] = (
        "schedule_at",
        "schedule_after",
        "raise_alarm",
        "record_alarm",
        "_record_alarm",
        "write_checkpoint",
        "save_checkpoint",
        "assemble_segment",
        "write_segment",
        "write_manifest",
    )
    #: Constructors whose arguments become durable evidence/payloads (R100).
    taint_sink_constructors: Tuple[str, ...] = (
        "Alarm",
        "StreamAlarm",
        "Event",
        "Checkpoint",
        "ManifestRecord",
    )
    #: Class attribute declaring snapshot-protocol waivers (R101).
    snapshot_waiver_name: str = "_SNAPSHOT_WAIVED"
    #: Module groups whose detection constants / thresholds / predicates
    #: must agree (R102) — the batch checker and its streaming mirror.
    parity_groups: Tuple[Tuple[str, ...], ...] = (
        ("*/core/checker.py", "*/stream/engine.py"),
    )
    #: The shared-constant registry modules R102 protects from shadowing.
    parity_registry_modules: Tuple[str, ...] = ("*/core/detection.py",)

    def enabled(self, rule: str) -> bool:
        return rule in self.select

    def is_spec_module(self, path: str) -> bool:
        normalised = path.replace("\\", "/")
        return any(fnmatch.fnmatch(normalised, pat) for pat in self.spec_modules)

    def is_hot_path_module(self, path: str) -> bool:
        normalised = path.replace("\\", "/")
        return any(
            fnmatch.fnmatch(normalised, pat) for pat in self.hot_path_modules
        )

    def is_sharded_module(self, path: str) -> bool:
        normalised = path.replace("\\", "/")
        return any(
            fnmatch.fnmatch(normalised, pat) for pat in self.sharded_modules
        )


def _parse_suppressions(source: str) -> Dict[int, FrozenSet[str]]:
    """Map line number -> rule ids suppressed on that line."""
    suppressions: Dict[int, FrozenSet[str]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _SUPPRESS_RE.search(line)
        if match is None:
            continue
        rules = frozenset(
            part.strip().upper()
            for part in match.group(1).split(",")
            if part.strip()
        )
        suppressions[lineno] = rules
    return suppressions


def _dotted(node: ast.AST) -> Optional[str]:
    """``a.b.c`` as a string for Name/Attribute chains, else None."""
    parts: List[str] = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if not isinstance(current, ast.Name):
        return None
    parts.append(current.id)
    return ".".join(reversed(parts))


@dataclass
class _Scope:
    """One lexical scope's statically inferred set-typed names."""

    set_names: Set[str] = field(default_factory=set)


class _FileChecker(ast.NodeVisitor):
    """Single-pass AST visitor accumulating violations for one file."""

    def __init__(self, path: str, source: str, config: LintConfig) -> None:
        self.path = path
        self.config = config
        self.suppressions = _parse_suppressions(source)
        self.violations: List[Violation] = []
        # Aliases under which nondeterminism-bearing modules are imported.
        self._random_aliases: Set[str] = set()
        self._numpy_aliases: Set[str] = set()
        self._time_aliases: Set[str] = set()
        self._os_aliases: Set[str] = set()
        self._uuid_aliases: Set[str] = set()
        self._secrets_aliases: Set[str] = set()
        self._datetime_module_aliases: Set[str] = set()
        self._copy_aliases: Set[str] = set()
        # Names bound by ``from copy import deepcopy`` (R007 on call sites).
        self._deepcopy_names: Set[str] = set()
        # Names bound by ``from datetime import datetime/date``.
        self._datetime_class_names: Set[str] = set()
        # Names of bad functions imported directly (``from time import time``),
        # mapped to (dotted name, rule id) since time.sleep reports as R006
        # while the clock reads report as R002.
        self._direct_bad_calls: Dict[str, Tuple[str, str]] = {}
        self._scopes: List[_Scope] = [_Scope()]
        # Generator expressions already cleared as order-insensitive sinks.
        self._exempt_generators: Set[int] = set()
        # Constructor calls cleared because they feed the interner (R008).
        self._interned_constructions: Set[int] = set()
        self._hot_path = config.is_hot_path_module(path)
        self._sharded = config.is_sharded_module(path)
        # Nesting depth of merge/drain-path functions (R009 set checks).
        self._merge_depth = 0
        self._class_depth = 0

    # -- bookkeeping -------------------------------------------------------

    def _report(self, node: ast.AST, rule: str, message: str) -> None:
        if not self.config.enabled(rule):
            return
        lineno = getattr(node, "lineno", 0)
        col = getattr(node, "col_offset", 0)
        suppressed = self.suppressions.get(lineno, frozenset())
        if rule in suppressed or "ALL" in suppressed:
            return
        self.violations.append(
            Violation(path=self.path, line=lineno, col=col, rule=rule, message=message)
        )

    @property
    def _scope(self) -> _Scope:
        return self._scopes[-1]

    def _is_set_name(self, name: str) -> bool:
        return any(name in scope.set_names for scope in reversed(self._scopes))

    # -- set-typed inference (R003) ----------------------------------------

    def _is_set_annotation(self, node: ast.expr) -> bool:
        if isinstance(node, ast.Subscript):
            return self._is_set_annotation(node.value)
        if isinstance(node, ast.Name):
            return node.id in _SET_ANNOTATIONS
        if isinstance(node, ast.Attribute):
            return node.attr in _SET_ANNOTATIONS
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            try:
                parsed = ast.parse(node.value, mode="eval")
            except SyntaxError:
                return False
            return self._is_set_annotation(parsed.body)
        return False

    def _is_set_expr(self, node: ast.expr) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Name):
            return self._is_set_name(node.id)
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name) and func.id in {"set", "frozenset"}:
                return True
            if (
                isinstance(func, ast.Attribute)
                and func.attr in _SET_RETURNING_METHODS
                and self._is_set_expr(func.value)
            ):
                return True
            if (
                isinstance(func, ast.Attribute)
                and func.attr == "setdefault"
                and len(node.args) == 2
                and self._is_set_expr(node.args[1])
            ):
                # dict.setdefault(key, set()) hands back the set.
                return True
            return False
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.BitXor, ast.Sub)
        ):
            return self._is_set_expr(node.left) or self._is_set_expr(node.right)
        if isinstance(node, ast.IfExp):
            return self._is_set_expr(node.body) and self._is_set_expr(node.orelse)
        return False

    def _bind_target(self, target: ast.expr, is_set: bool) -> None:
        if isinstance(target, ast.Name):
            if is_set:
                self._scope.set_names.add(target.id)
            else:
                self._scope.set_names.discard(target.id)

    # -- imports (R001 / R002 alias tracking) ------------------------------

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            bound = alias.asname or alias.name.split(".", 1)[0]
            if alias.name == "random":
                self._random_aliases.add(bound)
            elif alias.name in {"numpy", "numpy.random"}:
                self._numpy_aliases.add(bound)
                if alias.name == "numpy.random":
                    self._report(
                        node, "R001", "import of numpy.random (unseeded global state)"
                    )
            elif alias.name == "time":
                self._time_aliases.add(bound)
            elif alias.name == "os":
                self._os_aliases.add(bound)
            elif alias.name == "uuid":
                self._uuid_aliases.add(bound)
            elif alias.name == "secrets":
                self._secrets_aliases.add(bound)
                self._report(node, "R002", "import of secrets (nondeterministic)")
            elif alias.name == "datetime":
                self._datetime_module_aliases.add(bound)
            elif alias.name == "copy":
                self._copy_aliases.add(bound)
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        module = node.module or ""
        for alias in node.names:
            bound = alias.asname or alias.name
            if module == "random" and alias.name in _RANDOM_GLOBAL_FUNCS:
                self._report(
                    node,
                    "R001",
                    f"from random import {alias.name} draws from the unseeded "
                    "global generator",
                )
            elif module == "numpy" and alias.name == "random":
                self._report(
                    node, "R001", "from numpy import random (unseeded global state)"
                )
            elif module.startswith("numpy.random"):
                self._report(
                    node, "R001", "import from numpy.random (unseeded global state)"
                )
            elif module == "time" and alias.name in _TIME_FUNCS:
                self._direct_bad_calls[bound] = (f"time.{alias.name}", "R002")
            elif module == "time" and alias.name == "sleep":
                self._direct_bad_calls[bound] = ("time.sleep", "R006")
            elif module == "os" and alias.name in _OS_FUNCS:
                self._direct_bad_calls[bound] = (f"os.{alias.name}", "R002")
            elif module == "uuid" and alias.name in _UUID_FUNCS:
                self._direct_bad_calls[bound] = (f"uuid.{alias.name}", "R002")
            elif module == "secrets":
                self._report(node, "R002", "import from secrets (nondeterministic)")
            elif module == "datetime" and alias.name in {"datetime", "date"}:
                self._datetime_class_names.add(bound)
            elif module == "copy" and alias.name == "deepcopy":
                self._deepcopy_names.add(bound)
                self._report(
                    node,
                    "R007",
                    "from copy import deepcopy; state capture must go through "
                    "the explicit snapshot_state/restore_state protocol",
                )
        self.generic_visit(node)

    # -- scopes ------------------------------------------------------------

    def _visit_function(self, node: ast.AST, args: ast.arguments) -> None:
        self._scopes.append(_Scope())
        all_args = list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
        for arg in all_args:
            if arg.annotation is not None and self._is_set_annotation(arg.annotation):
                self._scope.set_names.add(arg.arg)
        self.generic_visit(node)
        self._scopes.pop()

    def _visit_named_function(
        self, node: "ast.FunctionDef | ast.AsyncFunctionDef", name: str
    ) -> None:
        merge_path = self._sharded and bool(_MERGE_PATH_RE.search(name))
        if merge_path:
            self._merge_depth += 1
        self._visit_function(node, node.args)
        if merge_path:
            self._merge_depth -= 1

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_named_function(node, node.name)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_named_function(node, node.name)

    def visit_Lambda(self, node: ast.Lambda) -> None:
        self._visit_function(node, node.args)

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        if self._class_depth == 0 and self.config.is_spec_module(self.path):
            self._check_class_pickle_safety(node)
        self._class_depth += 1
        self._scopes.append(_Scope())
        self.generic_visit(node)
        self._scopes.pop()
        self._class_depth -= 1

    # -- assignments (R003 inference) --------------------------------------

    def visit_Assign(self, node: ast.Assign) -> None:
        is_set = self._is_set_expr(node.value)
        for target in node.targets:
            self._bind_target(target, is_set)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        is_set = self._is_set_annotation(node.annotation) or (
            node.value is not None and self._is_set_expr(node.value)
        )
        self._bind_target(node.target, is_set)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        # ``s |= other`` keeps a set a set; anything else leaves it alone.
        self.generic_visit(node)

    # -- iteration sites (R003) --------------------------------------------

    def _check_iteration(self, iter_node: ast.expr, context: str) -> None:
        if self._is_set_expr(iter_node):
            self._report(
                iter_node,
                "R003",
                f"{context} iterates a set in nondeterministic order; wrap it "
                "in sorted(...)",
            )

    def visit_For(self, node: ast.For) -> None:
        self._check_iteration(node.iter, "for loop")
        # The loop variable is whatever the set held, not a set.
        self._bind_target(node.target, False)
        self.generic_visit(node)

    def _check_comprehension(
        self, node: ast.expr, generators: Sequence[ast.comprehension], label: str
    ) -> None:
        if id(node) in self._exempt_generators:
            return
        for gen in generators:
            self._check_iteration(gen.iter, label)

    def visit_ListComp(self, node: ast.ListComp) -> None:
        self._check_comprehension(node, node.generators, "list comprehension")
        self.generic_visit(node)

    def visit_DictComp(self, node: ast.DictComp) -> None:
        self._check_comprehension(node, node.generators, "dict comprehension")
        self.generic_visit(node)

    def visit_GeneratorExp(self, node: ast.GeneratorExp) -> None:
        self._check_comprehension(node, node.generators, "generator expression")
        self.generic_visit(node)

    def visit_SetComp(self, node: ast.SetComp) -> None:
        # A set built from a set is order-insensitive by construction.
        self.generic_visit(node)

    # -- calls (R001 / R002 / R003 / R004 / R005) ---------------------------

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func

        # Order-insensitive reducers make their generator argument exempt
        # from R003 (``any(x in s for x in other_set)`` is deterministic).
        # In a sharded merge path the exemption does not apply: even
        # reductions must consume a sorted sequence (R009), because float
        # accumulation is order-dependent and reproducibility across shard
        # counts is the whole contract.
        if isinstance(func, ast.Name) and func.id in _ORDER_INSENSITIVE_CONSUMERS:
            for arg in node.args:
                if isinstance(arg, ast.GeneratorExp):
                    self._exempt_generators.add(id(arg))
                    if self._sharded and self._merge_depth > 0:
                        for gen in arg.generators:
                            if self._is_set_expr(gen.iter):
                                self._report(
                                    gen.iter,
                                    "R009",
                                    f"{func.id}() over a set inside a mailbox "
                                    "merge path; sort the input — reduction "
                                    "order must match the serial engine "
                                    "bit-for-bit",
                                )

        # R009: ordering hazards that only exist across shard boundaries.
        if self._sharded:
            if (
                isinstance(func, ast.Name)
                and func.id == "id"
                and len(node.args) == 1
            ):
                self._report(
                    node,
                    "R009",
                    "id() is a process-local address; shards must order and "
                    "deduplicate by explicit keys, never by address",
                )
            if (
                isinstance(func, ast.Attribute)
                and func.attr in _DIRECT_DELIVERY_METHODS
            ):
                self._report(
                    node,
                    "R009",
                    f"direct call to {func.attr}() hand-delivers an UPDATE "
                    "outside the mailbox; cross-shard traffic must go "
                    "through BoundaryLink.send / enqueue_inbound so it "
                    "carries an order key",
                )
            if (
                self._merge_depth > 0
                and isinstance(func, ast.Attribute)
                and func.attr == "pop"
                and not node.args
                and self._is_set_expr(func.value)
            ):
                self._report(
                    node,
                    "R009",
                    "set.pop() removes an arbitrary element inside a "
                    "mailbox merge path; pop from a sorted sequence instead",
                )

        # R003: materialising a set into an ordered container.
        if (
            isinstance(func, ast.Name)
            and func.id in {"list", "tuple"}
            and len(node.args) == 1
            and self._is_set_expr(node.args[0])
        ):
            self._report(
                node,
                "R003",
                f"{func.id}() over a set materialises a nondeterministic "
                "order; use sorted(...)",
            )

        dotted = _dotted(func)
        if dotted is not None:
            self._check_nondeterministic_call(node, dotted)

        # R004: hash()/id() inside sort keys.
        self._check_sort_key(node)

        # R005: lambdas handed to the pool.
        if isinstance(func, ast.Name) and func.id in self.config.pool_functions:
            for arg in node.args:
                if isinstance(arg, ast.Lambda):
                    self._report(
                        arg,
                        "R005",
                        f"lambda passed to {func.id}() cannot be pickled "
                        "across the process pool; use a module-level function",
                    )

        # R008: route objects built on the hot path must come out of the
        # intern table.  A construction that is the *direct* argument of an
        # interner method is the blessed idiom
        # (``interner.attributes(PathAttributes(...))``); mark those before
        # descending into the argument.
        if isinstance(func, ast.Attribute) and func.attr in _INTERNER_METHODS:
            for arg in list(node.args) + [kw.value for kw in node.keywords]:
                if isinstance(arg, ast.Call):
                    self._interned_constructions.add(id(arg))
        if self._hot_path:
            ctor: Optional[str] = None
            if isinstance(func, ast.Name) and func.id in _INTERNABLE_CLASSES:
                ctor = func.id
            elif (
                isinstance(func, ast.Attribute)
                and func.attr in _INTERNABLE_CLASSES
            ):
                ctor = func.attr
            if ctor is not None and id(node) not in self._interned_constructions:
                method = (
                    "attributes" if ctor == "PathAttributes" else "as_path"
                )
                self._report(
                    node,
                    "R008",
                    f"bare {ctor}(...) on the BGP hot path bypasses the "
                    f"route intern table; wrap it as "
                    f"interner.{method}({ctor}(...)) so equal routes share "
                    "one object",
                )

        self.generic_visit(node)

    def _check_nondeterministic_call(self, node: ast.Call, dotted: str) -> None:
        head, _, rest = dotted.partition(".")

        if head in self._deepcopy_names and not rest:
            self._report(
                node,
                "R007",
                "deepcopy() walks the object graph generically; implement "
                "snapshot_state/restore_state (see repro.warmstart) instead",
            )
            return

        if head in self._copy_aliases and rest == "deepcopy":
            self._report(
                node,
                "R007",
                "copy.deepcopy() walks the object graph generically; "
                "implement snapshot_state/restore_state (see repro.warmstart) "
                "instead",
            )
            return

        if head in self._direct_bad_calls and not rest:
            dotted_name, rule = self._direct_bad_calls[head]
            if rule == "R006":
                self._report(
                    node,
                    "R006",
                    "call to time.sleep blocks on the real clock; library "
                    "code must take an injectable sleeper",
                )
            else:
                self._report(
                    node,
                    rule,
                    f"call to {dotted_name} (nondeterministic source) in "
                    "simulation code",
                )
            return

        if head in self._random_aliases and rest:
            attr = rest.split(".", 1)[0]
            if attr == "seed":
                self._report(
                    node, "R001", "random.seed mutates shared global state; "
                    "construct a seeded random.Random instead"
                )
            elif attr in _RANDOM_GLOBAL_FUNCS:
                self._report(
                    node,
                    "R001",
                    f"random.{attr}() draws from the unseeded global "
                    "generator; use an explicit random.Random or an "
                    "eventsim.rng stream",
                )
            elif attr == "SystemRandom":
                self._report(
                    node, "R001", "random.SystemRandom is inherently nondeterministic"
                )
            return

        if head in self._numpy_aliases and rest.startswith("random"):
            self._report(
                node,
                "R001",
                "numpy.random use; draw through a seeded generator passed in "
                "explicitly",
            )
            return

        if head in self._time_aliases and rest in _TIME_FUNCS:
            self._report(
                node,
                "R002",
                f"time.{rest}() reads a real clock; simulation code must use "
                "simulator virtual time",
            )
            return

        if head in self._time_aliases and rest == "sleep":
            self._report(
                node,
                "R006",
                "time.sleep() blocks on the real clock; library code must "
                "take an injectable sleeper (see repro.stream.service)",
            )
            return

        if head in self._os_aliases and rest in _OS_FUNCS:
            self._report(node, "R002", f"os.{rest}() is a nondeterministic source")
            return

        if head in self._uuid_aliases and rest in _UUID_FUNCS:
            self._report(
                node, "R002", f"uuid.{rest}() is time/host dependent; derive ids "
                "from seeded streams"
            )
            return

        if head in self._secrets_aliases and rest:
            self._report(node, "R002", "secrets.* is inherently nondeterministic")
            return

        parts = dotted.split(".")
        if len(parts) >= 2 and parts[-1] in _DATETIME_FUNCS:
            base = parts[-2]
            root = parts[0]
            if base in {"datetime", "date"} and (
                root in self._datetime_module_aliases
                or parts[0] in self._datetime_class_names
            ):
                self._report(
                    node,
                    "R002",
                    f"{base}.{parts[-1]}() reads the wall clock; simulation "
                    "code must use simulator virtual time",
                )

    def _check_sort_key(self, node: ast.Call) -> None:
        func = node.func
        is_sorting = (
            isinstance(func, ast.Name) and func.id in {"sorted", "min", "max"}
        ) or (isinstance(func, ast.Attribute) and func.attr == "sort")
        if not is_sorting:
            return
        for keyword in node.keywords:
            if keyword.arg != "key":
                continue
            value = keyword.value
            if isinstance(value, ast.Name) and value.id in {"hash", "id"}:
                self._report(
                    value,
                    "R004",
                    f"key={value.id} orders by a salted/address-based value",
                )
            elif isinstance(value, ast.Lambda):
                for inner in ast.walk(value.body):
                    if (
                        isinstance(inner, ast.Call)
                        and isinstance(inner.func, ast.Name)
                        and inner.func.id in {"hash", "id"}
                    ):
                        self._report(
                            inner,
                            "R004",
                            f"{inner.func.id}() inside a sort key is not a "
                            "stable ordering",
                        )

    # -- R005 class check ---------------------------------------------------

    def _check_class_pickle_safety(self, node: ast.ClassDef) -> None:
        if not self.config.enabled("R005"):
            return
        has_slots = False
        blocking_setattr = False
        has_pickle_support = False
        is_dataclass = any(
            (isinstance(dec, ast.Name) and dec.id == "dataclass")
            or (isinstance(dec, ast.Attribute) and dec.attr == "dataclass")
            or (
                isinstance(dec, ast.Call)
                and (
                    (isinstance(dec.func, ast.Name) and dec.func.id == "dataclass")
                    or (
                        isinstance(dec.func, ast.Attribute)
                        and dec.func.attr == "dataclass"
                    )
                )
            )
            for dec in node.decorator_list
        )
        for stmt in node.body:
            if isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    if isinstance(target, ast.Name) and target.id == "__slots__":
                        has_slots = True
            elif isinstance(stmt, ast.AnnAssign):
                if (
                    isinstance(stmt.target, ast.Name)
                    and stmt.target.id == "__slots__"
                ):
                    has_slots = True
            elif isinstance(stmt, ast.FunctionDef):
                if stmt.name in _PICKLE_SUPPORT:
                    has_pickle_support = True
                elif stmt.name == "__setattr__":
                    blocking_setattr = any(
                        isinstance(inner, ast.Raise) for inner in ast.walk(stmt)
                    )
        if is_dataclass:
            return
        if has_slots and blocking_setattr and not has_pickle_support:
            self._report(
                node,
                "R005",
                f"class {node.name} blocks __setattr__ with __slots__ but "
                "defines no __reduce__/__getstate__; instances cannot cross "
                "the process pool",
            )


def check_file_rules(
    source: str, path: str, config: LintConfig
) -> List[Violation]:
    """Run only the per-file rules (R001–R008) over already-parsed source.

    The project-level entry points (``lint_source``/``lint_file``/
    ``lint_paths``) now live in :mod:`repro.lint.driver`, which layers the
    whole-program analyses (R100–R102) on top of this pass.
    """
    tree = ast.parse(source, filename=path)
    checker = _FileChecker(path, source, config)
    checker.visit(tree)
    return sorted(checker.violations)


def iter_python_files(paths: Iterable[Path]) -> List[Path]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    out: Set[Path] = set()
    for path in paths:
        if path.is_dir():
            out.update(path.rglob("*.py"))
        else:
            out.add(path)
    return sorted(out)
