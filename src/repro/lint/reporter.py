"""Violation reporters: human-readable text and machine-readable JSON."""

from __future__ import annotations

import json
from typing import Dict, List, Sequence, Union

from repro.lint.rules import RULES, Violation


def format_text(violations: Sequence[Violation]) -> str:
    """One ``path:line:col: RULE message`` line per violation + a summary."""
    lines = [v.format() for v in violations]
    if violations:
        by_rule: Dict[str, int] = {}
        for violation in violations:
            by_rule[violation.rule] = by_rule.get(violation.rule, 0) + 1
        breakdown = ", ".join(
            f"{rule}={count}" for rule, count in sorted(by_rule.items())
        )
        lines.append(f"found {len(violations)} violation(s): {breakdown}")
    else:
        lines.append("clean: no violations")
    return "\n".join(lines)


def format_json(violations: Sequence[Violation]) -> str:
    """A JSON document with the violation list and a per-rule summary."""
    by_rule: Dict[str, int] = {}
    for violation in violations:
        by_rule[violation.rule] = by_rule.get(violation.rule, 0) + 1
    payload: Dict[str, Union[int, Dict[str, int], List[Dict[str, object]]]] = {
        "violations": [
            {
                "path": v.path,
                "line": v.line,
                "col": v.col,
                "rule": v.rule,
                "message": v.message,
            }
            for v in violations
        ],
        "count": len(violations),
        "by_rule": by_rule,
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def format_rule_catalogue() -> str:
    """The ``--list-rules`` output."""
    return "\n".join(f"{rule}  {text}" for rule, text in sorted(RULES.items()))
