"""Violation reporters: human text, machine JSON, and SARIF 2.1.0."""

from __future__ import annotations

import json
from typing import Dict, List, Sequence, Union

from repro.lint.rules import RULES, Violation

#: SARIF schema pin; GitHub code scanning consumes exactly this version.
_SARIF_VERSION = "2.1.0"
_SARIF_SCHEMA = "https://json.schemastore.org/sarif-2.1.0.json"


def format_text(violations: Sequence[Violation]) -> str:
    """One ``path:line:col: RULE message`` line per violation + a summary."""
    lines = [v.format() for v in violations]
    if violations:
        by_rule: Dict[str, int] = {}
        for violation in violations:
            by_rule[violation.rule] = by_rule.get(violation.rule, 0) + 1
        breakdown = ", ".join(
            f"{rule}={count}" for rule, count in sorted(by_rule.items())
        )
        lines.append(f"found {len(violations)} violation(s): {breakdown}")
    else:
        lines.append("clean: no violations")
    return "\n".join(lines)


def format_json(violations: Sequence[Violation]) -> str:
    """A JSON document with the violation list and a per-rule summary."""
    by_rule: Dict[str, int] = {}
    for violation in violations:
        by_rule[violation.rule] = by_rule.get(violation.rule, 0) + 1
    payload: Dict[str, Union[int, Dict[str, int], List[Dict[str, object]]]] = {
        "violations": [
            {
                "path": v.path,
                "line": v.line,
                "col": v.col,
                "rule": v.rule,
                "message": v.message,
            }
            for v in violations
        ],
        "count": len(violations),
        "by_rule": by_rule,
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def format_sarif(violations: Sequence[Violation]) -> str:
    """A SARIF 2.1.0 log, suitable for GitHub code-scanning upload.

    ``E999``/``E902`` pseudo-violations ride along as results of severity
    ``error``; the regular rules report at ``warning`` so code scanning
    annotates without blocking.
    """
    rule_ids = sorted({v.rule for v in violations} | set(RULES))
    rules = [
        {
            "id": rule_id,
            "name": rule_id,
            "shortDescription": {
                "text": RULES.get(rule_id, "file-level analysis error")
            },
            "helpUri": "https://example.invalid/repro/docs/static-analysis.md",
        }
        for rule_id in rule_ids
    ]
    rule_index = {rule_id: i for i, rule_id in enumerate(rule_ids)}
    results = [
        {
            "ruleId": v.rule,
            "ruleIndex": rule_index[v.rule],
            "level": "error" if v.rule.startswith("E") else "warning",
            "message": {"text": v.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": v.path.replace("\\", "/"),
                            "uriBaseId": "SRCROOT",
                        },
                        "region": {
                            "startLine": max(v.line, 1),
                            "startColumn": v.col + 1,
                        },
                    }
                }
            ],
        }
        for v in violations
    ]
    log = {
        "$schema": _SARIF_SCHEMA,
        "version": _SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-lint",
                        "informationUri": (
                            "https://example.invalid/repro/docs/static-analysis.md"
                        ),
                        "rules": rules,
                    }
                },
                "originalUriBaseIds": {"SRCROOT": {"uri": "file:///"}},
                "results": results,
            }
        ],
    }
    return json.dumps(log, indent=2, sort_keys=True)


def format_rule_catalogue() -> str:
    """The ``--list-rules`` output."""
    return "\n".join(f"{rule}  {text}" for rule, text in sorted(RULES.items()))
