"""R102: checker/engine rule parity through the shared-constant registry.

Detection logic runs twice in this codebase — once in the batch
:mod:`repro.core.checker` and once in its streaming mirror
:mod:`repro.stream.engine` — and the stream == batch bit-identity guarantee
holds only while both apply exactly the same rules.  The shared pieces
(thresholds, evidence windows, rule predicates) live in the
:mod:`repro.core.detection` registry; R102 statically enforces that they
stay there:

* a **constant** (module-level or UPPER_CASE class-level literal) defined
  in more than one module of a parity group with *diverging* values is a
  violation in every defining module;
* a **watched parameter default** (same parameter name, literal default)
  diverging across a parity group is a violation — a detection threshold
  drifting between ``MoasChecker.__init__`` and ``StreamEngine.__init__``
  is exactly the silent rot this rule exists for;
* a constant **re-defined beside the registry** is a violation even when
  the values currently agree ("duplicates registry constant") — the copy
  is the bug, because nothing keeps it equal tomorrow;
* a parity module defining a **function with a registry predicate's name**
  is a violation: it re-implements a shared rule instead of importing it.

Suppressions (``# repro-lint: disable=R102``) work per definition line.
"""

from __future__ import annotations

import fnmatch
from typing import Dict, List, Mapping, Sequence, Tuple

from repro.lint.index import ConstInfo, ModuleSummary
from repro.lint.rules import LintConfig, Violation


def _matches(path: str, patterns: Sequence[str]) -> bool:
    normalised = path.replace("\\", "/")
    return any(fnmatch.fnmatch(normalised, pattern) for pattern in patterns)


def _suppressed(summary: ModuleSummary, line: int) -> bool:
    rules = summary.suppressions.get(line, frozenset())
    return "R102" in rules or "ALL" in rules


def _module_defaults(summary: ModuleSummary) -> Dict[str, ConstInfo]:
    """Parameter name -> first literal default seen in the module."""
    out: Dict[str, ConstInfo] = {}
    for entries in summary.defaults.values():
        for entry in entries:
            out.setdefault(entry.name, entry)
    return out


def check_parity(
    summaries: Mapping[str, ModuleSummary], config: LintConfig
) -> List[Violation]:
    """Run R102 over the indexed project."""
    if not config.enabled("R102"):
        return []
    violations: List[Violation] = []
    ordered = sorted(summaries.values(), key=lambda s: s.path)

    registries = [
        s for s in ordered if _matches(s.path, config.parity_registry_modules)
    ]

    for group in config.parity_groups:
        members = [s for s in ordered if _matches(s.path, group)]
        if not members:
            continue

        # -- diverging constants across the group -------------------------
        by_name: Dict[str, List[Tuple[ModuleSummary, ConstInfo]]] = {}
        for member in members:
            for name, const in member.constants.items():
                if "." in name:  # class-qualified duplicates of the bare name
                    continue
                by_name.setdefault(name, []).append((member, const))
        for name, defs in sorted(by_name.items()):
            values = {const.value_repr for _, const in defs}
            if len(defs) < 2 or len(values) < 2:
                continue
            detail = ", ".join(
                f"{summary.module}={const.value_repr}" for summary, const in defs
            )
            for summary, const in defs:
                if _suppressed(summary, const.lineno):
                    continue
                violations.append(
                    Violation(
                        path=summary.path,
                        line=const.lineno,
                        col=0,
                        rule="R102",
                        message=(
                            f"detection constant {name!r} diverges across "
                            f"parity modules ({detail}); define it once in "
                            "the shared registry"
                        ),
                    )
                )

        # -- diverging watched parameter defaults -------------------------
        defaults: Dict[str, List[Tuple[ModuleSummary, ConstInfo]]] = {}
        for member in members:
            for name, entry in _module_defaults(member).items():
                defaults.setdefault(name, []).append((member, entry))
        for name, defs in sorted(defaults.items()):
            values = {const.value_repr for _, const in defs}
            if len(defs) < 2 or len(values) < 2:
                continue
            detail = ", ".join(
                f"{summary.module}={const.value_repr}" for summary, const in defs
            )
            for summary, const in defs:
                if _suppressed(summary, const.lineno):
                    continue
                violations.append(
                    Violation(
                        path=summary.path,
                        line=const.lineno,
                        col=0,
                        rule="R102",
                        message=(
                            f"detection parameter default {name!r} diverges "
                            f"across parity modules ({detail}); hoist the "
                            "value into the shared registry"
                        ),
                    )
                )

        # -- registry shadowing / predicate re-implementation --------------
        for registry in registries:
            registry_consts = {
                n: c for n, c in registry.constants.items() if "." not in n
            }
            registry_functions = {
                q for q in registry.functions if "." not in q
            }
            for member in members:
                if member.path == registry.path:
                    continue
                for name, const in sorted(member.constants.items()):
                    if "." in name or name not in registry_consts:
                        continue
                    if _suppressed(member, const.lineno):
                        continue
                    canonical = registry_consts[name]
                    if const.value_repr == canonical.value_repr:
                        message = (
                            f"constant {name!r} duplicates the registry value "
                            f"in {registry.module}; import it instead of "
                            "copying it"
                        )
                    else:
                        message = (
                            f"constant {name!r} shadows the registry value in "
                            f"{registry.module} with a diverging value "
                            f"({const.value_repr} != {canonical.value_repr})"
                        )
                    violations.append(
                        Violation(
                            path=member.path,
                            line=const.lineno,
                            col=0,
                            rule="R102",
                            message=message,
                        )
                    )
                for qualname, info in sorted(member.functions.items()):
                    if "." in qualname or qualname not in registry_functions:
                        continue
                    if _suppressed(member, info.lineno):
                        continue
                    violations.append(
                        Violation(
                            path=member.path,
                            line=info.lineno,
                            col=0,
                            rule="R102",
                            message=(
                                f"function {qualname!r} re-implements the "
                                f"shared rule predicate from "
                                f"{registry.module}; import it instead"
                            ),
                        )
                    )
    return violations
