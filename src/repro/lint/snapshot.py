"""R101: snapshot/restore completeness for the warm-start protocol.

Every class implementing the explicit ``snapshot_state``/``restore_state``
protocol (PR 5's :mod:`repro.warmstart`) makes a promise: a restored object
is indistinguishable from the one that produced the snapshot.  The promise
breaks silently the day someone adds ``self.new_field = ...`` to
``__init__`` and forgets the snapshot methods — warm-start and checkpoint
resume then diverge from cold runs in ways no unit test of the new feature
notices.

R101 closes that hole statically.  For every class that defines either
protocol method it checks, per instance attribute (every ``self.x = ...``
in any method except the protocol methods themselves):

* the attribute is **captured** — ``self.x`` is read somewhere inside
  ``snapshot_state``;
* the attribute is **restored** — ``self.x`` is touched (assigned or
  mutated) somewhere inside ``restore_state``;
* or the attribute is **waived** — listed in the class-level
  ``_SNAPSHOT_WAIVED`` declaration, the explicit, reviewable statement
  that the field is wiring (metric instruments, back-references, memo
  caches rebuilt on demand) rather than run state.

A waiver naming an attribute that does not exist is itself a violation, so
waivers cannot rot; a class with only one of the two protocol methods is a
violation too.  Line suppressions (``# repro-lint: disable=R101``) on the
attribute's first assignment work as everywhere else.

The same attribute model powers :func:`snapshot_coverage`, the
introspection surface the meta-test uses to *prove* every protocol class in
the tree is fully covered.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Tuple

from repro.lint.index import ClassInfo, ModuleSummary
from repro.lint.rules import LintConfig, Violation


@dataclass(frozen=True)
class SnapshotCoverage:
    """Coverage report for one snapshot-protocol class."""

    module: str
    path: str
    name: str
    attrs: Tuple[str, ...]
    captured: Tuple[str, ...]
    restored: Tuple[str, ...]
    waived: Tuple[str, ...]
    missing_capture: Tuple[str, ...]
    missing_restore: Tuple[str, ...]
    stale_waivers: Tuple[str, ...]

    @property
    def complete(self) -> bool:
        return not self.missing_capture and not self.missing_restore


def _coverage_for(
    summary: ModuleSummary, info: ClassInfo
) -> SnapshotCoverage:
    attrs = dict(info.attrs)
    waived = set(info.waived)
    reads = set(info.snapshot_reads)
    touches = set(info.restore_touches)
    missing_capture = tuple(
        sorted(a for a in attrs if a not in waived and a not in reads)
    )
    missing_restore = tuple(
        sorted(a for a in attrs if a not in waived and a not in touches)
    )
    stale = tuple(sorted(w for w in waived if w not in attrs))
    return SnapshotCoverage(
        module=summary.module,
        path=summary.path,
        name=info.name,
        attrs=tuple(sorted(attrs)),
        captured=tuple(sorted(a for a in attrs if a in reads)),
        restored=tuple(sorted(a for a in attrs if a in touches)),
        waived=tuple(sorted(waived & set(attrs))),
        missing_capture=missing_capture,
        missing_restore=missing_restore,
        stale_waivers=stale,
    )


def snapshot_coverage(
    summaries: Mapping[str, ModuleSummary]
) -> Dict[str, SnapshotCoverage]:
    """``module.Class`` -> coverage, for every class defining *both*
    protocol methods.  This is the enumeration the meta-test asserts over."""
    out: Dict[str, SnapshotCoverage] = {}
    for summary in summaries.values():
        for info in summary.classes.values():
            if info.has_snapshot and info.has_restore:
                out[f"{summary.module}.{info.name}"] = _coverage_for(summary, info)
    return dict(sorted(out.items()))


def _suppressed(summary: ModuleSummary, line: int) -> bool:
    rules = summary.suppressions.get(line, frozenset())
    return "R101" in rules or "ALL" in rules


def check_snapshot_completeness(
    summaries: Mapping[str, ModuleSummary], config: LintConfig
) -> List[Violation]:
    """Run R101 over the indexed project."""
    if not config.enabled("R101"):
        return []
    violations: List[Violation] = []
    waiver = config.snapshot_waiver_name
    for summary in summaries.values():
        for info in summary.classes.values():
            if not info.has_snapshot and not info.has_restore:
                continue
            if info.has_snapshot != info.has_restore:
                present, absent = (
                    ("snapshot_state", "restore_state")
                    if info.has_snapshot
                    else ("restore_state", "snapshot_state")
                )
                line = info.snapshot_line or info.restore_line
                if not _suppressed(summary, line):
                    violations.append(
                        Violation(
                            path=summary.path,
                            line=line,
                            col=0,
                            rule="R101",
                            message=(
                                f"class {info.name} defines {present} without "
                                f"{absent}; the snapshot protocol is a pair"
                            ),
                        )
                    )
                continue
            coverage = _coverage_for(summary, info)
            attr_lines = dict(info.attrs)
            for attr in coverage.missing_capture:
                line = attr_lines.get(attr, info.lineno)
                if _suppressed(summary, line):
                    continue
                violations.append(
                    Violation(
                        path=summary.path,
                        line=line,
                        col=0,
                        rule="R101",
                        message=(
                            f"class {info.name}: instance attribute "
                            f"{attr!r} is not captured by snapshot_state; "
                            f"capture it or waive it in {waiver}"
                        ),
                    )
                )
            for attr in coverage.missing_restore:
                line = attr_lines.get(attr, info.lineno)
                if _suppressed(summary, line):
                    continue
                violations.append(
                    Violation(
                        path=summary.path,
                        line=line,
                        col=0,
                        rule="R101",
                        message=(
                            f"class {info.name}: instance attribute "
                            f"{attr!r} is not restored by restore_state; "
                            f"restore it or waive it in {waiver}"
                        ),
                    )
                )
            for stale in coverage.stale_waivers:
                line = info.waiver_line or info.lineno
                if _suppressed(summary, line):
                    continue
                violations.append(
                    Violation(
                        path=summary.path,
                        line=line,
                        col=0,
                        rule="R101",
                        message=(
                            f"class {info.name}: {waiver} waives {stale!r}, "
                            "which is not an instance attribute of the class "
                            "(stale waiver)"
                        ),
                    )
                )
    return violations
