"""Baseline files: adopt new rules on a dirty tree without a flag day.

A baseline is a JSON document mapping *fingerprints* to counts.  A
fingerprint identifies a violation by repo-relative path, rule id and a
short hash of the message — deliberately **not** by line number, so pure
line drift (an unrelated edit above the finding) does not resurface a
baselined violation, while any change to the finding itself (message text,
different attribute name, different provenance) does.

Workflow::

    repro-lint src/repro --write-baseline .repro-lint-baseline.json
    # ... later runs:
    repro-lint src/repro --baseline .repro-lint-baseline.json

Counts matter: a baseline entry with count 2 absorbs at most two matching
violations — introducing a *third* instance of an already-baselined finding
still fails the run.  Fixing findings leaves stale entries behind; refresh
with ``--write-baseline`` once the tree is clean to shrink the file.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Dict, List, Sequence, Tuple

from repro.lint.rules import Violation

_BASELINE_VERSION = 1


def _relpath(path: str) -> str:
    try:
        rel = os.path.relpath(path)
    except ValueError:  # different drive on windows
        rel = path
    return rel.replace("\\", "/")


def fingerprint(violation: Violation) -> str:
    """Stable identity for one violation: ``relpath:rule:msghash``."""
    digest = hashlib.sha256(violation.message.encode("utf-8")).hexdigest()[:12]
    return f"{_relpath(violation.path)}:{violation.rule}:{digest}"


def write_baseline(violations: Sequence[Violation], path: Path) -> None:
    """Serialise the current violation set as the new baseline."""
    entries: Dict[str, int] = {}
    for violation in violations:
        key = fingerprint(violation)
        entries[key] = entries.get(key, 0) + 1
    payload = {"version": _BASELINE_VERSION, "entries": entries}
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n", "utf-8")


def load_baseline(path: Path) -> Dict[str, int]:
    """Load a baseline; raises ``ValueError`` on a malformed document."""
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise ValueError(f"malformed baseline {path}: {exc}") from None
    if not isinstance(payload, dict) or payload.get("version") != _BASELINE_VERSION:
        raise ValueError(f"unsupported baseline version in {path}")
    entries = payload.get("entries")
    if not isinstance(entries, dict) or not all(
        isinstance(k, str) and isinstance(v, int) for k, v in entries.items()
    ):
        raise ValueError(f"malformed baseline entries in {path}")
    return dict(entries)


def apply_baseline(
    violations: Sequence[Violation], baseline: Dict[str, int]
) -> Tuple[List[Violation], int]:
    """Drop baselined violations; returns (surviving, suppressed_count)."""
    budget = dict(baseline)
    surviving: List[Violation] = []
    suppressed = 0
    for violation in violations:
        key = fingerprint(violation)
        if budget.get(key, 0) > 0:
            budget[key] -= 1
            suppressed += 1
        else:
            surviving.append(violation)
    return surviving, suppressed
