"""The lint driver: index construction, program rules, public entry points.

``run_lint`` is the full pipeline — expand paths, build (or load from the
incremental cache) one :class:`~repro.lint.index.ModuleSummary` per file,
replay the cached per-file violations, then run the whole-program analyses
(R100 taint, R101 snapshot completeness, R102 rule parity) over the summary
set.  ``lint_paths`` / ``lint_file`` / ``lint_source`` are the stable
library surface the tests and the meta-test use; they run the same pipeline
without a cache.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence

from repro.lint.index import (
    IndexCache,
    LintFileError,
    ModuleSummary,
    build_summary,
    config_digest,
    default_cache_dir,
)
from repro.lint.parity import check_parity
from repro.lint.rules import LintConfig, Violation, iter_python_files
from repro.lint.snapshot import check_snapshot_completeness
from repro.lint.taint import check_taint


@dataclass
class LintRun:
    """Everything one lint invocation produced."""

    violations: List[Violation] = field(default_factory=list)
    errors: List[LintFileError] = field(default_factory=list)
    summaries: Dict[str, ModuleSummary] = field(default_factory=dict)
    files: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    duration_seconds: float = 0.0


def build_index(
    files: Sequence[Path],
    config: LintConfig,
    cache: Optional[IndexCache] = None,
) -> LintRun:
    """Index every file, using/refreshing ``cache`` when given."""
    run = LintRun()
    digest = config_digest(config) if cache is not None else ""
    for file_path in files:
        run.files += 1
        path_str = str(file_path)
        try:
            content = file_path.read_bytes()
        except OSError as exc:
            run.errors.append(
                LintFileError(
                    path=path_str,
                    line=0,
                    message=f"cannot read file: {exc}",
                    code="E902",
                )
            )
            continue
        summary: Optional[ModuleSummary] = None
        key = ""
        if cache is not None:
            key = cache.key_for(path_str, content, digest)
            summary = cache.load(key)
        if summary is None:
            try:
                source = content.decode("utf-8")
            except UnicodeDecodeError as exc:
                run.errors.append(
                    LintFileError(
                        path=path_str,
                        line=0,
                        message=f"not valid UTF-8: {exc}",
                        code="E902",
                    )
                )
                continue
            try:
                summary = build_summary(path_str, source, config)
            except LintFileError as exc:
                run.errors.append(exc)
                continue
            if cache is not None:
                cache.store(key, summary)
        run.summaries[path_str] = summary
    if cache is not None:
        run.cache_hits = cache.hits
        run.cache_misses = cache.misses
    return run


def run_program_rules(
    summaries: Dict[str, ModuleSummary], config: LintConfig
) -> List[Violation]:
    """The whole-program analyses over an indexed summary set."""
    violations: List[Violation] = []
    violations.extend(check_taint(summaries, config))
    violations.extend(check_snapshot_completeness(summaries, config))
    violations.extend(check_parity(summaries, config))
    return violations


def run_lint(
    paths: Iterable[Path],
    config: Optional[LintConfig] = None,
    cache_dir: Optional[Path] = None,
    use_cache: bool = False,
) -> LintRun:
    """Full pipeline over files/directories; the CLI's engine.

    With ``use_cache`` the per-file index is persisted under ``cache_dir``
    (default: :func:`~repro.lint.index.default_cache_dir`), making warm
    runs of an unchanged tree skip parsing entirely.
    """
    started = time.perf_counter()  # repro-lint: disable=R002
    cfg = config if config is not None else LintConfig()
    cache = None
    if use_cache:
        cache = IndexCache(cache_dir if cache_dir is not None else default_cache_dir())
    run = build_index(iter_python_files(paths), cfg, cache)
    for summary in run.summaries.values():
        run.violations.extend(
            v for v in summary.violations if cfg.enabled(v.rule)
        )
    run.violations.extend(run_program_rules(run.summaries, cfg))
    run.violations.sort()
    run.duration_seconds = time.perf_counter() - started  # repro-lint: disable=R002
    return run


# -- stable library surface ---------------------------------------------------


def lint_paths(
    paths: Iterable[Path], config: Optional[LintConfig] = None
) -> List[Violation]:
    """Lint every ``.py`` file under ``paths`` (files or directories).

    Runs the per-file rules *and* the whole-program analyses over the given
    set.  Unreadable or unparseable files surface as ``E9xx``
    pseudo-violations, keeping the historical list-of-violations contract.
    """
    run = run_lint(paths, config=config)
    return sorted(run.violations + [e.as_violation() for e in run.errors])


def lint_file(path: Path, config: Optional[LintConfig] = None) -> List[Violation]:
    """Lint one file (per-file rules plus single-module program rules)."""
    return lint_paths([path], config=config)


def lint_source(
    source: str, path: str = "<string>", config: Optional[LintConfig] = None
) -> List[Violation]:
    """Lint python ``source``; ``path`` scopes the path-pattern rules."""
    cfg = config if config is not None else LintConfig()
    try:
        summary = build_summary(path, source, cfg)
    except LintFileError as exc:
        return [exc.as_violation()]
    violations = [v for v in summary.violations if cfg.enabled(v.rule)]
    violations.extend(run_program_rules({path: summary}, cfg))
    return sorted(violations)
