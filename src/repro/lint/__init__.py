"""repro-lint: repo-specific determinism and pickle-safety static analysis.

Every figure in this reproduction depends on an invariant the language does
not enforce: all randomness flows through named seeded streams
(:mod:`repro.eventsim.rng`), nothing in simulation code reads the wall
clock, iteration orders that feed simulation state are deterministic, and
everything that crosses the PR-1 process pool pickles faithfully.  This
package turns those conventions into machine-checked rules:

* **R001** — no unseeded randomness (module-level ``random.*`` calls,
  ``random.seed``, any ``numpy.random`` use); only explicitly seeded
  ``random.Random`` instances are allowed.
* **R002** — no wall-clock or other nondeterministic sources
  (``time.time``/``perf_counter``/…, ``datetime.now``, ``os.urandom``,
  ``uuid.uuid1/uuid4``, ``secrets``).
* **R003** — no order-sensitive iteration over bare ``set``/``frozenset``
  values without a deterministic ``sorted(...)`` wrapper.
* **R004** — no ``hash()``/``id()`` inside sort keys (salted/address-based
  values are not stable orderings).
* **R005** — pickle safety for objects crossing the process pool: no
  lambdas handed to the executor, and immutable ``__slots__`` classes with
  a blocking ``__setattr__`` must define explicit pickle support.
* **R006** — no ``time.sleep`` in library code: blocking on the real clock
  makes services untestable and nondeterministic; take an injectable
  sleeper/clock the way :mod:`repro.stream.service` does.
* **R007** — no ``copy.deepcopy`` in library code: it walks the object
  graph generically, aliases shared immutables unpredictably, and hides
  what state actually got captured; implement the explicit
  ``snapshot_state``/``restore_state`` protocol the way
  :mod:`repro.warmstart` does.

On top of the per-file rules, a whole-program pass builds a project index
(:mod:`repro.lint.index`) — per-module taint summaries, class attribute
models, constants — cached on disk keyed by content hash, and runs three
call-graph-aware analyses over it:

* **R100** — flow-sensitive nondeterminism taint: a value derived from a
  wall clock, unseeded randomness, ``os.urandom``, ``uuid1/4``,
  ``id()``/``hash()`` or an unordered-set pick must not reach a
  determinism-critical sink (event scheduling, alarm evidence, checkpoint
  payloads, manifest records, ``snapshot_state`` outputs), even through
  any number of project-internal calls.
* **R101** — snapshot/restore completeness: every class implementing the
  ``snapshot_state``/``restore_state`` protocol must capture, restore, or
  explicitly waive (``_SNAPSHOT_WAIVED``) every instance attribute.
* **R102** — checker/engine rule parity: detection constants, thresholds
  and predicates shared by :mod:`repro.core.checker` and
  :mod:`repro.stream.engine` must live once in the
  :mod:`repro.core.detection` registry, never as diverging copies.

Violations are suppressed per line with ``# repro-lint: disable=R001`` (or
``disable=all``).  Run as ``python -m repro.lint src/repro`` or via the
``repro-lint`` console script; see ``docs/static-analysis.md``.
"""

from __future__ import annotations

from repro.lint.driver import (
    LintRun,
    lint_file,
    lint_paths,
    lint_source,
    run_lint,
)
from repro.lint.index import IndexCache, LintFileError, ModuleSummary, build_summary
from repro.lint.reporter import format_json, format_sarif, format_text
from repro.lint.rules import RULES, LintConfig, Violation
from repro.lint.snapshot import SnapshotCoverage, snapshot_coverage

__all__ = [
    "RULES",
    "IndexCache",
    "LintConfig",
    "LintFileError",
    "LintRun",
    "ModuleSummary",
    "SnapshotCoverage",
    "Violation",
    "build_summary",
    "format_json",
    "format_sarif",
    "format_text",
    "lint_file",
    "lint_paths",
    "lint_source",
    "run_lint",
    "snapshot_coverage",
]
