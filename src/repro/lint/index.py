"""The whole-program project index behind repro-lint.

Per-file pattern rules (R001-R008) see one AST at a time; the program rules
(R100 taint, R101 snapshot completeness, R102 rule parity) need a view of
the *project*: which functions call which, what instance attributes a class
owns, which constants a module defines.  This module builds that view as
one :class:`ModuleSummary` per file — a small, pickleable digest of
everything the program analyses consume:

* the per-file rule violations (computed once, filtered by ``--select`` at
  report time);
* a function table with **taint summaries**: for every function, the set of
  taint *atoms* its return value may carry and every determinism-critical
  sink it feeds (see :mod:`repro.lint.taint` for the lattice);
* a class attribute model: every ``self.x = ...`` instance attribute, what
  ``snapshot_state`` reads, what ``restore_state`` touches, and the class's
  explicit ``_SNAPSHOT_WAIVED`` waivers;
* module-level constants, watched parameter defaults, and the import map
  used to resolve call atoms across modules.

Summaries are cached on disk keyed by a content hash (source bytes + path +
extraction config + schema version), so a warm lint of an unchanged tree
never re-parses a file: it unpickles ~200 small digests and runs only the
cheap whole-program fixpoints.  A corrupted or stale cache entry is
self-healing — it is discarded and rebuilt, never trusted.
"""

from __future__ import annotations

import ast
import hashlib
import os
import pickle
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Dict, FrozenSet, List, Mapping, Optional, Sequence, Set, Tuple

from repro.fsio import fsync_dir
from repro.lint.rules import (
    RULES,
    LintConfig,
    Violation,
    _dotted,
    _parse_suppressions,
    _FileChecker,
    _DATETIME_FUNCS,
    _OS_FUNCS,
    _RANDOM_GLOBAL_FUNCS,
    _TIME_FUNCS,
    _UUID_FUNCS,
)

#: Bump when the summary shape or the extraction logic changes: every cache
#: entry written under another schema version silently misses.
SCHEMA_VERSION = 3

#: Taint atom prefixes.  A *direct* atom carries the human-readable source
#: description; a *call* atom carries the callee name as written, resolved
#: against the project symbol table during the global fixpoint.
DIRECT_ATOM = "!"
CALL_ATOM = "@"

#: Builtins that pass their arguments' taint through to their result.
_PASSTHROUGH_BUILTINS: FrozenSet[str] = frozenset(
    {
        "abs",
        "dict",
        "enumerate",
        "float",
        "format",
        "frozenset",
        "int",
        "len",
        "list",
        "max",
        "min",
        "repr",
        "reversed",
        "round",
        "set",
        "sorted",
        "str",
        "sum",
        "tuple",
        "zip",
    }
)


class LintFileError(Exception):
    """A file repro-lint could not analyse at all.

    Raised for unreadable files, non-UTF-8 bytes and syntax errors.  The
    CLI reports these as diagnostics and exits 2; the library surfaces them
    both as exceptions (from :func:`build_summary`) and as ``E9xx``
    pseudo-violations (from the driver) so existing callers keep working.
    """

    def __init__(self, path: str, line: int, message: str, code: str) -> None:
        super().__init__(f"{path}:{line}: {code} {message}")
        self.path = path
        self.line = line
        self.message = message
        self.code = code

    def as_violation(self) -> Violation:
        return Violation(
            path=self.path, line=self.line, col=0, rule=self.code, message=self.message
        )


@dataclass(frozen=True)
class SinkHit:
    """One determinism-critical sink call site inside a function."""

    line: int
    col: int
    label: str
    atoms: Tuple[str, ...]


@dataclass(frozen=True)
class FunctionInfo:
    """Taint summary for one function or method."""

    qualname: str  # "func" or "Class.method"
    class_name: Optional[str]
    lineno: int
    returns: Tuple[str, ...]  # taint atoms the return value may carry
    sinks: Tuple[SinkHit, ...]


@dataclass(frozen=True)
class ClassInfo:
    """Attribute model for one class (the R101 substrate)."""

    name: str
    lineno: int
    #: instance attribute -> line of its first ``self.x = ...`` assignment
    attrs: Tuple[Tuple[str, int], ...]
    waived: Tuple[str, ...]
    waiver_line: Optional[int]
    has_snapshot: bool
    snapshot_line: int
    has_restore: bool
    restore_line: int
    snapshot_reads: Tuple[str, ...]
    restore_touches: Tuple[str, ...]
    methods: Tuple[str, ...]


@dataclass(frozen=True)
class ConstInfo:
    """One module-level (or class-level UPPER_CASE) literal constant."""

    name: str
    value_repr: str
    lineno: int


@dataclass(frozen=True)
class ModuleSummary:
    """Everything the whole-program analyses need from one file."""

    path: str
    module: str
    sha256: str
    violations: Tuple[Violation, ...]  # per-file rules, full select
    suppressions: Mapping[int, FrozenSet[str]]
    functions: Mapping[str, FunctionInfo]
    classes: Mapping[str, ClassInfo]
    imports: Mapping[str, str]
    constants: Mapping[str, ConstInfo]
    defaults: Mapping[str, Tuple[ConstInfo, ...]]  # function qualname -> param defaults


def module_name_for(path: str) -> str:
    """Dotted module name for a source path.

    ``.../src/repro/core/checker.py`` -> ``repro.core.checker``; files
    outside a ``src`` root (test fixtures) fall back to their stem.
    """
    parts = list(Path(path).with_suffix("").parts)
    if "src" in parts:
        parts = parts[len(parts) - 1 - parts[::-1].index("src"):][1:]
    elif "repro" in parts:
        parts = parts[parts.index("repro"):]
    else:
        parts = parts[-1:]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts) if parts else Path(path).stem


# ---------------------------------------------------------------------------
# import / nondeterminism-source tracking
# ---------------------------------------------------------------------------


@dataclass
class _Aliases:
    """Names under which nondeterminism-bearing modules are visible."""

    random: Set[str] = field(default_factory=set)
    numpy: Set[str] = field(default_factory=set)
    time: Set[str] = field(default_factory=set)
    os: Set[str] = field(default_factory=set)
    uuid: Set[str] = field(default_factory=set)
    secrets: Set[str] = field(default_factory=set)
    datetime_mod: Set[str] = field(default_factory=set)
    datetime_cls: Set[str] = field(default_factory=set)
    direct: Dict[str, str] = field(default_factory=dict)  # name -> description


def _collect_imports(
    tree: ast.Module, module: str
) -> Tuple[Dict[str, str], _Aliases]:
    """Build the local-name -> dotted-target map and the nondet alias sets."""
    imports: Dict[str, str] = {}
    aliases = _Aliases()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                bound = alias.asname or alias.name.split(".", 1)[0]
                target = alias.name if alias.asname else alias.name.split(".", 1)[0]
                imports[bound] = target
                root = alias.name.split(".", 1)[0]
                if root == "random":
                    aliases.random.add(bound)
                elif root == "numpy":
                    aliases.numpy.add(bound)
                elif root == "time":
                    aliases.time.add(bound)
                elif root == "os":
                    aliases.os.add(bound)
                elif root == "uuid":
                    aliases.uuid.add(bound)
                elif root == "secrets":
                    aliases.secrets.add(bound)
                elif root == "datetime":
                    aliases.datetime_mod.add(bound)
        elif isinstance(node, ast.ImportFrom):
            mod = node.module or ""
            if node.level:
                # Relative import: resolve against the module's package.
                base_parts = module.split(".")
                # level=1 is the current package (strip the module name).
                base_parts = base_parts[: len(base_parts) - node.level]
                prefix = ".".join(base_parts)
                mod = f"{prefix}.{mod}" if mod and prefix else (prefix or mod)
            for alias in node.names:
                bound = alias.asname or alias.name
                imports[bound] = f"{mod}.{alias.name}" if mod else alias.name
                if mod == "random" and alias.name in _RANDOM_GLOBAL_FUNCS:
                    aliases.direct[bound] = f"random.{alias.name}() (unseeded)"
                elif mod == "time" and alias.name in _TIME_FUNCS:
                    aliases.direct[bound] = f"time.{alias.name}() (wall clock)"
                elif mod == "os" and alias.name in _OS_FUNCS:
                    aliases.direct[bound] = f"os.{alias.name}()"
                elif mod == "uuid" and alias.name in _UUID_FUNCS:
                    aliases.direct[bound] = f"uuid.{alias.name}()"
                elif mod == "secrets":
                    aliases.direct[bound] = f"secrets.{alias.name}()"
                elif mod == "datetime" and alias.name in {"datetime", "date"}:
                    aliases.datetime_cls.add(bound)
    return imports, aliases


def _source_description(dotted: str, aliases: _Aliases) -> Optional[str]:
    """Human description if calling ``dotted`` yields a nondeterministic
    value; None otherwise."""
    head, _, rest = dotted.partition(".")
    if not rest:
        if head in aliases.direct:
            return aliases.direct[head]
        if head == "id":
            return "id() (process address)"
        if head == "hash":
            return "hash() (salted per process)"
        return None
    first = rest.split(".", 1)[0]
    if head in aliases.time and first in _TIME_FUNCS:
        return f"time.{first}() (wall clock)"
    if head in aliases.random and (
        first in _RANDOM_GLOBAL_FUNCS or first == "SystemRandom"
    ):
        return f"random.{first} (unseeded)"
    if head in aliases.numpy and first == "random":
        return "numpy.random (unseeded)"
    if head in aliases.os and first in _OS_FUNCS:
        return f"os.{first}()"
    if head in aliases.uuid and first in _UUID_FUNCS:
        return f"uuid.{first}()"
    if head in aliases.secrets:
        return f"secrets.{first}()"
    parts = dotted.split(".")
    if len(parts) >= 2 and parts[-1] in _DATETIME_FUNCS:
        base = parts[-2]
        if base in {"datetime", "date"} and (
            parts[0] in aliases.datetime_mod or parts[0] in aliases.datetime_cls
        ):
            return f"{base}.{parts[-1]}() (wall clock)"
    return None


# ---------------------------------------------------------------------------
# intraprocedural taint extraction
# ---------------------------------------------------------------------------


class _FunctionTaint:
    """Flow-sensitive, path-insensitive taint pass over one function body.

    Variables map to sets of atoms.  The body is executed twice so taint
    carried around a loop back-edge reaches its consumers; branch joins are
    unions.  Sinks record their argument atoms conditionally — whether a
    ``call`` atom is actually tainted is decided by the global fixpoint in
    :mod:`repro.lint.taint`.
    """

    def __init__(
        self,
        aliases: _Aliases,
        suppressions: Mapping[int, FrozenSet[str]],
        config: LintConfig,
        is_snapshot_fn: bool,
    ) -> None:
        self._aliases = aliases
        self._suppressions = suppressions
        self._config = config
        self._is_snapshot_fn = is_snapshot_fn
        self._env: Dict[str, FrozenSet[str]] = {}
        self.returns: Set[str] = set()
        self._sinks: Dict[Tuple[int, int, str], Set[str]] = {}

    # -- public ----------------------------------------------------------

    def run(self, body: Sequence[ast.stmt]) -> Tuple[Tuple[str, ...], Tuple[SinkHit, ...]]:
        for _ in range(2):  # second pass closes loop back-edges
            self._exec_block(body)
        sinks = tuple(
            SinkHit(line=line, col=col, label=label, atoms=tuple(sorted(atoms)))
            for (line, col, label), atoms in sorted(self._sinks.items())
            if atoms
        )
        return tuple(sorted(self.returns)), sinks

    # -- helpers ---------------------------------------------------------

    def _source_suppressed(self, node: ast.AST) -> bool:
        line = getattr(node, "lineno", 0)
        rules = self._suppressions.get(line, frozenset())
        return bool(rules & {"R100", "R001", "R002", "ALL"})

    def _bind(self, target: ast.expr, atoms: FrozenSet[str]) -> None:
        if isinstance(target, ast.Name):
            self._env[target.id] = atoms
        elif isinstance(target, ast.Attribute) and isinstance(
            target.value, ast.Name
        ) and target.value.id == "self":
            self._env[f"self.{target.attr}"] = atoms
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._bind(element, atoms)
        elif isinstance(target, ast.Starred):
            self._bind(target.value, atoms)

    # -- expression atoms -------------------------------------------------

    def _atoms(self, node: Optional[ast.expr]) -> FrozenSet[str]:
        if node is None or isinstance(node, (ast.Constant, ast.Lambda)):
            return frozenset()
        if isinstance(node, ast.Name):
            return self._env.get(node.id, frozenset())
        if isinstance(node, ast.Attribute):
            if isinstance(node.value, ast.Name) and node.value.id == "self":
                return self._env.get(f"self.{node.attr}", frozenset())
            return self._atoms(node.value)
        if isinstance(node, ast.Call):
            return self._call_atoms(node)
        if isinstance(node, ast.NamedExpr):
            atoms = self._atoms(node.value)
            self._bind(node.target, atoms)
            return atoms
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp)):
            return self._comp_atoms(node.generators, [node.elt])
        if isinstance(node, ast.DictComp):
            return self._comp_atoms(node.generators, [node.key, node.value])
        # Generic structural union: BinOp, BoolOp, Compare, Subscript,
        # JoinedStr, Tuple, List, Set, Dict, IfExp, Starred, UnaryOp, ...
        atoms: Set[str] = set()
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                atoms |= self._atoms(child)
        return frozenset(atoms)

    def _comp_atoms(
        self, generators: Sequence[ast.comprehension], values: Sequence[ast.expr]
    ) -> FrozenSet[str]:
        atoms: Set[str] = set()
        for gen in generators:
            iter_atoms = self._atoms(gen.iter)
            self._bind(gen.target, iter_atoms)
            atoms |= iter_atoms
        for value in values:
            atoms |= self._atoms(value)
        return frozenset(atoms)

    def _call_atoms(self, node: ast.Call) -> FrozenSet[str]:
        func = node.func
        dotted = _dotted(func)
        arg_atoms: Set[str] = set()
        for arg in node.args:
            arg_atoms |= self._atoms(arg)
        for keyword in node.keywords:
            arg_atoms |= self._atoms(keyword.value)

        self._check_sink(node, dotted, frozenset(arg_atoms))

        # next(iter({...})) / next(iter(set(...))): first element of an
        # unordered set — nondeterministic even though no R003 loop exists.
        if (
            isinstance(func, ast.Name)
            and func.id == "next"
            and node.args
            and isinstance(node.args[0], ast.Call)
        ):
            inner = node.args[0]
            if (
                isinstance(inner.func, ast.Name)
                and inner.func.id == "iter"
                and inner.args
                and self._is_obvious_set(inner.args[0])
                and not self._source_suppressed(node)
            ):
                return frozenset(
                    {f"{DIRECT_ATOM}next(iter(<set>)) (unordered set element)"}
                ) | frozenset(arg_atoms)

        if dotted is not None:
            description = _source_description(dotted, self._aliases)
            if description is not None:
                if self._source_suppressed(node):
                    # The suppression is the human assertion that this
                    # nondeterminism is managed (masked timing field,
                    # injectable clock default, ...): it does not taint.
                    return frozenset()
                return frozenset({f"{DIRECT_ATOM}{description}"})

        result: Set[str] = set()
        if isinstance(func, ast.Name):
            if func.id in _PASSTHROUGH_BUILTINS:
                return frozenset(arg_atoms)
            if dotted is not None:
                result.add(f"{CALL_ATOM}{dotted}")
        elif isinstance(func, ast.Attribute):
            # A method of a tainted object yields a tainted value
            # (tainted.strftime(...), tainted_dict.items(), ...).
            result |= self._atoms(func.value)
            if dotted is not None:
                result.add(f"{CALL_ATOM}{dotted}")
        return frozenset(result)

    @staticmethod
    def _is_obvious_set(node: ast.expr) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        return (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in {"set", "frozenset"}
        )

    def _check_sink(
        self, node: ast.Call, dotted: Optional[str], arg_atoms: FrozenSet[str]
    ) -> None:
        if not arg_atoms:
            return
        label: Optional[str] = None
        func = node.func
        if isinstance(func, ast.Attribute):
            if func.attr in self._config.taint_sink_methods:
                label = f"{func.attr}()"
        if label is None and dotted is not None:
            tail = dotted.rsplit(".", 1)[-1]
            if tail in self._config.taint_sink_constructors:
                label = f"{tail}(...)"
            elif tail in self._config.taint_sink_methods and not isinstance(
                func, ast.Attribute
            ):
                label = f"{tail}()"
        if label is None:
            return
        key = (node.lineno, node.col_offset, label)
        self._sinks.setdefault(key, set()).update(arg_atoms)

    # -- statements -------------------------------------------------------

    def _exec_block(self, body: Sequence[ast.stmt]) -> None:
        for stmt in body:
            self._exec_stmt(stmt)

    def _exec_stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.Assign):
            atoms = self._atoms(stmt.value)
            for target in stmt.targets:
                self._bind(target, atoms)
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self._bind(stmt.target, self._atoms(stmt.value))
        elif isinstance(stmt, ast.AugAssign):
            atoms = self._atoms(stmt.value)
            if isinstance(stmt.target, ast.Name):
                atoms |= self._env.get(stmt.target.id, frozenset())
            self._bind(stmt.target, atoms)
        elif isinstance(stmt, ast.Return):
            atoms = self._atoms(stmt.value)
            self.returns |= atoms
            if self._is_snapshot_fn and atoms:
                key = (stmt.lineno, stmt.col_offset, "snapshot_state payload")
                self._sinks.setdefault(key, set()).update(atoms)
        elif isinstance(stmt, ast.Expr):
            self._atoms(stmt.value)
        elif isinstance(stmt, ast.If):
            self._atoms(stmt.test)
            before = dict(self._env)
            self._exec_block(stmt.body)
            after_body = self._env
            self._env = dict(before)
            self._exec_block(stmt.orelse)
            self._merge_env(after_body)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._bind(stmt.target, self._atoms(stmt.iter))
            self._exec_block(stmt.body)
            self._exec_block(stmt.orelse)
        elif isinstance(stmt, ast.While):
            self._atoms(stmt.test)
            self._exec_block(stmt.body)
            self._exec_block(stmt.orelse)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                atoms = self._atoms(item.context_expr)
                if item.optional_vars is not None:
                    self._bind(item.optional_vars, atoms)
            self._exec_block(stmt.body)
        elif isinstance(stmt, ast.Try):
            self._exec_block(stmt.body)
            for handler in stmt.handlers:
                self._exec_block(handler.body)
            self._exec_block(stmt.orelse)
            self._exec_block(stmt.finalbody)
        elif isinstance(stmt, (ast.Raise, ast.Assert)):
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.expr):
                    self._atoms(child)
        elif isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    self._env.pop(target.id, None)
        # Nested FunctionDef / ClassDef bodies are separate scopes: skipped.

    def _merge_env(self, other: Mapping[str, FrozenSet[str]]) -> None:
        for name, atoms in other.items():
            self._env[name] = self._env.get(name, frozenset()) | atoms


# ---------------------------------------------------------------------------
# class attribute model (R101 substrate)
# ---------------------------------------------------------------------------


def _self_attr_target(node: ast.expr) -> Optional[str]:
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def _collect_class_info(node: ast.ClassDef, config: LintConfig) -> ClassInfo:
    attrs: Dict[str, int] = {}
    waived: List[str] = []
    waiver_line: Optional[int] = None
    snapshot_reads: Set[str] = set()
    restore_touches: Set[str] = set()
    has_snapshot = False
    has_restore = False
    snapshot_line = 0
    restore_line = 0
    methods: List[str] = []

    for stmt in node.body:
        if isinstance(stmt, (ast.Assign, ast.AnnAssign)):
            targets = (
                stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
            )
            value = stmt.value
            for target in targets:
                if (
                    isinstance(target, ast.Name)
                    and target.id == config.snapshot_waiver_name
                    and value is not None
                ):
                    waiver_line = stmt.lineno
                    waived = _literal_string_collection(value)
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            methods.append(stmt.name)
            if stmt.name == "snapshot_state":
                has_snapshot = True
                snapshot_line = stmt.lineno
                for inner in ast.walk(stmt):
                    attr = _self_attr_target(inner) if isinstance(inner, ast.expr) else None
                    if attr is not None:
                        snapshot_reads.add(attr)
                continue
            if stmt.name == "restore_state":
                has_restore = True
                restore_line = stmt.lineno
                for inner in ast.walk(stmt):
                    attr = _self_attr_target(inner) if isinstance(inner, ast.expr) else None
                    if attr is not None:
                        restore_touches.add(attr)
                continue
            for inner in ast.walk(stmt):
                if isinstance(inner, ast.Assign):
                    for target in inner.targets:
                        _record_attr_targets(target, inner.lineno, attrs)
                elif isinstance(inner, (ast.AnnAssign, ast.AugAssign)):
                    _record_attr_targets(inner.target, inner.lineno, attrs)

    return ClassInfo(
        name=node.name,
        lineno=node.lineno,
        attrs=tuple(sorted(attrs.items())),
        waived=tuple(sorted(set(waived))),
        waiver_line=waiver_line,
        has_snapshot=has_snapshot,
        snapshot_line=snapshot_line,
        has_restore=has_restore,
        restore_line=restore_line,
        snapshot_reads=tuple(sorted(snapshot_reads)),
        restore_touches=tuple(sorted(restore_touches)),
        methods=tuple(sorted(methods)),
    )


def _record_attr_targets(
    target: ast.expr, lineno: int, attrs: Dict[str, int]
) -> None:
    attr = _self_attr_target(target)
    if attr is not None:
        if attr not in attrs:
            attrs[attr] = lineno
        return
    if isinstance(target, (ast.Tuple, ast.List)):
        for element in target.elts:
            _record_attr_targets(element, lineno, attrs)


def _literal_string_collection(node: ast.expr) -> List[str]:
    """Strings in ``frozenset({"a", "b"})`` / ``("a", "b")`` / ``{"a"}``."""
    if isinstance(node, ast.Call) and node.args:
        return _literal_string_collection(node.args[0])
    if isinstance(node, (ast.Set, ast.Tuple, ast.List)):
        out: List[str] = []
        for element in node.elts:
            if isinstance(element, ast.Constant) and isinstance(element.value, str):
                out.append(element.value)
        return out
    return []


# ---------------------------------------------------------------------------
# constants and defaults (R102 substrate)
# ---------------------------------------------------------------------------


def _collect_constants(tree: ast.Module) -> Dict[str, ConstInfo]:
    constants: Dict[str, ConstInfo] = {}

    def record(name: str, value: ast.expr, lineno: int) -> None:
        if isinstance(value, ast.Constant) and isinstance(
            value.value, (int, float, str, bool)
        ):
            constants.setdefault(
                name, ConstInfo(name=name, value_repr=repr(value.value), lineno=lineno)
            )

    for stmt in tree.body:
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
            target = stmt.targets[0]
            if isinstance(target, ast.Name):
                record(target.id, stmt.value, stmt.lineno)
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            if isinstance(stmt.target, ast.Name):
                record(stmt.target.id, stmt.value, stmt.lineno)
        elif isinstance(stmt, ast.ClassDef):
            for inner in stmt.body:
                if isinstance(inner, ast.Assign) and len(inner.targets) == 1:
                    target = inner.targets[0]
                    if isinstance(target, ast.Name) and target.id.isupper():
                        record(f"{stmt.name}.{target.id}", inner.value, inner.lineno)
                        record(target.id, inner.value, inner.lineno)
                elif isinstance(inner, ast.AnnAssign) and inner.value is not None:
                    target = inner.target
                    if isinstance(target, ast.Name) and target.id.isupper():
                        record(f"{stmt.name}.{target.id}", inner.value, inner.lineno)
                        record(target.id, inner.value, inner.lineno)
    return constants


def _collect_defaults(
    functions: Sequence[Tuple[Optional[str], ast.AST]]
) -> Dict[str, Tuple[ConstInfo, ...]]:
    defaults: Dict[str, Tuple[ConstInfo, ...]] = {}
    for class_name, node in functions:
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        qualname = f"{class_name}.{node.name}" if class_name else node.name
        args = node.args
        entries: List[ConstInfo] = []
        positional = list(args.posonlyargs) + list(args.args)
        offset = len(positional) - len(args.defaults)
        for arg, default in zip(positional[offset:], args.defaults):
            if isinstance(default, ast.Constant) and isinstance(
                default.value, (int, float, str, bool)
            ):
                entries.append(
                    ConstInfo(
                        name=arg.arg,
                        value_repr=repr(default.value),
                        lineno=default.lineno,
                    )
                )
        for arg, kw_default in zip(args.kwonlyargs, args.kw_defaults):
            if isinstance(kw_default, ast.Constant) and isinstance(
                kw_default.value, (int, float, str, bool)
            ):
                entries.append(
                    ConstInfo(
                        name=arg.arg,
                        value_repr=repr(kw_default.value),
                        lineno=kw_default.lineno,
                    )
                )
        if entries:
            defaults[qualname] = tuple(entries)
    return defaults


# ---------------------------------------------------------------------------
# summary construction
# ---------------------------------------------------------------------------


def build_summary(path: str, source: str, config: LintConfig) -> ModuleSummary:
    """Parse ``source`` and extract its :class:`ModuleSummary`.

    Raises :class:`LintFileError` on a syntax error; IO concerns live with
    the caller.
    """
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        raise LintFileError(
            path=path,
            line=exc.lineno if exc.lineno is not None else 0,
            message=f"syntax error: {exc.msg}",
            code="E999",
        ) from None
    except (ValueError, RecursionError) as exc:
        raise LintFileError(
            path=path, line=0, message=f"cannot parse: {exc}", code="E999"
        ) from None

    module = module_name_for(path)
    suppressions = _parse_suppressions(source)

    # Per-file rules run with every rule enabled; ``--select`` filters at
    # report time so the cached summary is select-independent.
    file_config = replace(config, select=frozenset(RULES))
    checker = _FileChecker(path, source, file_config)
    checker.visit(tree)

    imports, aliases = _collect_imports(tree, module)

    functions: Dict[str, FunctionInfo] = {}
    classes: Dict[str, ClassInfo] = {}
    flat: List[Tuple[Optional[str], ast.AST]] = []

    for stmt in tree.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            flat.append((None, stmt))
        elif isinstance(stmt, ast.ClassDef):
            classes[stmt.name] = _collect_class_info(stmt, config)
            for inner in stmt.body:
                if isinstance(inner, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    flat.append((stmt.name, inner))

    for class_name, node in flat:
        assert isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        qualname = f"{class_name}.{node.name}" if class_name else node.name
        taint = _FunctionTaint(
            aliases=aliases,
            suppressions=suppressions,
            config=config,
            is_snapshot_fn=node.name == "snapshot_state",
        )
        returns, sinks = taint.run(node.body)
        functions[qualname] = FunctionInfo(
            qualname=qualname,
            class_name=class_name,
            lineno=node.lineno,
            returns=returns,
            sinks=sinks,
        )

    digest = hashlib.sha256(source.encode("utf-8")).hexdigest()
    return ModuleSummary(
        path=path,
        module=module,
        sha256=digest,
        violations=tuple(sorted(checker.violations)),
        suppressions=dict(suppressions),
        functions=functions,
        classes=classes,
        imports=imports,
        constants=_collect_constants(tree),
        defaults=_collect_defaults(flat),
    )


# ---------------------------------------------------------------------------
# the incremental on-disk cache
# ---------------------------------------------------------------------------


def default_cache_dir() -> Path:
    """Resolve the cache directory: ``REPRO_LINT_CACHE`` wins, then
    ``~/.cache/repro-lint``."""
    override = os.environ.get("REPRO_LINT_CACHE")
    if override:
        return Path(override)
    return Path.home() / ".cache" / "repro-lint"


def config_digest(config: LintConfig) -> str:
    """Digest of every config field that affects summary extraction.

    ``select`` is deliberately excluded: summaries are select-independent,
    so switching ``--select`` never invalidates the cache.
    """
    fields = (
        SCHEMA_VERSION,
        config.spec_modules,
        config.pool_functions,
        config.hot_path_modules,
        config.taint_sink_methods,
        config.taint_sink_constructors,
        config.snapshot_waiver_name,
        config.parity_groups,
        config.parity_registry_modules,
    )
    return hashlib.sha256(repr(fields).encode("utf-8")).hexdigest()


class IndexCache:
    """Content-hash-keyed pickle store of :class:`ModuleSummary` objects.

    The key covers the file's bytes, its path and the extraction config, so
    any edit — or any rule change that bumps :data:`SCHEMA_VERSION` —
    misses cleanly.  Corrupt entries (truncated writes, foreign bytes,
    schema drift) are deleted and rebuilt: the cache can only ever cost a
    re-parse, never a wrong answer.
    """

    def __init__(self, directory: Path) -> None:
        self.directory = directory
        self.hits = 0
        self.misses = 0

    def key_for(self, path: str, content: bytes, cfg_digest: str) -> str:
        hasher = hashlib.sha256()
        hasher.update(cfg_digest.encode("utf-8"))
        hasher.update(b"\x00")
        hasher.update(os.path.abspath(path).encode("utf-8", "surrogateescape"))
        hasher.update(b"\x00")
        hasher.update(content)
        return hasher.hexdigest()

    def _entry(self, key: str) -> Path:
        return self.directory / f"{key}.pkl"

    def load(self, key: str) -> Optional[ModuleSummary]:
        entry = self._entry(key)
        try:
            raw = entry.read_bytes()
        except OSError:
            self.misses += 1
            return None
        try:
            summary = pickle.loads(raw)
        except Exception:  # corrupted entry: self-heal by discarding it
            try:
                entry.unlink()
            except OSError:
                pass
            self.misses += 1
            return None
        if not isinstance(summary, ModuleSummary):
            try:
                entry.unlink()
            except OSError:
                pass
            self.misses += 1
            return None
        self.hits += 1
        return summary

    def store(self, key: str, summary: ModuleSummary) -> None:
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
            entry = self._entry(key)
            tmp = entry.with_name(f".{entry.name}.{os.getpid()}.tmp")
            tmp.write_bytes(pickle.dumps(summary, protocol=pickle.HIGHEST_PROTOCOL))
            os.replace(tmp, entry)
            # The rename itself is not durable until the directory is
            # fsynced (ext4/xfs); a crash could otherwise lose the entry.
            fsync_dir(self.directory)
        except OSError:
            # A read-only or full cache directory degrades to cold linting.
            pass
