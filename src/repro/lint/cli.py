"""Command-line entry point for repro-lint.

``repro-lint src/repro`` (or ``python -m repro.lint src/repro``) lints the
tree and exits 0 when clean, 1 on violations, 2 on usage errors.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from repro.lint.reporter import format_json, format_rule_catalogue, format_text
from repro.lint.rules import RULES, LintConfig, lint_paths


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="Determinism / pickle-safety static analysis for the "
        "repro codebase (rules R001-R005).",
    )
    parser.add_argument(
        "paths", nargs="*", default=["src/repro"],
        help="files or directories to lint (default: src/repro)",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--select", default=None, metavar="RULES",
        help="comma-separated rule ids to enable (default: all)",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule catalogue and exit"
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        print(format_rule_catalogue())
        return 0

    config = LintConfig()
    if args.select is not None:
        selected = frozenset(
            part.strip().upper() for part in args.select.split(",") if part.strip()
        )
        unknown = selected - frozenset(RULES)
        if unknown:
            print(
                f"repro-lint: unknown rule(s): {', '.join(sorted(unknown))}",
                file=sys.stderr,
            )
            return 2
        config = LintConfig(select=selected)

    paths: List[Path] = []
    for raw in args.paths:
        path = Path(raw)
        if not path.exists():
            print(f"repro-lint: no such path: {raw}", file=sys.stderr)
            return 2
        paths.append(path)

    violations = lint_paths(paths, config=config)
    if args.format == "json":
        print(format_json(violations))
    else:
        print(format_text(violations))
    return 1 if violations else 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
