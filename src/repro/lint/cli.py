"""Command-line entry point for repro-lint.

``repro-lint src/repro`` (or ``python -m repro.lint src/repro``) lints the
tree and exits 0 when clean, 1 on violations, 2 on usage errors or files
the linter could not analyse (unreadable, non-UTF-8, syntax errors) — those
are reported as diagnostics on stderr, never tracebacks.
"""

from __future__ import annotations

import argparse
import subprocess
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from repro.lint.baseline import apply_baseline, load_baseline, write_baseline
from repro.lint.driver import run_lint
from repro.lint.reporter import (
    format_json,
    format_rule_catalogue,
    format_sarif,
    format_text,
)
from repro.lint.rules import RULES, LintConfig


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="Determinism / pickle-safety static analysis for the "
        "repro codebase (per-file rules R001-R008 plus whole-program "
        "analyses R100-R102).",
    )
    parser.add_argument(
        "paths", nargs="*", default=["src/repro"],
        help="files or directories to lint (default: src/repro)",
    )
    parser.add_argument(
        "--format", choices=("text", "json", "sarif"), default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--select", default=None, metavar="RULES",
        help="comma-separated rule ids to enable (default: all)",
    )
    parser.add_argument(
        "--changed", action="store_true",
        help="lint only files reported modified/added/untracked by git, "
        "intersected with the given paths",
    )
    parser.add_argument(
        "--baseline", default=None, metavar="FILE",
        help="suppress violations recorded in this baseline file",
    )
    parser.add_argument(
        "--write-baseline", default=None, metavar="FILE",
        help="write the current violations as a new baseline and exit 0",
    )
    parser.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="index cache directory (default: $REPRO_LINT_CACHE or "
        "~/.cache/repro-lint)",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="disable the on-disk index cache for this run",
    )
    parser.add_argument(
        "--stats", action="store_true",
        help="print files/cache/duration statistics to stderr",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule catalogue and exit"
    )
    return parser


def _changed_python_files(roots: Sequence[Path]) -> Optional[List[Path]]:
    """``.py`` files git reports as changed (staged, unstaged or untracked),
    restricted to ``roots``.  ``None`` signals a git failure."""
    try:
        proc = subprocess.run(
            ["git", "status", "--porcelain", "--untracked-files=all"],
            capture_output=True,
            text=True,
            check=False,
            timeout=30,
        )
    except (OSError, subprocess.TimeoutExpired) as exc:
        print(f"repro-lint: cannot run git for --changed: {exc}", file=sys.stderr)
        return None
    if proc.returncode != 0:
        detail = proc.stderr.strip() or f"exit code {proc.returncode}"
        print(f"repro-lint: git status failed for --changed: {detail}", file=sys.stderr)
        return None
    resolved_roots = [root.resolve() for root in roots]
    changed: List[Path] = []
    for raw_line in proc.stdout.splitlines():
        if len(raw_line) < 4 or raw_line[:2] == "D " or raw_line[:2] == " D":
            continue
        name = raw_line[3:]
        if " -> " in name:  # rename: lint the new side
            name = name.split(" -> ", 1)[1]
        if name.startswith('"') and name.endswith('"'):
            name = name[1:-1]
        if not name.endswith(".py"):
            continue
        path = Path(name)
        if not path.exists():
            continue
        resolved = path.resolve()
        for root in resolved_roots:
            if resolved == root or root in resolved.parents:
                changed.append(path)
                break
    return sorted(set(changed))


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        print(format_rule_catalogue())
        return 0

    config = LintConfig()
    if args.select is not None:
        selected = frozenset(
            part.strip().upper() for part in args.select.split(",") if part.strip()
        )
        unknown = selected - frozenset(RULES)
        if unknown:
            print(
                f"repro-lint: unknown rule(s): {', '.join(sorted(unknown))}",
                file=sys.stderr,
            )
            return 2
        config = LintConfig(select=selected)

    paths: List[Path] = []
    for raw in args.paths:
        path = Path(raw)
        if not path.exists():
            print(f"repro-lint: no such path: {raw}", file=sys.stderr)
            return 2
        paths.append(path)

    if args.changed:
        changed = _changed_python_files(paths)
        if changed is None:
            return 2
        if not changed:
            if args.format == "sarif":
                print(format_sarif([]))
            elif args.format == "json":
                print(format_json([]))
            else:
                print("clean: no changed files to lint")
            return 0
        paths = changed

    baseline = None
    if args.baseline is not None:
        baseline_path = Path(args.baseline)
        if not baseline_path.exists():
            print(f"repro-lint: no such baseline: {args.baseline}", file=sys.stderr)
            return 2
        try:
            baseline = load_baseline(baseline_path)
        except ValueError as exc:
            print(f"repro-lint: {exc}", file=sys.stderr)
            return 2

    run = run_lint(
        paths,
        config=config,
        cache_dir=Path(args.cache_dir) if args.cache_dir else None,
        use_cache=not args.no_cache,
    )

    violations = run.violations
    suppressed = 0
    if baseline is not None:
        violations, suppressed = apply_baseline(violations, baseline)

    if args.write_baseline is not None:
        write_baseline(violations, Path(args.write_baseline))
        print(
            f"repro-lint: wrote baseline with {len(violations)} violation(s) "
            f"to {args.write_baseline}",
            file=sys.stderr,
        )
        violations = []

    if args.format == "sarif":
        print(format_sarif(violations))
    elif args.format == "json":
        print(format_json(violations))
    else:
        print(format_text(violations))

    if args.stats:
        print(
            f"repro-lint: {run.files} file(s), {run.cache_hits} cache hit(s), "
            f"{run.cache_misses} miss(es), {run.duration_seconds:.3f}s"
            + (f", {suppressed} baselined" if suppressed else ""),
            file=sys.stderr,
        )

    for error in run.errors:
        print(
            f"repro-lint: {error.path}:{error.line}: {error.code} {error.message}",
            file=sys.stderr,
        )
    if run.errors:
        return 2
    return 1 if violations else 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
