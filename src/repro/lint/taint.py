"""R100: flow-sensitive nondeterminism taint across the call graph.

The per-file indexer (:mod:`repro.lint.index`) already ran a flow-sensitive
pass over every function body and reduced it to a *taint summary*: the set
of atoms the function's return value may carry, and every determinism-
critical sink site together with the atoms reaching it.  An atom is either

* **direct** (``!desc``) — the value observably came from a
  nondeterministic source in this very function (wall clock, unseeded
  randomness, ``os.urandom``, ``uuid1/4``, ``id()``/``hash()``,
  ``next(iter(<set>))``), or
* **conditional** (``@callee``) — the value came out of a call, and is
  tainted exactly if that callee's return value is.

This module closes the loop: it resolves call atoms against the project
symbol table (imports, same-module functions, ``self.`` methods) and runs a
fixpoint over the call graph, so nondeterminism that flows *through* any
number of project-internal calls still reaches its sink report.  The
lattice is two-point (untainted < tainted) with provenance strings carried
for diagnostics; joins are unions, recursion converges because taint only
ever grows.

Precision notes (deliberate, documented limits): taint does not flow
through function *parameters* (a helper that formats a tainted argument is
invisible; the sink must see the tainted value or a tainted call), through
instance attributes across method boundaries, or through inheritance.
Suppressing the *source* line (``# repro-lint: disable=R002`` or ``=R100``)
kills the taint at birth — the suppression is the human assertion that the
nondeterminism is managed (masked timing field, injectable clock).
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Tuple

from repro.lint.index import CALL_ATOM, DIRECT_ATOM, FunctionInfo, ModuleSummary
from repro.lint.rules import LintConfig, Violation

#: Fully qualified function name: ``module.dotted.Class.method``.
_FunctionTable = Dict[str, Tuple[ModuleSummary, FunctionInfo]]


def _build_table(summaries: Mapping[str, ModuleSummary]) -> _FunctionTable:
    table: _FunctionTable = {}
    for summary in summaries.values():
        for qualname, info in summary.functions.items():
            table[f"{summary.module}.{qualname}"] = (summary, info)
    return table


def _resolve_call(
    raw: str,
    summary: ModuleSummary,
    class_name: Optional[str],
    table: _FunctionTable,
) -> Optional[str]:
    """Resolve a call atom to a fully qualified project function, or None."""
    if raw.startswith("self.") or raw.startswith("cls."):
        method = raw.split(".", 1)[1]
        if "." in method or class_name is None:
            return None
        candidate = f"{summary.module}.{class_name}.{method}"
        return candidate if candidate in table else None
    if "." not in raw:
        candidate = f"{summary.module}.{raw}"
        if candidate in table:
            return candidate
        target = summary.imports.get(raw)
        if target is not None and target in table:
            return target
        return None
    head, rest = raw.split(".", 1)
    base = summary.imports.get(head)
    if base is None:
        return None
    candidate = f"{base}.{rest}"
    return candidate if candidate in table else None


def _compute_function_taint(table: _FunctionTable) -> Dict[str, str]:
    """Fixpoint: fully qualified name -> provenance of its tainted return."""
    taint: Dict[str, str] = {}
    changed = True
    while changed:
        changed = False
        for name, (summary, info) in table.items():
            if name in taint:
                continue
            for atom in info.returns:
                if atom.startswith(DIRECT_ATOM):
                    taint[name] = atom[len(DIRECT_ATOM):]
                    changed = True
                    break
                if atom.startswith(CALL_ATOM):
                    target = _resolve_call(
                        atom[len(CALL_ATOM):], summary, info.class_name, table
                    )
                    if target is not None and target in taint:
                        taint[name] = f"{target}() [{taint[target]}]"
                        changed = True
                        break
    return taint


def _suppressed(summary: ModuleSummary, line: int, rule: str) -> bool:
    rules = summary.suppressions.get(line, frozenset())
    return rule in rules or "ALL" in rules


def check_taint(
    summaries: Mapping[str, ModuleSummary], config: LintConfig
) -> List[Violation]:
    """Run the R100 global fixpoint over the indexed project."""
    if not config.enabled("R100"):
        return []
    table = _build_table(summaries)
    taint = _compute_function_taint(table)

    violations: List[Violation] = []
    for summary, info in table.values():
        for sink in info.sinks:
            if _suppressed(summary, sink.line, "R100"):
                continue
            provenance: Optional[str] = None
            for atom in sink.atoms:
                if atom.startswith(DIRECT_ATOM):
                    provenance = atom[len(DIRECT_ATOM):]
                    break
                target = _resolve_call(
                    atom[len(CALL_ATOM):], summary, info.class_name, table
                )
                if target is not None and target in taint:
                    provenance = f"call to {target}() [{taint[target]}]"
                    break
            if provenance is not None:
                violations.append(
                    Violation(
                        path=summary.path,
                        line=sink.line,
                        col=sink.col,
                        rule="R100",
                        message=(
                            f"determinism-critical sink {sink.label} receives "
                            f"a value derived from {provenance}; route it "
                            "through a seeded stream / virtual clock or "
                            "suppress at the source if it is masked"
                        ),
                    )
                )
    return violations
