"""An iterative DNS resolver over in-process zones.

The resolver walks from the most specific hosted zone containing the query
name, follows NS delegations between hosted zones, caches positive answers
by (name, type), and optionally verifies signatures against a
:class:`KeyRing` — refusing tampered or unsigned records in secure mode.

The paper (§2) notes the circular dependency of DNS-based origin checks:
DNS lookups themselves need routing.  The resolver surfaces that hook via
an optional ``reachability`` predicate; when it returns False for a zone,
resolution fails just as it would when the bogus route black-holes the DNS
server.  The failure-injection tests use this to reproduce the paper's
criticism of the pure-DNS approach.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.dnssub.dnssec import KeyRing, verify_record
from repro.dnssub.records import RecordType, ResourceRecord
from repro.dnssub.zone import Zone, name_in_zone


class ResolutionError(Exception):
    """Raised when a name cannot be resolved."""


class Resolver:
    """Iterative resolver over a set of hosted zones."""

    def __init__(
        self,
        keyring: Optional[KeyRing] = None,
        secure: bool = False,
        reachability: Optional[Callable[[str], bool]] = None,
    ) -> None:
        if secure and keyring is None:
            raise ValueError("secure mode requires a keyring")
        self._zones: Dict[str, Zone] = {}
        self._cache: Dict[Tuple[str, RecordType], List[ResourceRecord]] = {}
        self.keyring = keyring
        self.secure = secure
        self.reachability = reachability
        self.queries = 0
        self.cache_hits = 0

    # -- zone management -----------------------------------------------------

    def host_zone(self, zone: Zone) -> None:
        if zone.apex in self._zones:
            raise ValueError(f"zone {zone.apex!r} is already hosted")
        self._zones[zone.apex] = zone

    def zone(self, apex: str) -> Zone:
        try:
            return self._zones[apex.lower().rstrip(".")]
        except KeyError:
            raise KeyError(f"zone {apex!r} is not hosted")

    def invalidate_cache(self) -> None:
        self._cache.clear()

    # -- resolution --------------------------------------------------------------

    def _best_zone_for(self, name: str) -> Optional[Zone]:
        """The hosted zone with the longest apex that contains ``name``."""
        best: Optional[Zone] = None
        for apex, zone in self._zones.items():
            if name_in_zone(name, apex):
                if best is None or len(apex) > len(best.apex):
                    best = zone
        return best

    def resolve(self, name: str, rtype: RecordType) -> List[ResourceRecord]:
        """Resolve (name, type); raises :class:`ResolutionError` on failure."""
        name = name.lower().rstrip(".")
        self.queries += 1
        cached = self._cache.get((name, rtype))
        if cached is not None:
            self.cache_hits += 1
            return list(cached)

        zone = self._best_zone_for(name)
        if zone is None:
            raise ResolutionError(f"no hosted zone covers {name!r}")
        if self.reachability is not None and not self.reachability(zone.apex):
            raise ResolutionError(
                f"zone {zone.apex!r} is unreachable (routing failure)"
            )

        records = zone.lookup(name, rtype)
        if not records:
            raise ResolutionError(f"no {rtype.value} records at {name!r}")

        if self.secure:
            assert self.keyring is not None
            verified = [
                r for r in records if verify_record(r, self.keyring, zone.apex)
            ]
            if not verified:
                raise ResolutionError(
                    f"all {rtype.value} records at {name!r} failed verification"
                )
            records = verified

        self._cache[(name, rtype)] = list(records)
        return list(records)

    def try_resolve(
        self, name: str, rtype: RecordType
    ) -> Optional[List[ResourceRecord]]:
        """Like :meth:`resolve` but returns None instead of raising."""
        try:
            return self.resolve(name, rtype)
        except ResolutionError:
            return None
