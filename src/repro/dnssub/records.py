"""DNS resource records, including the paper's MOASRR type.

Record data is kept as immutable value objects.  The ``MOASRR`` record for a
prefix carries the set of AS numbers authorised to originate it — the
"(prefix, origin AS) pairs stored in the originator's DNS" of Bates et al.
that §4.4 builds on.
"""

from __future__ import annotations

import enum
from typing import FrozenSet, Iterable, Optional, Tuple

from repro.net.addresses import Prefix
from repro.net.asn import ASN, validate_asn


class RecordType(enum.Enum):
    A = "A"
    NS = "NS"
    TXT = "TXT"
    SOA = "SOA"
    MOASRR = "MOASRR"  # the paper's proposed origin-AS record


class MoasRecordData:
    """Payload of a MOASRR record: the authorised origin AS set."""

    __slots__ = ("origins",)

    def __init__(self, origins: Iterable[ASN]) -> None:
        origin_set = frozenset(validate_asn(a) for a in origins)
        if not origin_set:
            raise ValueError("MOASRR must list at least one origin AS")
        object.__setattr__(self, "origins", origin_set)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("MoasRecordData is immutable")

    def authorises(self, asn: ASN) -> bool:
        return asn in self.origins

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, MoasRecordData):
            return NotImplemented
        return self.origins == other.origins

    def __hash__(self) -> int:
        return hash(self.origins)

    def __repr__(self) -> str:
        return f"MoasRecordData({sorted(self.origins)})"


def moasrr_name_for_prefix(prefix: Prefix) -> str:
    """The DNS name holding the MOASRR for ``prefix``.

    Follows the in-addr.arpa convention: the network address octets are
    reversed and the prefix length appended, e.g. ``10.2.0.0/16`` →
    ``16.0.0.2.10.moas.arpa``.  This keeps names hierarchical so zones can
    delegate along address-allocation boundaries.
    """
    octets = [
        str((prefix.network >> shift) & 0xFF) for shift in (24, 16, 8, 0)
    ]
    return f"{prefix.length}." + ".".join(reversed(octets)) + ".moas.arpa"


class ResourceRecord:
    """A DNS RR: (name, type, data, ttl) plus an optional signature blob."""

    __slots__ = ("name", "rtype", "data", "ttl", "signature")

    def __init__(
        self,
        name: str,
        rtype: RecordType,
        data: object,
        ttl: int = 3600,
        signature: Optional[bytes] = None,
    ) -> None:
        if not name:
            raise ValueError("record name cannot be empty")
        if ttl < 0:
            raise ValueError(f"TTL must be non-negative, got {ttl}")
        if rtype is RecordType.MOASRR and not isinstance(data, MoasRecordData):
            raise TypeError("MOASRR data must be MoasRecordData")
        object.__setattr__(self, "name", name.lower().rstrip("."))
        object.__setattr__(self, "rtype", rtype)
        object.__setattr__(self, "data", data)
        object.__setattr__(self, "ttl", int(ttl))
        object.__setattr__(self, "signature", signature)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("ResourceRecord is immutable")

    def with_signature(self, signature: bytes) -> "ResourceRecord":
        return ResourceRecord(self.name, self.rtype, self.data, self.ttl, signature)

    def canonical_bytes(self) -> bytes:
        """The byte string covered by a signature."""
        return f"{self.name}|{self.rtype.value}|{self.data!r}|{self.ttl}".encode()

    def _key(self) -> Tuple:
        return (self.name, self.rtype, self.data, self.ttl)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ResourceRecord):
            return NotImplemented
        return self._key() == other._key()

    def __hash__(self) -> int:
        return hash(self._key())

    def __repr__(self) -> str:
        signed = ", signed" if self.signature else ""
        return f"RR({self.name} {self.rtype.value} {self.data!r}{signed})"
