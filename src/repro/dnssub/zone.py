"""DNS zones.

A zone owns a suffix of the namespace (its *apex*) and the records under
it.  Zones support delegation via NS records, which the resolver follows.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from repro.dnssub.records import RecordType, ResourceRecord


class ZoneError(ValueError):
    """Raised for records that do not belong in the zone."""


def name_in_zone(name: str, apex: str) -> bool:
    """True if ``name`` is at or below ``apex``."""
    name = name.lower().rstrip(".")
    apex = apex.lower().rstrip(".")
    return name == apex or name.endswith("." + apex)


class Zone:
    """One DNS zone: an apex name and the records at or below it."""

    def __init__(self, apex: str) -> None:
        if not apex:
            raise ZoneError("zone apex cannot be empty")
        self.apex = apex.lower().rstrip(".")
        self._records: Dict[Tuple[str, RecordType], List[ResourceRecord]] = {}

    def add(self, record: ResourceRecord) -> None:
        if not name_in_zone(record.name, self.apex):
            raise ZoneError(
                f"record name {record.name!r} is outside zone {self.apex!r}"
            )
        self._records.setdefault((record.name, record.rtype), []).append(record)

    def remove(self, name: str, rtype: RecordType) -> int:
        """Remove all records of (name, rtype); returns how many were cut."""
        key = (name.lower().rstrip("."), rtype)
        removed = self._records.pop(key, [])
        return len(removed)

    def replace(self, record: ResourceRecord) -> None:
        """Replace the RRset at (name, type) with this single record."""
        self.remove(record.name, record.rtype)
        self.add(record)

    def lookup(self, name: str, rtype: RecordType) -> List[ResourceRecord]:
        return list(self._records.get((name.lower().rstrip("."), rtype), []))

    def delegations(self) -> Iterator[ResourceRecord]:
        """All NS records below the apex (zone cuts)."""
        for (name, rtype), records in self._records.items():
            if rtype is RecordType.NS and name != self.apex:
                yield from records

    def records(self) -> Iterator[ResourceRecord]:
        for rrset in self._records.values():
            yield from rrset

    def __len__(self) -> int:
        return sum(len(v) for v in self._records.values())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Zone({self.apex!r}, {len(self)} records)"
