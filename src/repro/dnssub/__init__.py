"""A small DNS substrate.

§4.4 of the paper resolves MOAS alarms by looking up the authorised origin
AS set for a prefix in the DNS, via a dedicated ``MOASRR`` resource record
(the Bates et al. proposal), optionally protected by DNSSEC.  This package
implements the parts of the DNS that pipeline needs: zones holding resource
records, an iterative resolver with caching, and an HMAC-based signing
layer standing in for DNSSEC (the trust semantics — detect tampered
records — are what matters to the detection pipeline, not the RSA maths).
"""

from repro.dnssub.records import (
    MoasRecordData,
    RecordType,
    ResourceRecord,
    moasrr_name_for_prefix,
)
from repro.dnssub.zone import Zone, ZoneError
from repro.dnssub.resolver import Resolver, ResolutionError
from repro.dnssub.dnssec import KeyRing, SignatureError, sign_record, verify_record

__all__ = [
    "RecordType",
    "ResourceRecord",
    "MoasRecordData",
    "moasrr_name_for_prefix",
    "Zone",
    "ZoneError",
    "Resolver",
    "ResolutionError",
    "KeyRing",
    "SignatureError",
    "sign_record",
    "verify_record",
]
