"""A DNSSEC stand-in.

The paper invokes DNS security ([16, 6]) to "assure the correctness of the
DNS database" used for origin verification.  What the detection pipeline
needs from DNSSEC is exactly one property: a consumer holding a zone's key
can tell an authentic record from a forged or tampered one.  We provide
that property with HMAC-SHA256 over the record's canonical bytes, keyed per
zone.  (Public-key DNSSEC would separate signing from verification keys;
for an in-process simulation the distinction buys nothing, and the paper's
threat model — a forged MOASRR — is exercised identically.)
"""

from __future__ import annotations

import hashlib
import hmac
from typing import Dict

from repro.dnssub.records import ResourceRecord


class SignatureError(Exception):
    """Raised when verification fails or a key is missing."""


class KeyRing:
    """Per-zone signing keys, derived deterministically from a master secret."""

    def __init__(self, master_secret: bytes = b"repro-dnssec") -> None:
        self._master = master_secret
        self._keys: Dict[str, bytes] = {}

    def key_for_zone(self, apex: str) -> bytes:
        apex = apex.lower().rstrip(".")
        key = self._keys.get(apex)
        if key is None:
            key = hashlib.sha256(self._master + b"|" + apex.encode()).digest()
            self._keys[apex] = key
        return key


def sign_record(record: ResourceRecord, keyring: KeyRing, apex: str) -> ResourceRecord:
    """Return a copy of ``record`` carrying a valid signature for ``apex``."""
    key = keyring.key_for_zone(apex)
    signature = hmac.new(key, record.canonical_bytes(), hashlib.sha256).digest()
    return record.with_signature(signature)


def verify_record(record: ResourceRecord, keyring: KeyRing, apex: str) -> bool:
    """True if the record carries a valid signature under ``apex``'s key.

    Unsigned records verify as False — a secure consumer treats them as
    untrustworthy, which is how forged-record injection is caught.
    """
    if record.signature is None:
        return False
    key = keyring.key_for_zone(apex)
    expected = hmac.new(key, record.canonical_bytes(), hashlib.sha256).digest()
    return hmac.compare_digest(expected, record.signature)
