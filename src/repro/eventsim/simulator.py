"""The simulation driver.

:class:`Simulator` owns the clock, the event queue, the random streams and
the trace recorder, and exposes ``schedule``/``run`` to protocol code.  The
run loop pops events in deterministic order and advances virtual time; it
never moves time backwards and refuses events scheduled in the past.
"""

from __future__ import annotations

import gc
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.eventsim.event import Event, EventHandle
from repro.eventsim.queue import EventQueue
from repro.eventsim.rng import RandomStreams
from repro.eventsim.trace import TraceRecorder
from repro.obs.metrics import MetricsRegistry
from repro.sanitize import InvariantError, sanitizer_enabled


class SimulationError(RuntimeError):
    """Raised for scheduling violations and runaway simulations."""


class SnapshotError(RuntimeError):
    """Raised when simulation state cannot be captured or restored safely.

    Typical causes: snapshotting mid-event, a live queue whose events are
    not all accounted for by component state (a foreign ``schedule_at``
    callback the protocol layer knows nothing about), or restoring onto a
    network built from a different topology.
    """


class RearmPlan:
    """Deferred event re-scheduling collected during a snapshot restore.

    Components restore their *state* first and register an arming callback
    for every event they had pending, keyed by the event's original
    ``(time, priority, seq)`` sort key.  :meth:`execute` then arms them in
    ascending original order, so the fresh sequence numbers assigned by the
    queue ascend in exactly the captured relative order and same-time /
    same-priority ties break identically to the cold run.
    """

    def __init__(self) -> None:
        self._entries: List[Tuple[Tuple[float, ...], Callable[[], None]]] = []

    def add(self, sort_key: Tuple[float, ...], arm: Callable[[], None]) -> None:
        # Keys are usually the exact (time, priority, seq) triple; batched
        # link deliveries extend it with a batch index.  Mixed lengths sort
        # fine because no event shares another's full triple.
        self._entries.append((tuple(sort_key), arm))

    def execute(self) -> int:
        """Arm every pending event in original queue order; returns count."""
        self._entries.sort(key=lambda entry: entry[0])
        for _, arm in self._entries:
            arm()
        return len(self._entries)

    def __len__(self) -> int:
        return len(self._entries)


class Simulator:
    """Deterministic discrete-event simulator.

    Parameters
    ----------
    seed:
        Master seed for the simulator's :class:`RandomStreams`.
    trace_categories:
        If given, only these trace categories are recorded.
    max_events:
        Safety valve: a run that processes more than this many events raises
        :class:`SimulationError` instead of spinning forever.  BGP on a
        static workload always quiesces, so hitting the cap indicates a bug
        (e.g. a route oscillation from an ill-formed policy).
    metrics:
        Optional :class:`~repro.obs.metrics.MetricsRegistry`.  When given,
        the run loop counts dispatched events (``sim.events``) and tracks
        queue depth (``sim.queue_depth``); protocol modules holding this
        simulator pick the registry up and register their own instruments.
        When None (the default), instrumentation sites reduce to a single
        ``is not None`` attribute test.  The queue-depth gauge is *sampled*
        every :data:`QUEUE_DEPTH_SAMPLE_INTERVAL` events (and once at the
        end of every ``run``) rather than written per event — the cadence
        is a pure function of the event count, so instrumented runs stay
        deterministic while the per-event overhead disappears.
    """

    #: Sampling stride of the ``sim.queue_depth`` gauge within ``run()``.
    QUEUE_DEPTH_SAMPLE_INTERVAL = 64

    # Not snapshot state: pending events are owned (and re-armed) by the
    # components that scheduled them, so the queue is deliberately not
    # captured; the rest is construction config, observability wiring and
    # lifecycle plumbing recreated when the host network is rebuilt.
    _SNAPSHOT_WAIVED = frozenset(
        {
            "queue",
            "sanitize",
            "trace",
            "max_events",
            "metrics",
            "_m_events",
            "_m_queue_depth",
            "_reset_hooks",
        }
    )

    def __init__(
        self,
        seed: int = 0,
        trace_categories: Optional[set] = None,
        max_events: int = 5_000_000,
        sanitize: Optional[bool] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self.now = 0.0
        self.queue = EventQueue()
        self.random = RandomStreams(seed)
        # Resolved once per simulator (argument wins over REPRO_SANITIZE)
        # so the per-event flag test below is a plain attribute read.
        self.sanitize = sanitizer_enabled(sanitize)
        self.trace = TraceRecorder(trace_categories, check_monotonic=self.sanitize)
        self.max_events = max_events
        self.events_processed = 0
        self._running = False
        self._sequence = 0
        self.metrics = metrics
        # "is not None", not truthiness: an empty registry is falsy.
        self._m_events = (
            metrics.counter("sim.events") if metrics is not None else None
        )
        self._m_queue_depth = (
            metrics.gauge("sim.queue_depth") if metrics is not None else None
        )
        # Components with per-run caches (speakers) register a callback to
        # be cleared on reset(); the simulator owns the lifecycle, so it is
        # the one place that can reach them all.
        self._reset_hooks: List[Callable[[], None]] = []

    def next_sequence(self) -> int:
        """A globally monotonic counter for sub-tick ordering needs (e.g.
        route-arrival order within one simulated instant)."""
        self._sequence += 1
        return self._sequence

    def account_extra_events(self, count: int) -> None:
        """Credit ``count`` logical events beyond the one currently firing.

        Batched link delivery coalesces k same-link same-tick messages into
        one queue event; calling this with ``k - 1`` keeps
        ``events_processed`` (and everything derived from it — outcome
        counters, ``sim.events``, the max-events guard) bit-identical to
        the unbatched engine, where each message consumed its own event.
        """
        if count > 0:
            self.events_processed += count

    # -- scheduling --------------------------------------------------------

    def schedule_at(
        self,
        time: float,
        action: Callable[[], Any],
        priority: int = 0,
        label: str = "",
    ) -> EventHandle:
        """Schedule ``action`` at absolute time ``time``."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule at t={time:.6f}, current time is {self.now:.6f}"
            )
        event = Event(time, action, priority=priority, label=label)
        self.queue.push(event)
        return EventHandle(event)

    def schedule_after(
        self,
        delay: float,
        action: Callable[[], Any],
        priority: int = 0,
        label: str = "",
    ) -> EventHandle:
        """Schedule ``action`` ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"delay must be non-negative, got {delay!r}")
        return self.schedule_at(self.now + delay, action, priority=priority, label=label)

    # -- running -----------------------------------------------------------

    def run(self, until: Optional[float] = None) -> int:
        """Process events until the queue drains or ``until`` is reached.

        Returns the number of events processed by this call.  When ``until``
        is given, the clock is advanced to exactly ``until`` on return even
        if the queue drained earlier (so repeated bounded runs compose).
        """
        if self._running:
            raise SimulationError("run() is not reentrant")
        self._running = True
        started_at = self.events_processed
        sample_stride = self.QUEUE_DEPTH_SAMPLE_INTERVAL
        queue = self.queue
        # Automatic cycle collection is suspended for the duration of the
        # run: gen-2 passes scan the whole O(topology) object graph and
        # trigger O(events) times, an O(n^2) wall-time term that profiled
        # at ~35% of a 5000-AS convergence.  Per-event garbage is acyclic
        # (events, flights and RIB entries free by refcount; the queue's
        # on_cancel back-reference is broken explicitly at pop/clear), so
        # deferring cycle collection until after the run loses nothing.
        gc_was_enabled = gc.isenabled()
        if gc_was_enabled:
            gc.disable()
        try:
            while True:
                event = queue.pop_due(until)
                if event is None:
                    break
                if self.sanitize and event.time < self.now:
                    raise InvariantError(
                        f"event {event.label!r} fires at t={event.time:.6f}, "
                        f"before current time {self.now:.6f}"
                    )
                self.now = event.time
                event.fire()
                self.events_processed += 1
                if (
                    self._m_queue_depth is not None
                    and self.events_processed % sample_stride == 0
                ):
                    self._m_queue_depth.set(float(len(queue)))
                if self.events_processed > self.max_events:
                    raise SimulationError(
                        f"exceeded max_events={self.max_events}; "
                        "simulation is likely diverging"
                    )
        finally:
            self._running = False
            processed = self.events_processed - started_at
            if self._m_events is not None and processed:
                self._m_events.inc(processed)
                assert self._m_queue_depth is not None
                self._m_queue_depth.set(float(len(queue)))
        if until is not None and until > self.now:
            self.now = until
        return processed

    def run_to_quiescence(self) -> int:
        """Run until no events remain; returns events processed."""
        return self.run(until=None)

    def add_reset_hook(self, hook: Callable[[], None]) -> None:
        """Register a callback run at the end of every :meth:`reset`.

        Speakers use this to drop per-run caches (export/prepend memos)
        whose entries would otherwise accumulate across reused networks.
        """
        self._reset_hooks.append(hook)

    # -- snapshot / restore ------------------------------------------------

    def snapshot_state(self) -> Dict[str, Any]:
        """Capture clock, counters and RNG stream states (not the queue).

        Pending events are owned by the components that scheduled them
        (links, timers); each component captures its own and re-arms through
        a :class:`RearmPlan` on restore.  Snapshots are only meaningful
        between events — taking one mid-run is an error.
        """
        if self._running:
            raise SnapshotError("cannot snapshot while run() is active")
        return {
            "now": self.now,
            "sequence": self._sequence,
            "events_processed": self.events_processed,
            "rng_streams": self.random.snapshot_state(),
        }

    def restore_state(self, state: Dict[str, Any]) -> None:
        """Overwrite clock/counters/RNG from a snapshot and clear the queue.

        Callers are expected to follow up by re-arming component events via
        a :class:`RearmPlan`; after that the simulator is indistinguishable
        from the one that produced the snapshot.
        """
        if self._running:
            raise SnapshotError("cannot restore while run() is active")
        self.queue.clear()
        self.now = float(state["now"])
        self._sequence = int(state["sequence"])
        self.events_processed = int(state["events_processed"])
        self.random.restore_state(state["rng_streams"])
        # The trace guard only ever relaxes backwards; restored events fire
        # at or after the snapshot time, which is at or after zero.
        self.trace.rewind_monotonic_guard()

    def reset(self) -> None:
        """Discard pending events and rewind the clock (streams are kept).

        The sub-tick sequence counter rewinds too: a reused simulator must
        hand out the same ``installed_seq`` values as a fresh one, or
        prefer-oldest tie-breaks stop being reproducible across resets.
        Reset hooks fire last, so components observe the rewound state.
        """
        self.queue.clear()
        self.now = 0.0
        self.events_processed = 0
        self._sequence = 0
        self.trace.rewind_monotonic_guard()
        for hook in self._reset_hooks:
            hook()
