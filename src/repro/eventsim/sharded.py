"""Sharded deterministic simulation: the generic engine layer.

A sharded run partitions speakers across N worker processes.  Each shard
owns its speakers' event queue, RIBs, timers and intern table; cross-shard
messages travel as batched mailbox entries exchanged at barriers.  The
engine promises **bit-identity** with the serial simulator: same outcomes,
same alarm-log order, same (masked) metric snapshots.

The key idea is a bounded *order key* per event that reproduces the serial
engine's global ``(time, priority, seq)`` total order without a global
sequence counter:

``order_key = (epoch, rank, push_index)``

* ``epoch`` — a coordinator-assigned monotone counter, one per barrier
  tick plus one per setup-ops phase;
* ``rank`` — the *firing* event's global rank among all events due at its
  tick (computed by a k-way merge of the shards' sorted due-key lists at
  the barrier), or the global op index during a setup phase;
* ``push_index`` — a per-shard monotone push counter, so pushes made by
  one firing order among themselves.

Because links have strictly positive delay and timers strictly positive
durations, **no event ever schedules another event at its own tick** (the
lookahead property: the minimum cross-shard link delay bounds how soon a
message can become due).  Every event due at tick T therefore existed
before T's barrier, so the rank exchange sees the complete tick and the
serial seq order within a tick is exactly the lexicographic order of
``(parent firing order, push index)`` — which is what the order key
encodes.  Events across ticks order by time first, so the keys only ever
break ties among same-tick events, where they are exact.
"""

from __future__ import annotations

import heapq
from typing import (
    Any,
    Callable,
    Dict,
    Hashable,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.eventsim.event import Event, EventHandle
from repro.eventsim.simulator import SimulationError, Simulator
from repro.obs.metrics import MetricsRegistry

#: (epoch, firing rank within epoch, push index) — see module docstring.
OrderKey = Tuple[int, int, int]

#: (priority, order_key) — the within-tick part of an event's total order,
#: reported at barriers for the rank exchange.
DueKey = Tuple[int, OrderKey]


def partition_speakers(
    nodes: Sequence[Hashable],
    edges: Iterable[Tuple[Hashable, Hashable]],
    n_shards: int,
) -> Dict[Hashable, int]:
    """Deterministic greedy edge-cut partition of ``nodes`` into shards.

    METIS-lite: nodes are placed highest-degree first (ties broken by node
    order), each onto the shard holding most of its already-placed
    neighbours among the shards still under the size cap ``ceil(n/N)``
    (ties: lowest shard index).  Capping keeps shards balanced so barrier
    windows are not dominated by one oversized shard; neighbour affinity
    keeps the edge cut — and with it the cross-shard mailbox traffic —
    low.  Pure function of its inputs: every worker and every rerun
    computes the identical assignment.
    """
    if n_shards < 1:
        raise ValueError(f"need at least one shard, got {n_shards}")
    ordered = sorted(nodes)
    if not ordered:
        return {}
    adjacency: Dict[Hashable, List[Hashable]] = {node: [] for node in ordered}
    for a, b in edges:
        adjacency[a].append(b)
        adjacency[b].append(a)
    cap = -(-len(ordered) // n_shards)  # ceil
    assignment: Dict[Hashable, int] = {}
    sizes = [0] * n_shards
    by_degree = sorted(ordered, key=lambda node: (-len(adjacency[node]), node))
    for node in by_degree:
        best_shard = -1
        best_affinity = -1
        for shard in range(n_shards):
            if sizes[shard] >= cap:
                continue
            affinity = sum(
                1 for peer in adjacency[node] if assignment.get(peer) == shard
            )
            if affinity > best_affinity:
                best_affinity = affinity
                best_shard = shard
        assignment[node] = best_shard
        sizes[best_shard] += 1
    return assignment


class KeyedEvent(Event):
    """An event carrying the global order key of its creation point."""

    __slots__ = ("order_key",)

    def __init__(
        self,
        time: float,
        action: Callable[[], Any],
        order_key: OrderKey,
        priority: int = 0,
        label: str = "",
    ) -> None:
        super().__init__(time, action, priority=priority, label=label)
        self.order_key = order_key


class KeyedEventQueue:
    """Event queue ordered by ``(time, priority, order_key)``.

    The serial calendar queue orders same-tick events by insertion
    sequence; a shard cannot, because remote events arriving at a barrier
    must interleave with locally-pushed ones at their *global* positions.
    This queue therefore sorts on the carried order key.  It implements
    the same container contract as :class:`~repro.eventsim.queue.EventQueue`
    (push / pop / pop_due / peek_time / note_cancelled / drain / clear /
    ``last_seq`` / exact live ``len``), plus :meth:`due_keys` — the sorted
    per-tick key report the barrier rank exchange consumes.
    """

    def __init__(self) -> None:
        self._heap: List[Tuple[float, int, OrderKey, KeyedEvent]] = []
        self._next_seq = 0
        self._live = 0

    def __len__(self) -> int:
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0

    @property
    def last_seq(self) -> int:
        """The most recently assigned sequence number (-1 before any push)."""
        return self._next_seq - 1

    def push(self, event: Event) -> None:
        """Insert an event; assigns its (shard-local) sequence number."""
        if not isinstance(event, KeyedEvent):
            raise TypeError("KeyedEventQueue only accepts KeyedEvent")
        if event.seq is not None:
            raise ValueError("event is already scheduled")
        event.seq = self._next_seq
        self._next_seq += 1
        event.on_cancel = self.note_cancelled
        heapq.heappush(
            self._heap, (event.time, event.priority, event.order_key, event)
        )
        self._live += 1

    def pop(self) -> Optional[Event]:
        """Remove and return the earliest live event, or ``None`` if empty."""
        while self._heap:
            _, _, _, event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self._live -= 1
            event.on_cancel = None
            return event
        return None

    def pop_due(self, until: Optional[float] = None) -> Optional[Event]:
        """Pop the head if it fires at or before ``until``."""
        time = self.peek_time()
        if time is None or (until is not None and time > until):
            return None
        return self.pop()

    def peek_time(self) -> Optional[float]:
        """Return the firing time of the earliest live event, if any."""
        while self._heap and self._heap[0][3].cancelled:
            heapq.heappop(self._heap)
        if not self._heap:
            return None
        return self._heap[0][0]

    def due_keys(self, time: float) -> List[DueKey]:
        """Sorted ``(priority, order_key)`` of live events due at ``time``.

        This is the shard's contribution to the barrier rank exchange.
        O(queue size) per tick — a linear scan beats maintaining a
        per-tick index because every tick is scanned exactly once.
        """
        keys = [
            (event.priority, event.order_key)
            for event_time, _, _, event in self._heap
            if event_time == time and not event.cancelled
        ]
        keys.sort()
        return keys

    def note_cancelled(self) -> None:
        """Adjust the live count after a held event was cancelled."""
        if self._live > 0:
            self._live -= 1

    def drain(self) -> Iterator[Event]:
        """Yield remaining live events in firing order, emptying the queue."""
        while True:
            event = self.pop()
            if event is None:
                return
            yield event

    def clear(self) -> None:
        for _, _, _, event in self._heap:
            event.on_cancel = None
        self._heap.clear()
        self._live = 0


class ShardSimulator(Simulator):
    """One shard's simulator: serial semantics under external clocking.

    Differences from the serial :class:`Simulator`:

    * the queue is a :class:`KeyedEventQueue`, and every scheduled event is
      stamped with the order key of the current *firing context* — either
      the event being fired (``(epoch, rank, push)``) or the setup op in
      progress (``(epoch, op_index, push)``);
    * time advances via :meth:`process_tick` under coordinator control
      instead of a free-running :meth:`run` loop;
    * a push at the current tick while a tick is being processed raises —
      that is the no-same-tick-children invariant the whole barrier design
      rests on (positive link delays and timer durations guarantee it for
      the BGP workload; this check turns a silent ordering bug into a
      loud error).
    """

    # Firing-context counters and the remote-push flag are transient
    # coordination state, reconstructed by the driver protocol; they are
    # never part of a captured baseline.
    _SNAPSHOT_WAIVED = Simulator._SNAPSHOT_WAIVED | frozenset(
        {"shard_id", "_epoch", "_rank", "_push_count", "_in_tick", "_remote"}
    )

    def __init__(
        self,
        shard_id: int,
        seed: int = 0,
        trace_categories: Optional[set] = None,
        max_events: int = 5_000_000,
        sanitize: Optional[bool] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        super().__init__(
            seed=seed,
            trace_categories=trace_categories,
            max_events=max_events,
            sanitize=sanitize,
            metrics=metrics,
        )
        self.shard_id = shard_id
        self.queue: KeyedEventQueue = KeyedEventQueue()  # type: ignore[assignment]
        self._epoch = 0
        self._rank = 0
        self._push_count = 0
        self._in_tick = False
        self._remote = False

    # -- firing context ------------------------------------------------------

    @property
    def order_context(self) -> Tuple[int, int]:
        """The ``(epoch, rank)`` of the firing (or op) in progress.

        Alarm and trace records are tagged with this so the coordinator can
        merge per-shard logs back into the exact serial order.
        """
        return (self._epoch, self._rank)

    @property
    def firing_token(self) -> Tuple[int, int]:
        """Identity of the current firing, for batch-coalescing guards."""
        return (self._epoch, self._rank)

    @property
    def push_count(self) -> int:
        """Monotone count of pushes (local events and outbox appends)."""
        return self._push_count

    def next_push_index(self) -> int:
        """Claim the next push slot in the current firing context.

        Used for local pushes by :meth:`schedule_at` and for cross-shard
        outbox appends by the boundary links — one shared counter, because
        the serial engine assigned one shared sequence to both kinds.
        """
        index = self._push_count
        self._push_count += 1
        return index

    # -- scheduling ----------------------------------------------------------

    def schedule_at(
        self,
        time: float,
        action: Callable[[], Any],
        priority: int = 0,
        label: str = "",
    ) -> EventHandle:
        """Schedule ``action``, stamped with the firing context's key."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule at t={time:.6f}, current time is {self.now:.6f}"
            )
        if self._in_tick and time <= self.now:
            raise SimulationError(
                f"shard {self.shard_id}: event scheduled at the current tick "
                f"t={time:.6f} while processing it — same-tick children "
                "break the barrier order (links need positive delay, "
                "timers positive durations)"
            )
        key: OrderKey = (self._epoch, self._rank, self.next_push_index())
        event = KeyedEvent(time, action, key, priority=priority, label=label)
        self.queue.push(event)
        return EventHandle(event)

    def schedule_remote(
        self,
        time: float,
        order_key: OrderKey,
        action: Callable[[], Any],
        priority: int = 0,
        label: str = "",
    ) -> EventHandle:
        """Insert an inbound cross-shard event under its *carried* key.

        The key was minted on the sending shard at send time; inserting it
        verbatim is what lets remote deliveries interleave with local
        events at their exact serial positions.
        """
        if time < self.now:
            raise SimulationError(
                f"remote event at t={time:.6f} is in the past "
                f"(now={self.now:.6f}); barrier lookahead was violated"
            )
        event = KeyedEvent(time, action, order_key, priority=priority, label=label)
        self.queue.push(event)
        return EventHandle(event)

    # -- coordinator-driven time ---------------------------------------------

    def begin_ops(self, epoch: int, now: Optional[float] = None) -> None:
        """Enter a setup-ops phase: context becomes ``(epoch, op_index)``.

        ``now``, when given, aligns this shard's clock with the global
        barrier time — a shard idle through the last ticks of a phase has
        a stale local clock, and ops must schedule from the global one.
        """
        if now is not None:
            if now < self.now:
                raise SimulationError(
                    f"cannot rewind shard clock from {self.now:.6f} to {now:.6f}"
                )
            self.now = now
        self._epoch = epoch
        self._rank = 0

    def begin_op(self, op_index: int) -> None:
        """Mark the start of global setup op ``op_index``."""
        self._rank = op_index

    def due_report(self, time: float) -> List[DueKey]:
        """This shard's sorted due keys at ``time`` (rank-exchange input)."""
        return self.queue.due_keys(time)

    def process_tick(
        self,
        time: float,
        epoch: int,
        due: Sequence[DueKey],
        ranks: Sequence[int],
    ) -> int:
        """Fire every event due at exactly ``time``; returns events fired.

        ``due`` is the key list this shard reported for the tick and
        ``ranks`` the coordinator's aligned global ranks.  Events cancelled
        between report and pop are skipped by advancing the cursor — their
        rank slots burn unused, which matches the serial engine, where a
        cancelled event's sequence number is likewise never reused.
        """
        if self._running:
            raise SimulationError("process_tick() is not reentrant")
        if len(due) != len(ranks):
            raise SimulationError(
                f"rank exchange mismatch: {len(due)} due keys, {len(ranks)} ranks"
            )
        self._running = True
        self._in_tick = True
        self._epoch = epoch
        started_at = self.events_processed
        sample_stride = self.QUEUE_DEPTH_SAMPLE_INTERVAL
        queue = self.queue
        cursor = 0
        try:
            while True:
                head = queue.peek_time()
                if head is None or head != time:
                    break
                event = queue.pop()
                assert event is not None and isinstance(event, KeyedEvent)
                key: DueKey = (event.priority, event.order_key)
                while cursor < len(due) and due[cursor] != key:
                    cursor += 1
                if cursor >= len(due):
                    raise SimulationError(
                        f"shard {self.shard_id}: event {event.label!r} with "
                        f"key {key!r} missing from the tick's rank exchange"
                    )
                self._rank = ranks[cursor]
                cursor += 1
                self.now = event.time
                event.fire()
                self.events_processed += 1
                if (
                    self._m_queue_depth is not None
                    and self.events_processed % sample_stride == 0
                ):
                    self._m_queue_depth.set(float(len(queue)))
                if self.events_processed > self.max_events:
                    raise SimulationError(
                        f"exceeded max_events={self.max_events}; "
                        "simulation is likely diverging"
                    )
        finally:
            self._running = False
            self._in_tick = False
            processed = self.events_processed - started_at
            if self._m_events is not None and processed:
                self._m_events.inc(processed)
                assert self._m_queue_depth is not None
                self._m_queue_depth.set(float(len(queue)))
        if time > self.now:
            # The shard had only cancelled events at the tick: still keep
            # the clock in step with the barrier.
            self.now = time
        return processed

    def solo_ranks(self, due: Sequence[DueKey]) -> List[int]:
        """Ranks for a tick this shard owns alone: its local order is the
        global order."""
        return list(range(len(due)))

    def run(self, until: Optional[float] = None) -> int:
        """Free-running is a serial-engine affordance; shards are clocked
        by the coordinator."""
        raise SimulationError(
            "ShardSimulator advances via process_tick(), not run()"
        )
