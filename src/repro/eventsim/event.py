"""Simulation events.

An :class:`Event` couples a firing time with a callback.  Events are ordered
by ``(time, priority, seq)``: the sequence number is assigned by the queue at
insertion and guarantees a total, deterministic order even when many events
share a timestamp.  This is the property that makes whole-simulation replays
reproducible.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Optional


class Event:
    """A scheduled callback.

    Parameters
    ----------
    time:
        Absolute simulation time at which the event fires.
    action:
        Zero-argument callable invoked when the event fires.
    priority:
        Secondary ordering key; lower fires first among same-time events.
        Protocol code rarely needs this — the default of 0 is almost always
        right — but the kernel uses it to order timer expiry after message
        delivery at identical timestamps.
    label:
        Free-form description used by traces and ``repr``.
    """

    __slots__ = (
        "time", "action", "priority", "label", "seq", "cancelled", "on_cancel",
    )

    _seq_counter = itertools.count()

    def __init__(
        self,
        time: float,
        action: Callable[[], Any],
        priority: int = 0,
        label: str = "",
    ) -> None:
        if time < 0:
            raise ValueError(f"event time must be non-negative, got {time!r}")
        if not callable(action):
            raise TypeError("event action must be callable")
        self.time = float(time)
        self.action = action
        self.priority = int(priority)
        self.label = label
        self.seq: Optional[int] = None  # assigned by the queue
        self.cancelled = False
        # Set by the queue while the event is in the heap, cleared at pop:
        # the queue's live count must see cancellations as they happen, not
        # at lazy-drop time, or len(queue) overcounts between the two.
        self.on_cancel: Optional[Callable[[], None]] = None

    def sort_key(self) -> tuple:
        """Total-order key; valid only after the queue assigned ``seq``."""
        if self.seq is None:
            raise RuntimeError("event has not been scheduled")
        return (self.time, self.priority, self.seq)

    def cancel(self) -> None:
        """Mark the event so the queue skips it at pop time (lazy deletion).

        Idempotent; notifies the owning queue (if any) exactly once so its
        live count stays exact.
        """
        if self.cancelled:
            return
        self.cancelled = True
        if self.on_cancel is not None:
            self.on_cancel()
            self.on_cancel = None

    def fire(self) -> Any:
        """Run the action unless the event has been cancelled."""
        if self.cancelled:
            return None
        return self.action()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"Event(t={self.time:.6f}, label={self.label!r}, {state})"


class EventHandle:
    """Opaque handle returned by the simulator's ``schedule`` methods.

    Holding a handle allows the caller to cancel the underlying event without
    being exposed to queue internals.
    """

    __slots__ = ("_event",)

    def __init__(self, event: Event) -> None:
        self._event = event

    @property
    def time(self) -> float:
        return self._event.time

    @property
    def cancelled(self) -> bool:
        return self._event.cancelled

    @property
    def sort_key(self) -> tuple:
        """The underlying event's ``(time, priority, seq)`` total-order key.

        Snapshot code records this so a restore can re-arm pending events in
        the exact relative order the original queue would have fired them.
        """
        return self._event.sort_key()

    def cancel(self) -> None:
        self._event.cancel()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"EventHandle({self._event!r})"
