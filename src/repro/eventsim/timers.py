"""One-shot and periodic timers built on the simulator.

BGP uses several per-session timers (MRAI, KeepAlive, Hold).  These classes
wrap the raw schedule/cancel dance so protocol code can say
``timer.restart()`` instead of juggling event handles.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.eventsim.event import EventHandle
from repro.eventsim.simulator import Simulator


class Timer:
    """A restartable one-shot timer.

    The timer is *not* armed at construction; call :meth:`start`.  Starting a
    running timer is an error — use :meth:`restart` to re-arm.
    """

    def __init__(
        self,
        sim: Simulator,
        duration: float,
        action: Callable[[], Any],
        label: str = "timer",
    ) -> None:
        if duration < 0:
            raise ValueError(f"duration must be non-negative, got {duration!r}")
        self.sim = sim
        self.duration = float(duration)
        self.action = action
        self.label = label
        self._handle: Optional[EventHandle] = None

    @property
    def running(self) -> bool:
        return self._handle is not None and not self._handle.cancelled

    @property
    def expires_at(self) -> Optional[float]:
        if not self.running:
            return None
        assert self._handle is not None
        return self._handle.time

    @property
    def sort_key(self) -> Optional[tuple]:
        """Queue sort key of the pending expiry, or None when not running."""
        if not self.running:
            return None
        assert self._handle is not None
        return self._handle.sort_key

    def start(self) -> None:
        if self.running:
            raise RuntimeError(f"timer {self.label!r} is already running")
        self._handle = self.sim.schedule_after(
            self.duration, self._fire, priority=1, label=self.label
        )

    def stop(self) -> None:
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None

    def restart(self) -> None:
        self.stop()
        self.start()

    def resume_at(self, time: float) -> None:
        """Re-arm at an absolute expiry time (snapshot restore path).

        Unlike :meth:`start`, which measures ``duration`` from now, this
        schedules the expiry at the exact simulation time captured in a
        snapshot, preserving the remaining (not the full) interval.
        """
        if self.running:
            raise RuntimeError(f"timer {self.label!r} is already running")
        self._handle = self.sim.schedule_at(
            time, self._fire, priority=1, label=self.label
        )

    def _fire(self) -> None:
        self._handle = None
        self.action()


class PeriodicTimer:
    """A timer that re-arms itself after each expiry until stopped."""

    def __init__(
        self,
        sim: Simulator,
        period: float,
        action: Callable[[], Any],
        label: str = "periodic",
    ) -> None:
        if period <= 0:
            raise ValueError(f"period must be positive, got {period!r}")
        self.sim = sim
        self.period = float(period)
        self.action = action
        self.label = label
        self._handle: Optional[EventHandle] = None
        self._stopped = True

    @property
    def running(self) -> bool:
        return not self._stopped

    @property
    def next_fire_at(self) -> Optional[float]:
        if self._handle is None or self._handle.cancelled:
            return None
        return self._handle.time

    @property
    def sort_key(self) -> Optional[tuple]:
        """Queue sort key of the pending tick, or None when not armed."""
        if self._handle is None or self._handle.cancelled:
            return None
        return self._handle.sort_key

    def start(self) -> None:
        if not self._stopped:
            raise RuntimeError(f"periodic timer {self.label!r} is already running")
        self._stopped = False
        self._arm()

    def stop(self) -> None:
        self._stopped = True
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None

    def resume_at(self, time: float) -> None:
        """Re-arm the next tick at an absolute time (snapshot restore path)."""
        if not self._stopped:
            raise RuntimeError(f"periodic timer {self.label!r} is already running")
        self._stopped = False
        self._handle = self.sim.schedule_at(
            time, self._fire, priority=1, label=self.label
        )

    def _arm(self) -> None:
        self._handle = self.sim.schedule_after(
            self.period, self._fire, priority=1, label=self.label
        )

    def _fire(self) -> None:
        self._handle = None
        if self._stopped:
            return
        self.action()
        if not self._stopped:
            self._arm()
