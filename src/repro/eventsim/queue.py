"""Deterministic event queue.

Two implementations of the same contract — a priority queue of
:class:`Event` ordered by ``(time, priority, seq)``, where the sequence
number is assigned at insertion time so same-time same-priority events fire
in insertion order regardless of container internals:

* :class:`EventQueue` — the production **calendar queue**.  Events are
  bucketed by exact timestamp; a small heap orders the *distinct* times.
  Discrete-event BGP workloads schedule thousands of deliveries onto a
  handful of quantised timestamps (every message on a link shares the
  link's delay), so the per-event cost collapses to a dict lookup plus a
  list append on push and a list index bump on pop — O(1) amortised —
  while far-future or irregular timestamps simply become new buckets on
  the time heap (the logarithmic fallback).
* :class:`HeapEventQueue` — the original flat ``heapq`` wrapper, kept as
  the executable specification.  The property tests drive both with random
  push/pop/cancel/peek interleavings and require identical behaviour.

Both maintain an exact live count (``len(queue)``): cancellations are
observed immediately through the per-event ``on_cancel`` hook, which the
warm-start snapshot protocol relies on to refuse queues it cannot account
for.
"""

from __future__ import annotations

import heapq
from operator import attrgetter
from typing import Dict, Iterator, List, Optional

from repro.eventsim.event import Event

# Within one time bucket, events are ordered by (priority, seq) — the tail
# of the canonical (time, priority, seq) total order.
_bucket_key = attrgetter("priority", "seq")


class EventQueue:
    """Calendar queue of :class:`Event` ordered by ``(time, priority, seq)``.

    Structure: ``_buckets`` maps each distinct pending timestamp to the
    list of events scheduled for it (in push order); ``_times`` is a heap
    of those distinct timestamps.  ``pop`` promotes the earliest bucket to
    the *current* bucket, sorts it once by ``(priority, seq)`` (push order
    means it is almost always already sorted, which timsort detects), and
    then drains it by advancing an index — no per-event heap traffic.

    Pushes onto the currently draining timestamp insert into the sorted
    remainder (in practice: append, because fresh sequence numbers sort
    last among equal priorities).  Pushes onto an *earlier* timestamp than
    the current bucket — impossible under the simulator's no-past-events
    rule but allowed by the container contract — park the remainder back
    into the calendar so the earlier bucket drains first.
    """

    def __init__(self) -> None:
        self._buckets: Dict[float, List[Event]] = {}
        self._times: List[float] = []
        self._current: Optional[List[Event]] = None
        self._current_time = 0.0
        self._pos = 0
        self._next_seq = 0
        self._live = 0  # number of non-cancelled events held

    def __len__(self) -> int:
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0

    @property
    def last_seq(self) -> int:
        """The most recently assigned sequence number (-1 before any push).

        Batching layers (link delivery coalescing) compare this against the
        sequence of an event they would append to: equality proves nothing
        was scheduled in between, so appending preserves the total order.
        """
        return self._next_seq - 1

    def push(self, event: Event) -> None:
        """Insert an event; assigns its sequence number."""
        if event.seq is not None:
            raise ValueError("event is already scheduled")
        event.seq = self._next_seq
        self._next_seq += 1
        event.on_cancel = self.note_cancelled
        self._live += 1

        time = event.time
        current = self._current
        if current is not None and time == self._current_time:
            # Insert into the undrained remainder, keeping it sorted by
            # (priority, seq).  The fresh seq is the largest ever assigned,
            # so among equal priorities this lands at the very end.
            lo, hi = self._pos, len(current)
            priority, seq = event.priority, event.seq
            while lo < hi:
                mid = (lo + hi) // 2
                other = current[mid]
                if (other.priority, other.seq) <= (priority, seq):
                    lo = mid + 1
                else:
                    hi = mid
            current.insert(lo, event)
            return
        bucket = self._buckets.get(time)
        if bucket is None:
            self._buckets[time] = [event]
            heapq.heappush(self._times, time)
        else:
            bucket.append(event)

    def _head(self) -> Optional[Event]:
        """Advance lazily to the earliest live event and return it (without
        removing); ``None`` when no live events remain."""
        while True:
            current = self._current
            if current is not None:
                if self._times and self._times[0] < self._current_time:
                    # An earlier bucket appeared mid-drain: park the
                    # remainder back into the calendar and drain that first.
                    rest = current[self._pos:]
                    self._current = None
                    if rest:
                        self._buckets[self._current_time] = rest
                        heapq.heappush(self._times, self._current_time)
                    continue
                pos = self._pos
                size = len(current)
                while pos < size and current[pos].cancelled:
                    pos += 1
                self._pos = pos
                if pos < size:
                    return current[pos]
                self._current = None
                continue
            if not self._times:
                return None
            time = self._times[0]
            bucket = self._buckets[time]
            for event in bucket:
                if not event.cancelled:
                    break
            else:
                # Bucket is entirely cancelled events; drop it wholesale.
                heapq.heappop(self._times)
                del self._buckets[time]
                continue
            heapq.heappop(self._times)
            del self._buckets[time]
            if len(bucket) > 1:
                bucket.sort(key=_bucket_key)
            self._current = bucket
            self._current_time = time
            self._pos = 0

    def pop(self) -> Optional[Event]:
        """Remove and return the earliest live event, or ``None`` if empty.

        Cancelled events are dropped lazily here rather than removed from
        the middle of a bucket at cancel time (which would be O(n)).
        """
        event = self._head()
        if event is None:
            return None
        self._pos += 1
        self._live -= 1
        # Out of the queue now: a later cancel() must not touch the live
        # count again.
        event.on_cancel = None
        return event

    def pop_due(self, until: Optional[float] = None) -> Optional[Event]:
        """Combined peek-and-pop: the earliest live event if it fires at or
        before ``until`` (no bound when None); the queue is untouched when
        the head is later than ``until``.  One head scan instead of the
        peek-then-pop double walk — this is the simulator run loop's path.
        """
        event = self._head()
        if event is None or (until is not None and event.time > until):
            return None
        self._pos += 1
        self._live -= 1
        event.on_cancel = None
        return event

    def peek_time(self) -> Optional[float]:
        """Return the firing time of the earliest live event, if any."""
        event = self._head()
        return None if event is None else event.time

    def note_cancelled(self) -> None:
        """Adjust the live count after a held event was cancelled.

        Wired into every pushed event's ``on_cancel`` hook, so ``len(queue)``
        is exact at all times — the warm-start snapshot protocol compares it
        against the components' own pending-event inventory and refuses to
        capture a queue it cannot account for.
        """
        if self._live > 0:
            self._live -= 1

    def drain(self) -> Iterator[Event]:
        """Yield remaining live events in firing order, emptying the queue."""
        while True:
            event = self.pop()
            if event is None:
                return
            yield event

    def clear(self) -> None:
        # Detach cancel hooks first: a timer cancelled after a queue clear
        # (e.g. during a snapshot restore) must not decrement the new count.
        current = self._current
        if current is not None:
            for event in current[self._pos:]:
                event.on_cancel = None
        for bucket in self._buckets.values():
            for event in bucket:
                event.on_cancel = None
        self._buckets.clear()
        self._times.clear()
        self._current = None
        self._pos = 0
        self._live = 0


class HeapEventQueue:
    """Flat-heap reference implementation of the queue contract.

    This is the original production queue, retained verbatim as the
    executable specification: the calendar queue's property tests replay
    random operation sequences against both and demand identical pops,
    peeks and live counts.  It remains fully functional — a
    :class:`~repro.eventsim.simulator.Simulator` could run on it — just
    O(log n) per operation where the calendar queue is O(1) amortised.
    """

    def __init__(self) -> None:
        self._heap: List[tuple] = []
        self._next_seq = 0
        self._live = 0  # number of non-cancelled events in the heap

    def __len__(self) -> int:
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0

    @property
    def last_seq(self) -> int:
        """The most recently assigned sequence number (-1 before any push)."""
        return self._next_seq - 1

    def push(self, event: Event) -> None:
        """Insert an event; assigns its sequence number."""
        if event.seq is not None:
            raise ValueError("event is already scheduled")
        event.seq = self._next_seq
        self._next_seq += 1
        event.on_cancel = self.note_cancelled
        heapq.heappush(self._heap, (event.time, event.priority, event.seq, event))
        self._live += 1

    def pop(self) -> Optional[Event]:
        """Remove and return the earliest live event, or ``None`` if empty."""
        while self._heap:
            _, _, _, event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self._live -= 1
            event.on_cancel = None
            return event
        return None

    def pop_due(self, until: Optional[float] = None) -> Optional[Event]:
        """Pop the head if it fires at or before ``until`` (see EventQueue)."""
        time = self.peek_time()
        if time is None or (until is not None and time > until):
            return None
        return self.pop()

    def peek_time(self) -> Optional[float]:
        """Return the firing time of the earliest live event, if any."""
        while self._heap and self._heap[0][3].cancelled:
            heapq.heappop(self._heap)
        if not self._heap:
            return None
        return self._heap[0][0]

    def note_cancelled(self) -> None:
        """Adjust the live count after an in-heap event was cancelled."""
        if self._live > 0:
            self._live -= 1

    def drain(self) -> Iterator[Event]:
        """Yield remaining live events in firing order, emptying the queue."""
        while True:
            event = self.pop()
            if event is None:
                return
            yield event

    def clear(self) -> None:
        for _, _, _, event in self._heap:
            event.on_cancel = None
        self._heap.clear()
        self._live = 0
