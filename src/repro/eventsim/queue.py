"""Deterministic event queue.

A thin wrapper over :mod:`heapq` that assigns monotonically increasing
sequence numbers at insertion time.  Two events scheduled for the same time
with the same priority therefore fire in insertion order, regardless of heap
internals — the total order is well defined and replayable.
"""

from __future__ import annotations

import heapq
from typing import Iterator, List, Optional

from repro.eventsim.event import Event


class EventQueue:
    """Priority queue of :class:`Event` ordered by ``(time, priority, seq)``."""

    def __init__(self) -> None:
        self._heap: List[tuple] = []
        self._next_seq = 0
        self._live = 0  # number of non-cancelled events in the heap

    def __len__(self) -> int:
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0

    def push(self, event: Event) -> None:
        """Insert an event; assigns its sequence number."""
        if event.seq is not None:
            raise ValueError("event is already scheduled")
        event.seq = self._next_seq
        self._next_seq += 1
        event.on_cancel = self.note_cancelled
        heapq.heappush(self._heap, (event.time, event.priority, event.seq, event))
        self._live += 1

    def pop(self) -> Optional[Event]:
        """Remove and return the earliest live event, or ``None`` if empty.

        Cancelled events are dropped lazily here rather than removed from the
        middle of the heap at cancel time (which would be O(n)).
        """
        while self._heap:
            _, _, _, event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self._live -= 1
            # Out of the heap now: a later cancel() must not touch the
            # live count again.
            event.on_cancel = None
            return event
        return None

    def peek_time(self) -> Optional[float]:
        """Return the firing time of the earliest live event, if any."""
        while self._heap and self._heap[0][3].cancelled:
            heapq.heappop(self._heap)
        if not self._heap:
            return None
        return self._heap[0][0]

    def note_cancelled(self) -> None:
        """Adjust the live count after an in-heap event was cancelled.

        Wired into every pushed event's ``on_cancel`` hook, so ``len(queue)``
        is exact at all times — the warm-start snapshot protocol compares it
        against the components' own pending-event inventory and refuses to
        capture a queue it cannot account for.
        """
        if self._live > 0:
            self._live -= 1

    def drain(self) -> Iterator[Event]:
        """Yield remaining live events in firing order, emptying the queue."""
        while True:
            event = self.pop()
            if event is None:
                return
            yield event

    def clear(self) -> None:
        # Detach cancel hooks first: a timer cancelled after a queue clear
        # (e.g. during a snapshot restore) must not decrement the new count.
        for _, _, _, event in self._heap:
            event.on_cancel = None
        self._heap.clear()
        self._live = 0
