"""Deterministic discrete-event simulation kernel.

This package provides the substrate on which the BGP simulator runs: a
simulation clock, an event queue with deterministic tie-breaking, named
seeded random streams, periodic and one-shot timers, and trace hooks.

The design mirrors the scheduler at the heart of SSFnet (the simulator the
paper used) but is a clean-room pure-Python implementation.  Determinism is
a first-class requirement: two runs with the same seed and the same workload
produce byte-identical event orderings, which makes every experiment in the
paper reproducible bit-for-bit.
"""

from repro.eventsim.event import Event, EventHandle
from repro.eventsim.queue import EventQueue
from repro.eventsim.rng import RandomStreams
from repro.eventsim.simulator import Simulator, SimulationError
from repro.eventsim.timers import Timer, PeriodicTimer
from repro.eventsim.trace import TraceRecorder, TraceRecord

__all__ = [
    "Event",
    "EventHandle",
    "EventQueue",
    "RandomStreams",
    "Simulator",
    "SimulationError",
    "Timer",
    "PeriodicTimer",
    "TraceRecorder",
    "TraceRecord",
]
