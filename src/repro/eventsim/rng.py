"""Named, seeded random streams.

Every source of randomness in an experiment draws from a *named* stream
derived from a single master seed.  Adding a new random consumer therefore
never perturbs the draws seen by existing consumers, and any single stream
can be replayed in isolation.  This is the standard variance-reduction /
reproducibility discipline for simulation studies, and it is what lets the
experiment harness use common random numbers across the "Normal BGP" and
"Full MOAS Detection" arms of each figure.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict, List, Sequence, TypeVar

T = TypeVar("T")


def derive_seed(master_seed: int, name: str) -> int:
    """Derive a 64-bit child seed from ``(master_seed, name)``.

    Uses SHA-256 so the mapping is stable across Python versions and
    platforms (``hash()`` is salted per-process and unusable here).
    """
    digest = hashlib.sha256(f"{master_seed}:{name}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class RandomStreams:
    """A family of independent :class:`random.Random` streams.

    Streams are created lazily on first access and cached, so repeated
    lookups of the same name return the same generator object.
    """

    # The master seed is the stream family's *identity*, pinned by the
    # warm-start baseline key — a snapshot may only ever be restored onto
    # a family with the same seed, so it is not captured state.
    _SNAPSHOT_WAIVED = frozenset({"master_seed"})

    def __init__(self, master_seed: int = 0) -> None:
        self.master_seed = int(master_seed)
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return the generator for ``name``, creating it if needed."""
        rng = self._streams.get(name)
        if rng is None:
            rng = random.Random(derive_seed(self.master_seed, name))
            self._streams[name] = rng
        return rng

    def snapshot_state(self) -> Dict[str, object]:
        """Capture every materialized stream's generator state by name.

        An empty result means no randomness has been consumed yet — the
        signal the warm-start cache uses to know a baseline is seed-free.
        """
        return {name: rng.getstate() for name, rng in sorted(self._streams.items())}

    def restore_state(self, state: Dict[str, object]) -> None:
        """Rebuild streams from a :meth:`snapshot_state` capture.

        Streams not present in the snapshot are dropped, so a restored
        family draws exactly the sequence the captured one would have.
        """
        self._streams.clear()
        for name, rng_state in state.items():
            rng = random.Random()
            rng.setstate(rng_state)  # type: ignore[arg-type]
            self._streams[name] = rng

    def spawn(self, name: str) -> "RandomStreams":
        """Create a child family whose master seed is derived from ``name``.

        Useful for giving each simulation run in a multi-run experiment its
        own independent universe of streams.
        """
        return RandomStreams(derive_seed(self.master_seed, name))

    # -- convenience draws ------------------------------------------------

    def uniform(self, name: str, low: float, high: float) -> float:
        return self.stream(name).uniform(low, high)

    def randint(self, name: str, low: int, high: int) -> int:
        return self.stream(name).randint(low, high)

    def choice(self, name: str, seq: Sequence[T]) -> T:
        if not seq:
            raise ValueError("cannot choose from an empty sequence")
        return self.stream(name).choice(seq)

    def sample(self, name: str, seq: Sequence[T], k: int) -> List[T]:
        if k > len(seq):
            raise ValueError(f"cannot sample {k} items from {len(seq)}")
        return self.stream(name).sample(list(seq), k)

    def shuffle(self, name: str, seq: List[T]) -> List[T]:
        """Return a shuffled copy of ``seq`` (the input is left untouched)."""
        out = list(seq)
        self.stream(name).shuffle(out)
        return out

    def expovariate(self, name: str, rate: float) -> float:
        if rate <= 0:
            raise ValueError(f"rate must be positive, got {rate!r}")
        return self.stream(name).expovariate(rate)

    def poisson(self, name: str, lam: float) -> int:
        """Draw from a Poisson(lam) via inversion (adequate for small lam)
        or normal approximation for large lam."""
        if lam < 0:
            raise ValueError(f"lambda must be non-negative, got {lam!r}")
        rng = self.stream(name)
        if lam == 0:
            return 0
        if lam > 500:
            # Normal approximation, clipped at zero.
            return max(0, int(round(rng.gauss(lam, lam**0.5))))
        # Knuth inversion.
        import math

        threshold = math.exp(-lam)
        k = 0
        product = rng.random()
        while product > threshold:
            k += 1
            product *= rng.random()
        return k
