"""Simulation tracing.

The trace recorder is an append-only log of ``(time, category, detail)``
records.  Protocol modules use it to record message sends, route changes and
alarms; tests and the experiment harness query it to assert on behaviour
without reaching into protocol internals.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional


@dataclass(frozen=True)
class TraceRecord:
    """One trace entry."""

    time: float
    category: str
    detail: Dict[str, Any] = field(default_factory=dict)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TraceRecord(t={self.time:.4f}, {self.category}, {self.detail})"


class TraceRecorder:
    """Append-only structured trace with category filtering.

    Recording can be restricted to a set of categories to keep long
    simulations cheap; an unrestricted recorder keeps everything.
    """

    def __init__(
        self, categories: Optional[set] = None, check_monotonic: bool = False
    ) -> None:
        self._records: List[TraceRecord] = []
        self._categories = set(categories) if categories is not None else None
        self._listeners: List[Callable[[TraceRecord], None]] = []
        # Sanitizer mode: refuse timestamps that move backwards.  Checked
        # against the last *recorded* time, so category filtering cannot
        # mask a regression inside the recorded stream.
        self._check_monotonic = check_monotonic
        self._last_time = float("-inf")

    def wants(self, category: str) -> bool:
        """Whether :meth:`record` would keep a record of ``category``.

        Hot call sites whose *arguments* are costly to build (string
        formatting, kwargs dicts) check this first; everyone else just
        calls :meth:`record`, which applies the same filter.
        """
        return self._categories is None or category in self._categories

    def record(self, time: float, category: str, **detail: Any) -> None:
        if self._categories is not None and category not in self._categories:
            return
        if self._check_monotonic:
            if time < self._last_time:
                from repro.sanitize import InvariantError

                raise InvariantError(
                    f"trace timestamp moved backwards: {time:.6f} after "
                    f"{self._last_time:.6f} (category {category!r})"
                )
            self._last_time = time
        rec = TraceRecord(time=time, category=category, detail=detail)
        self._records.append(rec)
        for listener in self._listeners:
            listener(rec)

    def add_listener(self, listener: Callable[[TraceRecord], None]) -> None:
        """Register a callback invoked synchronously for each new record."""
        self._listeners.append(listener)

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self._records)

    def by_category(self, category: str) -> List[TraceRecord]:
        return [r for r in self._records if r.category == category]

    def count(self, category: str) -> int:
        return sum(1 for r in self._records if r.category == category)

    def clear(self) -> None:
        self._records.clear()
        self._last_time = float("-inf")

    def rewind_monotonic_guard(self) -> None:
        """Allow time to restart (a simulator reset rewinds the clock)."""
        self._last_time = float("-inf")
