"""Random placement of origin and attacker ASes (§5.1).

"To generate MOAS, we randomly select origin ASes from the stub ASes...
We allow any number of attacker ASes to originate invalid routes to the
prefix and we choose the attacker ASes randomly from all the ASes."
"""

from __future__ import annotations

import random
from typing import FrozenSet, List, Sequence

from repro.net.asn import ASN
from repro.topology.asgraph import ASGraph


def place_origins(
    graph: ASGraph, n_origins: int, rng: random.Random
) -> List[ASN]:
    """Pick ``n_origins`` distinct stub ASes to legitimately originate the
    prefix (the paper uses 1 or 2; 96.14 % of real MOAS involve two)."""
    stubs = graph.stub_asns()
    if n_origins < 1:
        raise ValueError(f"need at least one origin, got {n_origins}")
    if n_origins > len(stubs):
        raise ValueError(
            f"cannot place {n_origins} origins among {len(stubs)} stub ASes"
        )
    return sorted(rng.sample(stubs, n_origins))


def place_attackers(
    graph: ASGraph,
    n_attackers: int,
    rng: random.Random,
    exclude: Sequence[ASN] = (),
) -> List[ASN]:
    """Pick ``n_attackers`` distinct ASes from the whole topology, excluding
    the genuine origins (an origin "attacking" its own prefix is a no-op)."""
    excluded = set(exclude)
    pool = [asn for asn in graph.asns() if asn not in excluded]
    if n_attackers < 0:
        raise ValueError(f"attacker count must be non-negative, got {n_attackers}")
    if n_attackers > len(pool):
        raise ValueError(
            f"cannot place {n_attackers} attackers among {len(pool)} candidates"
        )
    return sorted(rng.sample(pool, n_attackers))
