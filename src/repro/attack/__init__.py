"""Attacker and fault models (§3.3, §5).

The paper's threat is an AS originating a route to a prefix it cannot
reach — from operational accidents (AS 7007-style de-aggregation, the
April 1998 AS 8584 event) to deliberate traffic hijacking.  This package
provides:

* :mod:`repro.attack.models` — attacker strategies against the MOAS-list
  scheme: naive false origination, forged-superset lists, exact-list
  forgeries, AS-path spoofing (the §4.3 limitation), and community
  stripping on transit;
* :mod:`repro.attack.faults` — operational fault generators used by the
  measurement-trace pipeline (mass false origination, de-aggregation
  leaks);
* :mod:`repro.attack.placement` — random attacker placement over a
  topology, mirroring §5.1's "we choose the attacker ASes randomly from
  all the ASes".
"""

from repro.attack.models import (
    AttackStrategy,
    Attacker,
    ExactListForgery,
    NaiveFalseOrigin,
    PathSpoofing,
    SubPrefixHijack,
    SupersetListForgery,
)
from repro.attack.faults import (
    DeaggregationFault,
    FaultEvent,
    MassFalseOriginationFault,
)
from repro.attack.placement import place_attackers, place_origins

__all__ = [
    "Attacker",
    "AttackStrategy",
    "NaiveFalseOrigin",
    "SupersetListForgery",
    "ExactListForgery",
    "PathSpoofing",
    "SubPrefixHijack",
    "FaultEvent",
    "MassFalseOriginationFault",
    "DeaggregationFault",
    "place_attackers",
    "place_origins",
]
