"""Attacker strategies against the MOAS-list scheme.

Each strategy is one way of announcing a route for a prefix the attacker
cannot reach:

* :class:`NaiveFalseOrigin` — plain false origination with no MOAS list
  (the observed operational faults of §3.3 look like this);
* :class:`SupersetListForgery` — the §4.1 counter-move: "AS 3 could attach
  its own MOAS list that includes AS 1, AS 2, and AS 3"; still detected
  because the superset disagrees with the genuine list;
* :class:`ExactListForgery` — copy the genuine list verbatim; the
  announcement's own origin is then missing from the list it carries,
  which a checker rejects without needing a second view;
* :class:`PathSpoofing` — forge the AS path so the route appears to lead
  to the true origin (the §4.3 limitation: the MOAS list cannot catch
  this).  Included so the limitation is reproducible, not because the
  scheme claims to stop it.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import FrozenSet, Iterable, Optional

from repro.bgp.attributes import AsPath, PathAttributes
from repro.bgp.messages import UpdateMessage
from repro.bgp.network import Network
from repro.core.moas_list import moas_communities
from repro.net.addresses import Prefix
from repro.net.asn import ASN


class AttackStrategy(abc.ABC):
    """How an attacker AS announces the target prefix."""

    name: str = "abstract"

    @abc.abstractmethod
    def launch(
        self,
        network: Network,
        attacker: ASN,
        prefix: Prefix,
        victim_origins: FrozenSet[ASN],
    ) -> None:
        """Make ``attacker`` start announcing ``prefix``."""


class NaiveFalseOrigin(AttackStrategy):
    """Originate the prefix with no MOAS list (implicit {attacker})."""

    name = "naive-false-origin"

    def launch(
        self,
        network: Network,
        attacker: ASN,
        prefix: Prefix,
        victim_origins: FrozenSet[ASN],
    ) -> None:
        network.speaker(attacker).originate(prefix)


class SupersetListForgery(AttackStrategy):
    """Originate with a forged list = genuine origins + attacker."""

    name = "superset-list-forgery"

    def launch(
        self,
        network: Network,
        attacker: ASN,
        prefix: Prefix,
        victim_origins: FrozenSet[ASN],
    ) -> None:
        forged = set(victim_origins) | {attacker}
        network.speaker(attacker).originate(
            prefix, communities=moas_communities(forged)
        )


class ExactListForgery(AttackStrategy):
    """Originate carrying the genuine list verbatim (attacker excluded).

    Self-inconsistent: the route's origin (the attacker) is not in the list
    it carries, so a single capable router rejects it outright.
    """

    name = "exact-list-forgery"

    def launch(
        self,
        network: Network,
        attacker: ASN,
        prefix: Prefix,
        victim_origins: FrozenSet[ASN],
    ) -> None:
        network.speaker(attacker).originate(
            prefix, communities=moas_communities(victim_origins)
        )


class SubPrefixHijack(AttackStrategy):
    """Announce a *more-specific* prefix inside the victim's block.

    §4.3's other acknowledged blind spot: an AS "could falsely announce a
    route to a prefix longer than p where p is an IP address prefix
    belonging to another AS".  The announcement names a different prefix,
    so no MOAS conflict ever arises — and longest-match forwarding sends
    the covered addresses to the attacker from *everywhere*, regardless of
    path lengths.
    """

    name = "sub-prefix-hijack"

    def __init__(self, specific_length: int = 24) -> None:
        if not 0 < specific_length <= 32:
            raise ValueError(f"bad specific length: {specific_length}")
        self.specific_length = specific_length

    def more_specific_of(self, prefix: Prefix) -> Prefix:
        if prefix.length >= self.specific_length:
            raise ValueError(
                f"{prefix} is already /{prefix.length}; cannot announce a "
                f"/{self.specific_length} inside it"
            )
        return next(prefix.deaggregate(self.specific_length))

    def launch(
        self,
        network: Network,
        attacker: ASN,
        prefix: Prefix,
        victim_origins: FrozenSet[ASN],
    ) -> None:
        network.speaker(attacker).originate(self.more_specific_of(prefix))


class PathSpoofing(AttackStrategy):
    """Forge the AS path so the announcement ends at a genuine origin.

    The attacker sends, to each of its peers, an UPDATE whose path is
    ``(attacker, victim)`` carrying the genuine MOAS list — claiming to be
    one hop from the true origin.  MOAS-list checking sees a consistent
    list and a legitimate origin; §4.3: "an AS could make a false route
    announcement with a correct origin AS but a manipulated AS path".
    """

    name = "path-spoofing"

    def launch(
        self,
        network: Network,
        attacker: ASN,
        prefix: Prefix,
        victim_origins: FrozenSet[ASN],
    ) -> None:
        if not victim_origins:
            raise ValueError("path spoofing requires at least one victim origin")
        victim = min(victim_origins)
        communities = (
            moas_communities(victim_origins) if len(victim_origins) > 1 else ()
        )
        speaker = network.speaker(attacker)
        attributes = PathAttributes(
            as_path=AsPath.from_asns([attacker, victim]),
            next_hop=attacker,
            communities=communities,
        )
        update = UpdateMessage(announced={prefix}, attributes=attributes)
        for peer in speaker.established_peers:
            network.link(attacker, peer).send(attacker, update)
            speaker.updates_sent += 1


@dataclass(frozen=True)
class Attacker:
    """An attacker: where it sits and how it lies."""

    asn: ASN
    strategy: AttackStrategy

    def launch(
        self, network: Network, prefix: Prefix, victim_origins: Iterable[ASN]
    ) -> None:
        self.strategy.launch(
            network, self.asn, prefix, frozenset(victim_origins)
        )
