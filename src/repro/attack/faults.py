"""Operational fault models (§3.3).

The paper's Figure 4 spikes are operational accidents, not attacks:

* **April 7 1998** — AS 8584 "erroneously announced ... prefixes that
  belonged to other organizations";
* **April 6 2001** — AS 15412 "suddenly originated thousands of prefixes
  due to a configuration error";
* **April 25 1997** — AS 7007 "falsely de-aggregated its internal routing
  table and advertised the IP address prefixes it learned externally as
  its own".

These generators produce the corresponding bursts of invalid originations
for the synthetic measurement trace (:mod:`repro.measurement.trace`).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import FrozenSet, List, Sequence, Tuple

from repro.net.addresses import Prefix
from repro.net.asn import ASN, validate_asn


@dataclass(frozen=True)
class FaultEvent:
    """One day's worth of faulty originations by one AS."""

    day: int
    faulty_as: ASN
    prefixes: Tuple[Prefix, ...]
    kind: str

    @property
    def scale(self) -> int:
        return len(self.prefixes)


class MassFalseOriginationFault:
    """A config error making one AS originate many foreign prefixes.

    Models the 1998 (AS 8584) and 2001 (AS 15412) events: on ``day``,
    ``faulty_as`` falsely originates a random sample of ``count`` prefixes
    drawn from the global table (excluding its own).
    """

    def __init__(self, day: int, faulty_as: ASN, count: int) -> None:
        if count < 1:
            raise ValueError(f"fault must affect at least one prefix, got {count}")
        self.day = int(day)
        self.faulty_as = validate_asn(faulty_as)
        self.count = count

    def generate(
        self, universe: Sequence[Prefix], rng: random.Random
    ) -> FaultEvent:
        count = min(self.count, len(universe))
        victims = rng.sample(list(universe), count)
        return FaultEvent(
            day=self.day,
            faulty_as=self.faulty_as,
            prefixes=tuple(victims),
            kind="mass-false-origination",
        )


class DeaggregationFault:
    """An AS 7007-style leak: re-announce learned prefixes as more-specifics.

    On ``day``, ``faulty_as`` de-aggregates a sample of ``count`` prefixes
    into /``target_length`` more-specifics and originates them itself.
    More-specifics win longest-match forwarding, which is why this class of
    fault is so damaging.
    """

    def __init__(
        self,
        day: int,
        faulty_as: ASN,
        count: int,
        target_length: int = 24,
        specifics_per_prefix: int = 4,
    ) -> None:
        if count < 1:
            raise ValueError(f"fault must affect at least one prefix, got {count}")
        if not 0 < target_length <= 32:
            raise ValueError(f"bad target length: {target_length}")
        if specifics_per_prefix < 1:
            raise ValueError(
                f"need at least one specific per prefix, got {specifics_per_prefix}"
            )
        self.day = int(day)
        self.faulty_as = validate_asn(faulty_as)
        self.count = count
        self.target_length = target_length
        self.specifics_per_prefix = specifics_per_prefix

    def generate(
        self, universe: Sequence[Prefix], rng: random.Random
    ) -> FaultEvent:
        eligible = [p for p in universe if p.length < self.target_length]
        count = min(self.count, len(eligible))
        victims = rng.sample(eligible, count)
        specifics: List[Prefix] = []
        for prefix in victims:
            children = list(prefix.deaggregate(self.target_length))
            take = min(self.specifics_per_prefix, len(children))
            specifics.extend(rng.sample(children, take))
        return FaultEvent(
            day=self.day,
            faulty_as=self.faulty_as,
            prefixes=tuple(specifics),
            kind="deaggregation",
        )
