"""Durable filesystem primitives shared by every atomic-write site.

``os.replace`` makes a rename atomic, and ``fsync`` on the file handle
makes the *contents* durable — but on ext4/xfs the new directory entry
itself is not durable until the **parent directory** is fsynced.  A crash
after the rename can therefore lose the file entirely (the classic
"fsync-the-file-but-not-the-dir" bug).  Every atomic publish in this
repository (stream checkpoints, alarm-log creation, the warm-start disk
cache, the lint index cache) routes through :func:`fsync_dir` after its
``os.replace`` so the rename itself survives a crash.

``fsync_dir`` is best-effort by design: some filesystems (and all of
Windows) refuse ``open(dir)``/``fsync(dirfd)``; callers degrade to the
pre-fix behaviour there rather than failing the write.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Union


def fsync_dir(path: Union[str, Path]) -> None:
    """Fsync the directory ``path`` so renames/creations inside it are
    durable.  Best-effort: silently a no-op where directories cannot be
    opened or fsynced (non-POSIX filesystems)."""
    try:
        fd = os.open(str(path), os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def fsync_parent_dir(path: Union[str, Path]) -> None:
    """Fsync the parent directory of ``path`` (the common post-``os.replace``
    call: the *target's* directory entry is what must survive)."""
    fsync_dir(Path(path).resolve().parent)
