"""Command-line interface.

Exposes the reproduction's main entry points without writing any Python:

* ``repro figure <id>`` — regenerate a figure (fig4/fig5/fig8/fig9/fig10/
  fig11/headline) and print the paper-vs-measured table;
* ``repro study`` — run the §3 measurement study and print its summary;
* ``repro monitor <dump>`` — run the §4.2 off-line monitor over a
  RouteViews-style dump file;
* ``repro topology`` — generate a paper-style topology and describe it;
* ``repro hijack`` — run one hijack scenario and report the outcome;
* ``repro profile`` — run one hijack scenario under cProfile and print
  the hottest functions (``--output`` dumps raw pstats data);
* ``repro sweep`` — run an attacker-fraction sweep, optionally emitting a
  JSONL run manifest (``--manifest``);
* ``repro report`` — aggregate a run manifest back into the paper's tables;
* ``repro stream gen`` / ``repro stream run`` — produce a BGP update feed
  from the synthetic trace, and run the online detection service over a
  feed with checkpoint/resume (see ``docs/streaming.md``).

Unknown subcommands exit 2 with a usage message; ``main()`` returns exit
codes rather than raising ``SystemExit`` so it can be driven in-process.
Also runnable as ``python -m repro.cli``.
"""

from __future__ import annotations

import argparse
import sys
from typing import Any, List, Optional, Sequence

QUICK_FRACTIONS = (0.05, 0.20, 0.40)
FULL_FRACTIONS = (0.05, 0.10, 0.20, 0.30, 0.40)


def _cmd_figure(args: argparse.Namespace) -> int:
    from repro.experiments.reporting import format_series_table, format_sweep_table

    fractions = QUICK_FRACTIONS if args.quick else FULL_FRACTIONS
    figure_id = args.id.lower()

    if figure_id in ("fig4", "fig5"):
        from repro.experiments.measurement_repro import run_measurement_study
        from repro.measurement.trace import TraceConfig

        config = TraceConfig(days=200 if args.quick else 1279)
        if args.quick:
            # Keep the fault days inside the shortened trace.
            from repro.measurement.trace import FaultSpike

            config.faults = (
                FaultSpike(day=60, faulty_as=8584, n_prefixes=300),
                FaultSpike(day=150, faulty_as=15412, n_prefixes=900),
            )
        study = run_measurement_study(
            config, seed=args.seed,
            duration_cutoff=config.days if args.quick else 983,
        )
        if figure_id == "fig4":
            print(format_series_table(
                study.figure4_series(), headers=("day", "MOAS cases"),
                title="Figure 4 — daily MOAS cases", max_rows=30,
            ))
        else:
            from repro.experiments.ascii_chart import render_histogram

            bins = study.tracker.binned_histogram([1, 2, 5, 10, 30, 100, 300])
            print(render_histogram(bins, title="Figure 5 — MOAS durations"))
        for label, value in study.summary.rows():
            print(f"{label:28s} {value}")
        return 0

    if figure_id == "fig8":
        from repro.topology.generators import generate_paper_topology

        for size in (25, 46, 63):
            graph = generate_paper_topology(size, seed=args.seed)
            print(
                f"{size}-AS: {graph.num_links()} links, "
                f"{len(graph.transit_asns())} transit, "
                f"{len(graph.stub_asns())} stubs, "
                f"avg degree {graph.average_degree():.2f}"
            )
        return 0

    if figure_id in ("fig9", "headline"):
        from repro.experiments.exp_effectiveness import figure9

        if figure_id == "headline":
            # The headline always needs the ~4% and 30% grid points.
            fractions = (0.05, 0.30)
        result = figure9(
            attacker_fractions=fractions, seed=args.seed, workers=args.workers
        )
        for n_origins, curves in sorted(result.panels.items()):
            print(format_sweep_table(
                curves, title=f"--- {n_origins} origin AS(es) ---"
            ))
        if figure_id == "headline":
            for label, value in result.headline().items():
                print(f"{label:12s} {value:.2f}%")
        return 0

    if figure_id == "fig10":
        from repro.experiments.exp_topology_size import figure10

        result = figure10(
            attacker_fractions=fractions, origin_counts=(1,), seed=args.seed,
            workers=args.workers,
        )
        for size, curves in sorted(result.panels[1].items()):
            print(format_sweep_table(curves, title=f"--- {size}-AS ---"))
        return 0

    if figure_id == "fig11":
        from repro.experiments.exp_partial import figure11

        result = figure11(
            attacker_fractions=fractions, seed=args.seed, workers=args.workers
        )
        for size, curves in sorted(result.panels.items()):
            print(format_sweep_table(curves, title=f"--- {size}-AS ---"))
        return 0

    print(f"unknown figure id: {args.id}", file=sys.stderr)
    return 2


def _cmd_study(args: argparse.Namespace) -> int:
    from repro.experiments.measurement_repro import run_measurement_study
    from repro.measurement.trace import TraceConfig

    config = TraceConfig() if args.days is None else None
    if args.days is not None:
        config = TraceConfig(days=args.days, faults=())
    study = run_measurement_study(
        config, seed=args.seed,
        duration_cutoff=(args.days if args.days is not None else 983),
    )
    for label, value in study.summary.rows():
        print(f"{label:28s} {value}")
    return 0


def _cmd_monitor(args: argparse.Namespace) -> int:
    from repro.core.monitor import OfflineMonitor
    from repro.topology.routeviews import parse_table_dump

    with open(args.dump) as handle:
        table = parse_table_dump(handle.read())
    monitor = OfflineMonitor()
    report = monitor.check_table(table)
    print(report.summary())
    for finding in report.conflicts:
        print(
            f"CONFLICT {finding.prefix}: origins "
            f"{sorted(finding.origins_seen)}"
        )
    for finding in report.moas_prefixes:
        if finding.consistent:
            print(
                f"moas-ok  {finding.prefix}: origins "
                f"{sorted(finding.origins_seen)}"
            )
    return 1 if report.conflicts else 0


def _cmd_topology(args: argparse.Namespace) -> int:
    from repro.topology.generators import generate_paper_topology

    graph = generate_paper_topology(args.size, seed=args.seed)
    print(
        f"{len(graph)} ASes, {graph.num_links()} links, "
        f"{len(graph.transit_asns())} transit, "
        f"{len(graph.stub_asns())} stubs, "
        f"avg degree {graph.average_degree():.2f}"
    )
    if args.edges:
        for a, b in graph.edges():
            print(f"{a} -- {b}")
    return 0


def _cmd_hijack(args: argparse.Namespace) -> int:
    import json

    from repro.attack.placement import place_attackers, place_origins
    from repro.eventsim.rng import RandomStreams
    from repro.experiments.executor import execute_scenarios
    from repro.experiments.runner import (
        AttackTiming,
        DeploymentKind,
        HijackScenario,
        run_hijack_scenario,
        run_hijack_scenario_instrumented,
    )
    from repro.topology.generators import (
        generate_paper_topology,
        generate_scale_topology,
    )

    if args.size <= 100:
        graph = generate_paper_topology(args.size, seed=args.seed)
    else:
        graph = generate_scale_topology(args.size, seed=args.seed)
    streams = RandomStreams(args.seed)
    origins = place_origins(graph, args.origins, streams.stream("origins"))
    n_attackers = max(1, round(args.attackers * len(graph)))
    attackers = place_attackers(
        graph, n_attackers, streams.stream("attackers"), exclude=origins
    )
    deployment = {
        "none": DeploymentKind.NONE,
        "partial": DeploymentKind.PARTIAL,
        "full": DeploymentKind.FULL,
    }[args.deployment]
    timing = {
        "simultaneous": AttackTiming.SIMULTANEOUS,
        "post-convergence": AttackTiming.POST_CONVERGENCE,
    }[args.timing]
    scenario = HijackScenario(
        graph=graph,
        origins=origins,
        attackers=attackers,
        deployment=deployment,
        timing=timing,
        seed=args.seed,
    )
    if args.manifest:
        # The single-record manifest path: spec + outcome + metrics.
        outcomes = execute_scenarios(
            [scenario],
            manifest=args.manifest,
            warm_start=args.warm_start,
            shards=args.shards,
        )
        outcome = outcomes[0]
        print(f"manifest written: {args.manifest}")
    elif args.spans:
        run = run_hijack_scenario_instrumented(
            scenario, warm_start=args.warm_start, shards=args.shards
        )
        outcome = run.outcome
    else:
        outcome = run_hijack_scenario(
            scenario, warm_start=args.warm_start, shards=args.shards
        )
    if args.spans:
        if args.manifest:
            # Manifest runs discard spans in the pool crossing; re-run
            # instrumented in-process for the span dump.
            run = run_hijack_scenario_instrumented(
                scenario, warm_start=args.warm_start
            )
        with open(args.spans, "w", encoding="utf-8") as handle:
            json.dump(run.spans, handle, indent=2)
            handle.write("\n")
        print(f"spans written: {args.spans}")
    print(f"topology: {args.size} ASes; origins {origins}; "
          f"{n_attackers} attackers")
    print(f"deployment: {args.deployment}")
    print(f"poisoned: {len(outcome.poisoned)}/{outcome.n_remaining} "
          f"({outcome.poisoned_fraction:.1%})")
    print(f"alarms: {outcome.alarms}; routes suppressed: "
          f"{outcome.routes_suppressed}")
    print(f"throughput: {outcome.events_processed} events, "
          f"{outcome.updates_sent} updates in {outcome.wall_seconds:.3f}s "
          f"({outcome.events_per_sec:,.0f} events/sec)")
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    import cProfile
    import io
    import pstats

    from repro.attack.placement import place_attackers, place_origins
    from repro.eventsim.rng import RandomStreams
    from repro.experiments.runner import (
        AttackTiming,
        DeploymentKind,
        HijackScenario,
        run_hijack_scenario,
    )
    from repro.topology.generators import (
        generate_paper_topology,
        generate_scale_topology,
    )

    if args.size <= 100:
        graph = generate_paper_topology(args.size, seed=args.seed)
    else:
        graph = generate_scale_topology(args.size, seed=args.seed)
    streams = RandomStreams(args.seed)
    origins = place_origins(graph, args.origins, streams.stream("origins"))
    n_attackers = max(1, round(args.attackers * len(graph)))
    attackers = place_attackers(
        graph, n_attackers, streams.stream("attackers"), exclude=origins
    )
    scenario = HijackScenario(
        graph=graph,
        origins=origins,
        attackers=attackers,
        deployment={
            "none": DeploymentKind.NONE,
            "partial": DeploymentKind.PARTIAL,
            "full": DeploymentKind.FULL,
        }[args.deployment],
        timing={
            "simultaneous": AttackTiming.SIMULTANEOUS,
            "post-convergence": AttackTiming.POST_CONVERGENCE,
        }[args.timing],
        seed=args.seed,
    )
    if args.warm:
        # Pull one-time costs (prefix parse caches, import machinery) out
        # of the profile so it shows the steady-state hot path.
        run_hijack_scenario(scenario)

    profiler = cProfile.Profile()
    profiler.enable()
    for _ in range(args.repeat):
        outcome = run_hijack_scenario(scenario)
    profiler.disable()

    if args.output:
        profiler.dump_stats(args.output)
        print(f"profile written: {args.output}")
    buffer = io.StringIO()
    stats = pstats.Stats(profiler, stream=buffer)
    stats.strip_dirs().sort_stats(args.sort).print_stats(args.limit)
    print(buffer.getvalue().rstrip())
    print(
        f"scenario: {len(graph)} ASes, {args.deployment} deployment, "
        f"{args.timing}, x{args.repeat}"
    )
    print(
        f"last run: {outcome.events_processed} events in "
        f"{outcome.wall_seconds:.3f}s ({outcome.events_per_sec:,.0f} "
        f"events/sec)"
    )
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro.experiments.runner import AttackTiming, DeploymentKind
    from repro.experiments.sweep import SweepConfig, run_sweep
    from repro.topology.generators import generate_paper_topology

    graph = generate_paper_topology(args.size, seed=args.seed)
    deployment = {
        "none": DeploymentKind.NONE,
        "partial": DeploymentKind.PARTIAL,
        "full": DeploymentKind.FULL,
    }[args.deployment]
    timing = {
        "simultaneous": AttackTiming.SIMULTANEOUS,
        "post-convergence": AttackTiming.POST_CONVERGENCE,
    }[args.timing]
    fractions = tuple(
        float(part) for part in args.fractions.split(",") if part.strip()
    )
    if not fractions:
        print("no attacker fractions given", file=sys.stderr)
        return 2
    result = run_sweep(
        SweepConfig(
            graph=graph,
            n_origins=args.origins,
            deployment=deployment,
            attacker_fractions=fractions,
            n_origin_sets=args.origin_sets,
            n_attacker_sets=args.attacker_sets,
            timing=timing,
            seed=args.seed,
        ),
        workers=args.workers,
        manifest=args.manifest,
        warm_start=args.warm_start,
        shards=args.shards,
    )
    from repro.experiments.reporting import format_sweep_table

    print(format_sweep_table(
        [result], title=f"sweep — {args.size} ASes, {args.deployment}"
    ))
    if args.manifest:
        print(f"manifest written: {args.manifest}")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    import json

    from repro.experiments.reporting import format_manifest_report
    from repro.obs.manifest import aggregate_manifest, read_manifest

    records = read_manifest(args.manifest)
    if not records:
        print(f"{args.manifest}: manifest holds no records", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(aggregate_manifest(records), indent=2, sort_keys=True))
    else:
        print(format_manifest_report(
            records, title=f"run manifest — {args.manifest}"
        ))
    return 0


def _cmd_stream_gen(args: argparse.Namespace) -> int:
    import random

    from repro.measurement.trace import TraceConfig, TraceGenerator
    from repro.stream.feed import FeedWriter, snapshot_deltas

    if args.days < 1:
        print(f"--days must be >= 1, got {args.days}", file=sys.stderr)
        return 2
    defaults = TraceConfig()
    # Keep only the fault spikes that land inside the shortened trace, and
    # size the background pool so every fault victim exists beforehand —
    # that pre-existence is what turns a spike into inconsistent-list
    # alarms on the stream path.
    faults = tuple(f for f in defaults.faults if f.day < args.days)
    needed = sum(f.n_prefixes for f in faults)
    config = TraceConfig(
        days=args.days,
        faults=faults,
        n_background_prefixes=max(2000, needed),
        include_background=True,
    )
    generator = TraceGenerator(config, random.Random(args.seed))
    with FeedWriter(args.out) as writer:
        total = writer.write_all(
            snapshot_deltas(generator.snapshots(), refresh=args.refresh)
        )
    print(
        f"feed written: {args.out} ({total} records, {args.days} days, "
        f"{len(faults)} fault spike(s), seed {args.seed}"
        f"{', refresh mode' if args.refresh else ''})"
    )
    return 0


def _cmd_stream_run(args: argparse.Namespace) -> int:
    from repro.obs.manifest import ManifestWriter
    from repro.obs.metrics import MetricsRegistry
    from repro.stream.checkpoint import CheckpointError
    from repro.stream.router import FeedRouter
    from repro.stream.service import StreamService

    if args.resume and args.checkpoint is None:
        print("--resume requires --checkpoint", file=sys.stderr)
        return 2
    sharded = args.shards > 1 or len(args.feed) > 1
    if sharded and args.follow:
        print("--follow is not supported with sharded routing", file=sys.stderr)
        return 2
    metrics = MetricsRegistry()
    service: Any
    if sharded:
        service = FeedRouter(
            args.feed,
            args.alarms,
            args.checkpoint,
            shards=args.shards,
            window=args.window,
            checkpoint_every=args.checkpoint_every,
            full_every=args.full_every,
            throttle=args.throttle,
            max_records=args.max_records,
            metrics=metrics,
            index=args.index,
        )
    else:
        service = StreamService(
            args.feed[0],
            args.alarms,
            args.checkpoint,
            window=args.window,
            batch_size=args.batch,
            checkpoint_every=args.checkpoint_every,
            full_every=args.full_every,
            follow=args.follow,
            poll_interval=args.poll,
            throttle=args.throttle,
            max_records=args.max_records,
            metrics=metrics,
            index=args.index,
        )
    service.install_signal_handlers()
    try:
        summary = service.run(resume=args.resume)
    except (CheckpointError, FileNotFoundError, ValueError) as exc:
        print(f"stream run failed: {exc}", file=sys.stderr)
        return 1
    if args.manifest:
        with ManifestWriter(args.manifest) as writer:
            writer.write(
                service.manifest_record(
                    summary,
                    spec={"resume": args.resume, "seed": None},
                    metrics=metrics,
                )
            )
        print(f"manifest written: {args.manifest}")
    print(
        f"processed {summary.records} records to offset {summary.offset} "
        f"({summary.days_ticked} days)"
    )
    print(
        f"alarms: {summary.alarms_emitted} emitted "
        f"(+{summary.alarm_duplicates} duplicates), "
        f"{summary.alarm_lines} lines durable in {args.alarms}"
    )
    print(
        f"state: {summary.state_prefixes} prefixes, "
        f"{summary.moas_active} in MOAS"
    )
    print(
        f"checkpoints: {summary.checkpoints} "
        f"({summary.checkpoint_fulls} full, {summary.checkpoint_deltas} "
        f"delta, {summary.checkpoint_seconds:.3f}s total)"
    )
    if summary.shards > 1:
        print(f"shards: {summary.shards} engines over {len(args.feed)} feed(s)")
    print(
        f"throughput: {summary.records} records in "
        f"{summary.wall_seconds:.3f}s ({summary.events_per_sec:,.0f} "
        f"records/sec)"
    )
    if summary.stopped:
        print("stopped on request; resume with --resume to continue")
    if args.index:
        print(f"query index maintained in {args.index}")
    return 0


# -- query subcommands --------------------------------------------------------


def _cmd_query_build(args: argparse.Namespace) -> int:
    from repro.query import build_index

    try:
        info = build_index(
            args.feeds,
            args.alarms,
            args.out,
            segment_days=args.segment_days,
        )
    except (FileNotFoundError, ValueError) as exc:
        print(f"query build failed: {exc}", file=sys.stderr)
        return 1
    print(
        f"index built: {args.out} ({info['segments']} segment(s), "
        f"{info['records']} records, {info['days']} days, {info['mode']} mode)"
    )
    return 0


def _cmd_query_scan(args: argparse.Namespace) -> int:
    from repro.query import answers_doc, canonical_json, scan_state

    try:
        state = scan_state(args.feeds, args.alarms)
    except (FileNotFoundError, ValueError) as exc:
        print(f"query scan failed: {exc}", file=sys.stderr)
        return 1
    print(canonical_json(answers_doc(state, args.k)))
    return 0


def _cmd_query_dump(args: argparse.Namespace) -> int:
    from repro.query import QueryIndex, answers_doc, canonical_json

    try:
        index = QueryIndex(args.index)
    except (FileNotFoundError, ValueError) as exc:
        print(f"query dump failed: {exc}", file=sys.stderr)
        return 1
    print(canonical_json(answers_doc(index.state, args.k)))
    return 0


def _cmd_query_stats(args: argparse.Namespace) -> int:
    from repro.query import QueryIndex, canonical_json

    try:
        index = QueryIndex(args.index)
    except (FileNotFoundError, ValueError) as exc:
        print(f"query stats failed: {exc}", file=sys.stderr)
        return 1
    print(canonical_json(index.stats()))
    return 0


def _cmd_query_prefix(args: argparse.Namespace) -> int:
    from repro.query import QueryIndex, canonical_json

    try:
        index = QueryIndex(args.index)
    except (FileNotFoundError, ValueError) as exc:
        print(f"query prefix failed: {exc}", file=sys.stderr)
        return 1
    print(canonical_json(index.prefix(args.prefix)))
    return 0


def _cmd_query_top(args: argparse.Namespace) -> int:
    from repro.query import QueryIndex, canonical_json

    try:
        index = QueryIndex(args.index)
        rows = index.top(args.k, args.by)
    except (FileNotFoundError, ValueError) as exc:
        print(f"query top failed: {exc}", file=sys.stderr)
        return 1
    print(canonical_json(rows))
    return 0


def _cmd_query_serve(args: argparse.Namespace) -> int:
    import signal
    import threading

    from repro.obs.metrics import MetricsRegistry
    from repro.query.server import make_server

    metrics = MetricsRegistry()
    try:
        server = make_server(
            args.index, args.host, args.port, metrics=metrics
        )
    except (FileNotFoundError, ValueError, OSError) as exc:
        print(f"query serve failed: {exc}", file=sys.stderr)
        return 1
    host, port = server.server_address[:2]
    print(
        f"serving query API at http://{host}:{port} (index: {args.index}, "
        f"generation {server.index.generation}); SIGTERM/Ctrl-C to stop",
        flush=True,
    )
    stop = threading.Event()

    def _on_signal(signum: int, frame: Any) -> None:
        stop.set()

    signal.signal(signal.SIGTERM, _on_signal)
    signal.signal(signal.SIGINT, _on_signal)
    thread = threading.Thread(
        target=server.serve_forever, name="query-server", daemon=True
    )
    thread.start()
    stop.wait()
    server.shutdown()
    thread.join()
    server.server_close()
    print("query server stopped")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Detection of Invalid Routing "
        "Announcement in the Internet' (DSN 2002)",
    )
    from repro import __version__

    parser.add_argument(
        "--version", action="version", version=f"repro {__version__}"
    )
    parser.add_argument(
        "--sanitize", action="store_true",
        help="enable runtime invariant checking (RIB consistency, MOAS "
        "attachment round-trips, monotonic event times); equivalent to "
        "setting REPRO_SANITIZE=1",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    figure = sub.add_parser("figure", help="regenerate one of the paper's figures")
    figure.add_argument(
        "id",
        help="fig4 | fig5 | fig8 | fig9 | fig10 | fig11 | headline",
    )
    figure.add_argument("--quick", action="store_true",
                        help="smaller grids for a fast look")
    figure.add_argument("--seed", type=int, default=8)
    figure.add_argument(
        "--workers", type=int, default=None,
        help="parallel simulation workers for fig9/fig10/fig11/headline "
        "(default: REPRO_WORKERS env var, else 1 = serial); results are "
        "identical at any worker count",
    )
    figure.set_defaults(func=_cmd_figure)

    study = sub.add_parser("study", help="run the §3 measurement study")
    study.add_argument("--days", type=int, default=None)
    study.add_argument("--seed", type=int, default=42)
    study.set_defaults(func=_cmd_study)

    monitor = sub.add_parser("monitor", help="off-line MOAS monitor over a dump")
    monitor.add_argument("dump", help="path to a RouteViews-style dump file")
    monitor.set_defaults(func=_cmd_monitor)

    topology = sub.add_parser("topology", help="generate a paper-style topology")
    topology.add_argument("--size", type=int, default=46)
    topology.add_argument("--seed", type=int, default=8)
    topology.add_argument("--edges", action="store_true", help="print edge list")
    topology.set_defaults(func=_cmd_topology)

    hijack = sub.add_parser("hijack", help="run one hijack scenario")
    hijack.add_argument(
        "--size", type=int, default=46,
        help="topology size; <=100 uses the paper generator, larger sizes "
        "the Internet-like scale generator (default 46)",
    )
    hijack.add_argument("--origins", type=int, default=1)
    hijack.add_argument("--attackers", type=float, default=0.1,
                        help="attacker fraction of ASes")
    hijack.add_argument("--deployment", choices=("none", "partial", "full"),
                        default="full")
    hijack.add_argument(
        "--timing", choices=("simultaneous", "post-convergence"),
        default="simultaneous",
        help="when the false origination is injected: racing the genuine "
        "announcement from a cold start, or against an already-converged "
        "prefix",
    )
    hijack.add_argument(
        "--warm-start", default=None, metavar="MODE",
        help="baseline cache: 'mem' (in-process LRU), 'disk' "
        "(~/.cache/repro-warmstart), or a directory path; default: the "
        "REPRO_WARMSTART env var, else off; results are identical either "
        "way (see docs/warmstart.md)",
    )
    hijack.add_argument("--seed", type=int, default=8)
    hijack.add_argument(
        "--shards", type=int, default=1, metavar="N",
        help="partition the run's speakers across N forked shard processes "
        "(bit-identical to serial; pays off on multi-core machines for "
        "large --size topologies; see docs/performance.md)",
    )
    hijack.add_argument(
        "--manifest", default=None, metavar="PATH",
        help="write a one-record JSONL run manifest (spec, seed, outcome, "
        "metric snapshot, worker id) to PATH",
    )
    hijack.add_argument(
        "--spans", default=None, metavar="PATH",
        help="write the phase-span trace (topology build, convergence, "
        "fault injection, recovery) as JSON to PATH",
    )
    hijack.set_defaults(func=_cmd_hijack)

    profile = sub.add_parser(
        "profile",
        help="profile one hijack scenario under cProfile and print the "
        "hottest functions",
    )
    profile.add_argument(
        "--size", type=int, default=63,
        help="topology size; <=100 uses the paper generator, larger sizes "
        "the Internet-like scale generator (default 63)",
    )
    profile.add_argument("--origins", type=int, default=1)
    profile.add_argument("--attackers", type=float, default=0.1,
                         help="attacker fraction of ASes")
    profile.add_argument("--deployment", choices=("none", "partial", "full"),
                         default="full")
    profile.add_argument(
        "--timing", choices=("simultaneous", "post-convergence"),
        default="simultaneous",
    )
    profile.add_argument("--seed", type=int, default=8)
    profile.add_argument(
        "--repeat", type=int, default=1, metavar="N",
        help="profile N back-to-back runs (averages out noise on small "
        "topologies)",
    )
    profile.add_argument(
        "--warm", action="store_true",
        help="run the scenario once unprofiled first so one-time caches "
        "don't pollute the profile",
    )
    profile.add_argument(
        "--sort", default="cumulative",
        choices=("cumulative", "tottime", "ncalls", "calls", "time"),
        help="pstats sort key (default cumulative)",
    )
    profile.add_argument("--limit", type=int, default=25, metavar="N",
                         help="print the top N entries (default 25)")
    profile.add_argument(
        "--output", default=None, metavar="PATH",
        help="also dump raw pstats data to PATH (for snakeviz etc.)",
    )
    profile.set_defaults(func=_cmd_profile)

    sweep = sub.add_parser(
        "sweep", help="run an attacker-fraction sweep (optionally manifested)"
    )
    sweep.add_argument("--size", type=int, default=46)
    sweep.add_argument("--origins", type=int, default=1)
    sweep.add_argument("--fractions", default="0.05,0.20,0.40",
                       help="comma-separated attacker fractions")
    sweep.add_argument("--deployment", choices=("none", "partial", "full"),
                       default="full")
    sweep.add_argument("--origin-sets", type=int, default=3)
    sweep.add_argument("--attacker-sets", type=int, default=5)
    sweep.add_argument(
        "--timing", choices=("simultaneous", "post-convergence"),
        default="simultaneous",
        help="attack timing for every scenario of the sweep "
        "(post-convergence baselines are where --warm-start pays off)",
    )
    sweep.add_argument(
        "--shards", type=int, default=1, metavar="N",
        help="intra-run sharding for every scenario; composes "
        "multiplicatively with --workers (keep the product within the "
        "machine's cores)",
    )
    sweep.add_argument(
        "--warm-start", default=None, metavar="MODE",
        help="baseline cache: 'mem' (in-process LRU), 'disk' "
        "(~/.cache/repro-warmstart), or a directory path; workers resolve "
        "the mode to worker-local caches; default: the REPRO_WARMSTART env "
        "var, else off; results are identical either way",
    )
    sweep.add_argument("--seed", type=int, default=8)
    sweep.add_argument(
        "--workers", type=int, default=None,
        help="parallel simulation workers (default: REPRO_WORKERS env var, "
        "else 1 = serial); results are identical at any worker count",
    )
    sweep.add_argument(
        "--manifest", default=None, metavar="PATH",
        help="write one JSONL manifest record per scenario to PATH",
    )
    sweep.set_defaults(func=_cmd_sweep)

    report = sub.add_parser(
        "report", help="aggregate a JSONL run manifest into the paper's tables"
    )
    report.add_argument("manifest", help="path to a .jsonl run manifest")
    report.add_argument("--json", action="store_true",
                        help="emit the aggregation as JSON instead of a table")
    report.set_defaults(func=_cmd_report)

    stream = sub.add_parser(
        "stream",
        help="online MOAS detection over a BGP update feed "
        "(gen a feed, run the service with checkpoint/resume)",
    )
    stream_sub = stream.add_subparsers(dest="stream_command", required=True)

    gen = stream_sub.add_parser(
        "gen", help="diff the synthetic trace into an update-feed file"
    )
    gen.add_argument("--days", type=int, default=200,
                     help="trace length in days (default 200)")
    gen.add_argument("--seed", type=int, default=42)
    gen.add_argument("--out", required=True, metavar="PATH",
                     help="feed file to write")
    gen.add_argument(
        "--refresh", action="store_true",
        help="re-announce every live (prefix, origin) pair daily instead of "
        "deltas only (a cooperative RIB-dump replay; much larger feed)",
    )
    gen.set_defaults(func=_cmd_stream_gen)

    run = stream_sub.add_parser(
        "run", help="tail a feed file and detect MOAS conflicts online"
    )
    run.add_argument("feed", nargs="+",
                     help="update-feed file(s); multiple vantage-point "
                     "feeds imply sharded routing")
    run.add_argument("--alarms", required=True, metavar="PATH",
                     help="alarm log to write (one JSON line per alarm)")
    run.add_argument("--checkpoint", default=None, metavar="PATH",
                     help="checkpoint file for kill-and-resume")
    run.add_argument("--checkpoint-every", type=int, default=1000,
                     metavar="N", help="checkpoint every N records")
    run.add_argument("--full-every", type=int, default=32, metavar="N",
                     help="compact the delta chain into a full snapshot "
                     "every N checkpoints (default 32)")
    run.add_argument("--shards", type=int, default=1, metavar="S",
                     help="partition the prefix space across S engine "
                     "processes (>1 enables the feed router)")
    run.add_argument("--batch", type=int, default=256,
                     help="records per batched read")
    run.add_argument("--resume", action="store_true",
                     help="resume from --checkpoint instead of starting fresh")
    run.add_argument("--follow", action="store_true",
                     help="keep tailing at EOF (live feed); stop with SIGTERM")
    run.add_argument("--poll", type=float, default=0.2, metavar="SECONDS",
                     help="EOF poll interval in follow mode")
    run.add_argument(
        "--throttle", type=float, default=0.0, metavar="SECONDS",
        help="sleep after each batch (rate-limits a replay so it can be "
        "interrupted mid-stream)",
    )
    run.add_argument("--max-records", type=int, default=None, metavar="N",
                     help="stop after N records (deterministic interruption)")
    run.add_argument("--window", type=float, default=30.0, metavar="TICKS",
                     help="evict dead-prefix evidence after this many quiet "
                     "ticks")
    run.add_argument("--manifest", default=None, metavar="PATH",
                     help="write a one-record JSONL run manifest to PATH")
    run.add_argument("--index", default=None, metavar="DIR",
                     help="maintain a query index in DIR, one segment per "
                     "checkpoint boundary (serve it with 'repro query')")
    run.set_defaults(func=_cmd_stream_run)

    query = sub.add_parser(
        "query",
        help="looking-glass queries over alarm/MOAS history "
        "(build indexes, inspect them, serve them over HTTP)",
    )
    query_sub = query.add_subparsers(dest="query_command", required=True)

    qbuild = query_sub.add_parser(
        "build", help="build a complete index from a feed + alarm log"
    )
    qbuild.add_argument("feeds", nargs="+", metavar="FEED",
                        help="feed file(s); several = router-interleaved")
    qbuild.add_argument("--alarms", required=True, metavar="PATH",
                        help="the run's alarm log")
    qbuild.add_argument("--out", required=True, metavar="DIR",
                        help="index directory to (re)build")
    qbuild.add_argument("--segment-days", type=int, default=30, metavar="N",
                        help="cut a segment every N trace days (default 30)")
    qbuild.set_defaults(func=_cmd_query_build)

    qscan = query_sub.add_parser(
        "scan",
        help="answer every query by brute-force scan of the raw artefacts "
        "(the oracle an index is diffed against)",
    )
    qscan.add_argument("feeds", nargs="+", metavar="FEED")
    qscan.add_argument("--alarms", required=True, metavar="PATH")
    qscan.add_argument("--k", type=int, default=10, metavar="K",
                       help="top-K depth in the answer document")
    qscan.set_defaults(func=_cmd_query_scan)

    qdump = query_sub.add_parser(
        "dump", help="print every answer from an index (same document as "
        "'scan' — diff them to verify an index)"
    )
    qdump.add_argument("index", metavar="DIR")
    qdump.add_argument("--k", type=int, default=10, metavar="K")
    qdump.set_defaults(func=_cmd_query_dump)

    qstats = query_sub.add_parser(
        "stats", help="global aggregates from an index"
    )
    qstats.add_argument("index", metavar="DIR")
    qstats.set_defaults(func=_cmd_query_stats)

    qprefix = query_sub.add_parser(
        "prefix", help="one prefix's timeline, origin sets, and MOAS stats"
    )
    qprefix.add_argument("index", metavar="DIR")
    qprefix.add_argument("prefix", metavar="PREFIX")
    qprefix.set_defaults(func=_cmd_query_prefix)

    qtop = query_sub.add_parser(
        "top", help="the K noisiest prefixes under a ranking key"
    )
    qtop.add_argument("index", metavar="DIR")
    qtop.add_argument("--k", type=int, default=10, metavar="K")
    qtop.add_argument("--by", choices=("alarms", "transitions", "moas_days"),
                      default="alarms")
    qtop.set_defaults(func=_cmd_query_top)

    qserve = query_sub.add_parser(
        "serve", help="serve the JSON query API over HTTP (stdlib only)"
    )
    qserve.add_argument("index", metavar="DIR")
    qserve.add_argument("--host", default="127.0.0.1")
    qserve.add_argument("--port", type=int, default=8642,
                        help="TCP port (0 = ephemeral)")
    qserve.set_defaults(func=_cmd_query_serve)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    try:
        args = parser.parse_args(argv)
    except SystemExit as exc:
        # argparse raises for --help (code 0) and usage errors (code 2,
        # message already printed).  Surface both as return codes so
        # in-process callers never see a traceback or a raw SystemExit.
        if exc.code is None:
            return 0
        if isinstance(exc.code, int):
            return exc.code
        print(exc.code, file=sys.stderr)
        return 2
    if args.sanitize:
        # Via the environment so worker processes inherit it too.
        import os

        from repro.sanitize import SANITIZE_ENV_VAR

        os.environ[SANITIZE_ENV_VAR] = "1"
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
