"""Disjoint-path analysis of announcement survivability.

The MOAS-list mechanism protects an AS as long as *one* copy of the
genuine announcement reaches it.  Random attackers block a copy only by
occupying a node on its path, so the quantity that matters is the
vertex-disjoint path structure between each AS and the origin:

* Menger: the minimum number of non-origin, non-destination nodes whose
  removal disconnects v from the origin equals the maximum number of
  internally vertex-disjoint origin-v paths, ``k(v)``;
* with each AS independently an attacker with probability ``f``, a path
  whose interior has ``l`` nodes survives with probability ``(1-f)^l``;
  treating the disjoint paths as independent, the chance *all* of them are
  blocked is ``prod(1 - (1-f)^l_i)`` — the analytic cut-off estimate.

Richer topologies have larger ``k(v)`` and shorter paths, driving the
estimate toward zero — the paper's Experiment 2 phenomenon, in a formula.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

import networkx as nx

from repro.net.asn import ASN
from repro.topology.asgraph import ASGraph


@dataclass(frozen=True)
class ConnectivityProfile:
    """Disjoint-path structure from the origin to one AS."""

    asn: ASN
    disjoint_paths: int
    interior_lengths: Tuple[int, ...]  # interior node count per path

    @property
    def min_cut(self) -> int:
        """Attackers needed to block every genuine-route copy (Menger)."""
        return self.disjoint_paths


def disjoint_path_profile(
    graph: ASGraph, origin: ASN, target: ASN
) -> ConnectivityProfile:
    """The maximum set of internally vertex-disjoint origin→target paths."""
    if origin == target:
        return ConnectivityProfile(asn=target, disjoint_paths=0,
                                   interior_lengths=())
    nxg = graph.to_networkx()
    if nxg.has_edge(origin, target):
        # Direct adjacency cannot be blocked by any third party; model it
        # as one disjoint path with an empty interior, plus the disjoint
        # paths of the graph without that edge.
        nxg.remove_edge(origin, target)
        try:
            others = list(nx.node_disjoint_paths(nxg, origin, target))
        except nx.NetworkXNoPath:
            others = []
        lengths = (0,) + tuple(len(path) - 2 for path in others)
        return ConnectivityProfile(
            asn=target,
            disjoint_paths=len(lengths),
            interior_lengths=lengths,
        )
    paths = list(nx.node_disjoint_paths(nxg, origin, target))
    lengths = tuple(sorted(len(path) - 2 for path in paths))
    return ConnectivityProfile(
        asn=target, disjoint_paths=len(paths), interior_lengths=lengths
    )


def blocking_probability(
    profile: ConnectivityProfile, attacker_fraction: float
) -> float:
    """P(every disjoint path contains >= 1 attacker) under independent
    random attacker placement with density ``attacker_fraction``."""
    if not 0 <= attacker_fraction <= 1:
        raise ValueError(f"fraction must be in [0, 1]: {attacker_fraction}")
    if profile.disjoint_paths == 0:
        return 0.0  # the origin itself
    product = 1.0
    for interior in profile.interior_lengths:
        survive = (1.0 - attacker_fraction) ** interior
        product *= 1.0 - survive
    return product


def predicted_cutoff(
    graph: ASGraph, origin: ASN, attacker_fraction: float
) -> float:
    """Mean predicted probability of an AS being cut off from the origin's
    announcement — the analytic counterpart of the detection residual's
    upper bound."""
    others = [asn for asn in graph.asns() if asn != origin]
    if not others:
        return 0.0
    total = 0.0
    for asn in others:
        profile = disjoint_path_profile(graph, origin, asn)
        total += blocking_probability(profile, attacker_fraction)
    return total / len(others)


def profile_topology(
    graph: ASGraph, origin: ASN
) -> Dict[ASN, ConnectivityProfile]:
    """Disjoint-path profiles from ``origin`` to every other AS."""
    return {
        asn: disjoint_path_profile(graph, origin, asn)
        for asn in graph.asns()
        if asn != origin
    }
