"""Analytical validation of the topology-robustness phenomenon.

§5.3/§6: "the improved robustness of our solution comes from the fact
that ASes are more richly connected in the larger topology ...  As part of
our continuing research effort we are currently seeking a formal
validation proof of this phenomenon."

This package supplies that analysis: by Menger's theorem, the number of
vertex-disjoint paths between the origin and an AS equals the minimum
number of nodes an attacker must control to block every copy of the
genuine announcement.  From the disjoint-path structure we derive an
analytic estimate of each AS's probability of being cut off by random
attackers, and the benchmarks validate it against the simulated detection
residual.
"""

from repro.analysis.connectivity import (
    ConnectivityProfile,
    blocking_probability,
    disjoint_path_profile,
    predicted_cutoff,
    profile_topology,
)

__all__ = [
    "ConnectivityProfile",
    "disjoint_path_profile",
    "blocking_probability",
    "predicted_cutoff",
    "profile_topology",
]
