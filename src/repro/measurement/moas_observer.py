"""Detecting MOAS cases in daily routing-table snapshots.

"If an IP address prefix appears to originate from more than one AS, we
call this a Multiple Origin Autonomous System (MOAS) case" — i.e. for a
prefix ``d`` with paths ``asp1 = (p1..pn)`` and ``asp2 = (q1..qm)``, a MOAS
occurs iff ``pn != qm``.

The observer consumes one snapshot per day — a mapping from prefix to the
set of origin ASes seen across all collector peers that day — and emits
the day's MOAS cases.  Because the paper works from daily table dumps, the
one-day granularity caveat of its footnote 2 (very short MOAS episodes are
indistinguishable from one-day ones) is inherent to this interface too.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Mapping

from repro.net.addresses import Prefix
from repro.net.asn import ASN
from repro.topology.routeviews import RouteViewsTable

#: One day's view: each prefix mapped to the origin ASes observed for it.
DailySnapshot = Mapping[Prefix, FrozenSet[ASN]]


@dataclass(frozen=True)
class MoasCase:
    """One prefix observed with multiple origins on one day."""

    day: int
    prefix: Prefix
    origins: FrozenSet[ASN]

    def __post_init__(self) -> None:
        if len(self.origins) < 2:
            raise ValueError(
                f"a MOAS case needs >= 2 origins, got {sorted(self.origins)}"
            )

    @property
    def origin_count(self) -> int:
        return len(self.origins)


class MoasObserver:
    """Scans daily snapshots for MOAS cases and keeps the daily counts."""

    def __init__(self) -> None:
        self.daily_counts: Dict[int, int] = {}
        self._cases: List[MoasCase] = []

    def observe_snapshot(self, day: int, snapshot: DailySnapshot) -> List[MoasCase]:
        """Record one day; returns the day's MOAS cases."""
        if day in self.daily_counts:
            raise ValueError(f"day {day} was already observed")
        cases = [
            MoasCase(day=day, prefix=prefix, origins=frozenset(origins))
            for prefix, origins in snapshot.items()
            if len(origins) > 1
        ]
        cases.sort(key=lambda c: str(c.prefix))
        self.daily_counts[day] = len(cases)
        self._cases.extend(cases)
        return cases

    def observe_table(self, day: int, table: RouteViewsTable) -> List[MoasCase]:
        """Convenience: observe straight from a parsed RouteViews dump."""
        return self.observe_snapshot(day, table.origins_by_prefix())

    # -- results -------------------------------------------------------------

    @property
    def cases(self) -> List[MoasCase]:
        return list(self._cases)

    def daily_series(self) -> List[int]:
        """Counts ordered by day — the Figure 4 series."""
        return [self.daily_counts[day] for day in sorted(self.daily_counts)]

    def days_observed(self) -> int:
        return len(self.daily_counts)

    def distinct_prefixes(self) -> int:
        """Number of distinct prefixes ever involved in a MOAS case."""
        return len({case.prefix for case in self._cases})

    def origin_count_distribution(self) -> Dict[int, int]:
        """How many distinct (prefix, origin-set) cases involved k origins —
        the basis of the paper's 96.14 % / 2.7 % two-/three-origin split."""
        seen = {(case.prefix, case.origins) for case in self._cases}
        out: Dict[int, int] = {}
        # Sorted so the histogram's key insertion order is reproducible.
        for _, origins in sorted(seen, key=lambda c: (c[0], tuple(sorted(c[1])))):
            k = len(origins)
            out[k] = out.get(k, 0) + 1
        return out
