"""A RouteViews-style route collector inside the simulation.

The Oregon RouteViews server is simply a BGP speaker that peers with many
ASes, never originates or forwards, and archives what it hears.  This
module implements exactly that: :class:`RouteCollector` joins a simulated
network as an extra AS, peers with chosen vantage ASes, and snapshots its
Adj-RIB-In into the same :class:`~repro.topology.routeviews.RouteViewsTable`
format the §3 measurement pipeline consumes.

This closes the reproduction loop: a simulated hijack can be *measured*
with the identical dump→observe→monitor toolchain the paper ran against
the real archive.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

from repro.bgp.network import Network
from repro.bgp.policy import Policy, PolicyVerdict
from repro.bgp.speaker import BGPSpeaker, SpeakerConfig
from repro.net.addresses import Prefix
from repro.net.asn import ASN, validate_asn
from repro.net.link import Link
from repro.topology.routeviews import RouteViewsTable


class _CollectorPolicy(Policy):
    """Collectors listen but never re-advertise (export rejects all)."""

    def apply_export(self, peer, prefix, attributes) -> PolicyVerdict:
        return PolicyVerdict.reject()


class RouteCollector:
    """A passive BGP vantage point attached to a simulated network."""

    def __init__(
        self,
        network: Network,
        collector_asn: ASN = 6447,  # the real RouteViews AS number
        vantages: Optional[Iterable[ASN]] = None,
        link_delay: float = 0.01,
    ) -> None:
        validate_asn(collector_asn)
        if collector_asn in network.speakers:
            raise ValueError(f"AS{collector_asn} already exists in the network")
        self.network = network
        self.collector_asn = collector_asn
        self.speaker = BGPSpeaker(
            network.sim,
            collector_asn,
            config=SpeakerConfig(mrai=0.0),
            policy=_CollectorPolicy(),
        )
        self.vantages: List[ASN] = []
        vantage_list = (
            sorted(vantages) if vantages is not None else network.graph.asns()[:3]
        )
        for vantage in vantage_list:
            self.add_vantage(vantage, link_delay=link_delay)

    def add_vantage(self, vantage: ASN, link_delay: float = 0.01) -> None:
        """Peer with one more AS and start the session."""
        if vantage not in self.network.speakers:
            raise ValueError(f"AS{vantage} is not in the network")
        if vantage in self.vantages:
            raise ValueError(f"AS{vantage} is already a vantage")
        link = Link(self.network.sim, self.collector_asn, vantage,
                    delay=link_delay)
        self.speaker.add_peer(vantage, link)
        self.network.speaker(vantage).add_peer(self.collector_asn, link)
        self.speaker.start_session(vantage)
        self.vantages.append(vantage)

    def table_dump(self, date: str = "") -> RouteViewsTable:
        """Snapshot the collector's Adj-RIB-In as a table dump.

        One row per (vantage, prefix), exactly like a daily RouteViews
        archive file.
        """
        table = RouteViewsTable(date=date, collector=f"AS{self.collector_asn}")
        for entry in self.speaker.adj_rib_in.entries():
            assert entry.peer is not None
            table.add(entry.prefix, entry.peer, entry.attributes.as_path)
        return table

    def prefixes_seen(self) -> List[Prefix]:
        return sorted(
            {entry.prefix for entry in self.speaker.adj_rib_in.entries()},
            key=str,
        )
