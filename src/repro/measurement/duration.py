"""MOAS duration accounting (Figure 5).

"The duration of an individual MOAS case counts the total number of days
when the routes to an address prefix were announced by more than one
origin, regardless of whether the days were continuous and regardless of
whether the same set of origins was involved."

So duration is per *prefix*: the count of MOAS-days accumulated over the
whole study period.  The tracker ingests the observer's cases and produces
the duration histogram.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Tuple

from repro.measurement.moas_observer import MoasCase
from repro.net.addresses import Prefix


class DurationTracker:
    """Accumulates per-prefix MOAS-day counts."""

    def __init__(self) -> None:
        self._moas_days: Dict[Prefix, int] = {}
        self._days_seen: Dict[Prefix, set] = {}

    def add_case(self, case: MoasCase) -> None:
        """Count one (day, prefix) MOAS observation; idempotent per day."""
        seen = self._days_seen.setdefault(case.prefix, set())
        if case.day in seen:
            return
        seen.add(case.day)
        self._moas_days[case.prefix] = self._moas_days.get(case.prefix, 0) + 1

    def add_cases(self, cases: Iterable[MoasCase]) -> None:
        for case in cases:
            self.add_case(case)

    # -- results ----------------------------------------------------------------

    def duration_of(self, prefix: Prefix) -> int:
        return self._moas_days.get(prefix, 0)

    def durations(self) -> List[int]:
        return sorted(self._moas_days.values())

    def histogram(self) -> Dict[int, int]:
        """duration (days) → number of prefixes, the Figure 5 histogram."""
        out: Dict[int, int] = {}
        for duration in self._moas_days.values():
            out[duration] = out.get(duration, 0) + 1
        return dict(sorted(out.items()))

    def total_cases(self) -> int:
        """Number of distinct prefixes ever in a MOAS case."""
        return len(self._moas_days)

    def one_day_fraction(self) -> float:
        """Share of cases lasting exactly one day (paper: 35.9 %)."""
        total = self.total_cases()
        if total == 0:
            return 0.0
        one_day = sum(1 for d in self._moas_days.values() if d == 1)
        return one_day / total

    def binned_histogram(
        self, edges: Iterable[int]
    ) -> List[Tuple[str, int]]:
        """Histogram binned at the given right-inclusive edges, plus an
        overflow bin; used for compact Figure 5 reporting."""
        edge_list = sorted(edges)
        counts = [0] * (len(edge_list) + 1)
        for duration in self._moas_days.values():
            for i, edge in enumerate(edge_list):
                if duration <= edge:
                    counts[i] += 1
                    break
            else:
                counts[-1] += 1
        labels: List[str] = []
        low = 1
        for edge in edge_list:
            labels.append(f"{low}-{edge}" if edge > low else f"{low}")
            low = edge + 1
        labels.append(f">{edge_list[-1]}" if edge_list else "all")
        return list(zip(labels, counts))
