"""The §3 MOAS measurement study.

The paper observes 1279 days of RouteViews tables (11/1997-7/2001) and
reports the daily number of MOAS cases (Figure 4) and the distribution of
MOAS durations (Figure 5).  This package reproduces the pipeline:

* :mod:`repro.measurement.moas_observer` — find MOAS cases in a daily
  origins snapshot;
* :mod:`repro.measurement.duration` — accumulate per-prefix MOAS duration
  across days ("the total number of days ... regardless of whether the
  days were continuous");
* :mod:`repro.measurement.trace` — a synthetic multi-year Internet trace
  calibrated to the paper's reported statistics (daily medians 683 → 1294,
  35.9 % one-day cases, the April-1998 and April-2001 fault spikes,
  96.14 % / 2.7 % two-/three-origin shares);
* :mod:`repro.measurement.stats` — summary statistics and the §4.3
  overhead accounting.
"""

from repro.measurement.collector import RouteCollector
from repro.measurement.moas_observer import DailySnapshot, MoasCase, MoasObserver
from repro.measurement.duration import DurationTracker
from repro.measurement.trace import TraceConfig, TraceGenerator
from repro.measurement.stats import (
    MoasStudySummary,
    moas_list_overhead_bytes,
    summarise_study,
)

__all__ = [
    "RouteCollector",
    "DailySnapshot",
    "MoasCase",
    "MoasObserver",
    "DurationTracker",
    "TraceConfig",
    "TraceGenerator",
    "MoasStudySummary",
    "summarise_study",
    "moas_list_overhead_bytes",
]
