"""Synthetic multi-year Internet MOAS trace (the Figure 4/5 workload).

The paper measures 1279 days of Oregon RouteViews dumps (11/8/1997 to
7/18/2001).  We cannot ship that proprietary archive, so this module
generates a synthetic daily origins-trace calibrated to every statistic
the paper reports:

* daily MOAS counts with medians ~683 (1998) rising to ~1294 (2001) —
  modelled as a persistent (multi-homing) MOAS population whose active
  size grows linearly, plus a small transient churn;
* the April 7 1998 fault spike (AS 8584; ~1136 one-day cases — 82.7 % of
  all one-day cases) and the April 6 2001 fault spike (AS 3561/15412
  involved in 5532 of that day's 6627 cases);
* 35.9 % of cases lasting exactly one day, within the duration-study
  window (the Figure 5 histogram is computed over data up to 7/2000 — the
  figure's x-axis — so the 2001 spike does not swamp it);
* origin-set sizes: 96.14 % two-origin, 2.7 % three-origin, remainder 4+.

Day indices are offsets from 11/8/1997; day 150 = 1998-04-07 and
day 1245 = 2001-04-06.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterator, List, Optional, Sequence, Tuple

from repro.measurement.duration import DurationTracker
from repro.measurement.moas_observer import MoasObserver
from repro.net.addresses import Prefix
from repro.net.asn import ASN

#: Day offsets of the notable calendar dates (from 11/8/1997).
DAY_1998_FAULT = 150  # 1998-04-07
DAY_2001_FAULT = 1245  # 2001-04-06
DAY_2000_JULY = 983  # 2000-07-18, the duration-study cutoff


@dataclass(frozen=True)
class FaultSpike:
    """A fault event in the trace: a burst of short-lived invalid MOAS."""

    day: int
    faulty_as: ASN
    n_prefixes: int
    duration_days: int = 1


@dataclass
class TraceConfig:
    """Calibration knobs; defaults reproduce the paper's statistics."""

    days: int = 1279
    #: Active persistent-MOAS population, linear from start to end.  The
    #: endpoints are fitted so the 1998 median ≈ 683 and 2001 ≈ 1294.
    active_start: int = 540
    active_end: int = 1334
    #: Persistent cases born per day beyond growth (turnover).
    persistent_birth_rate: float = 0.9
    #: Scattered transient cases per day (non-fault noise).
    transient_one_day_rate: float = 0.22
    transient_multi_day_rate: float = 0.4
    transient_multi_day_max: int = 10
    #: Origin-set size distribution (two, three; remainder is 4-5) for the
    #: organic (non-fault) population.  The fault spikes are all two-origin
    #: pairs, so these are set slightly below the paper's overall 96.14 % /
    #: 2.7 % shares so the *measured* distribution lands on the paper's.
    share_two_origins: float = 0.89
    share_three_origins: float = 0.075
    #: Fault events (paper §3.3).
    faults: Tuple[FaultSpike, ...] = (
        FaultSpike(day=DAY_1998_FAULT, faulty_as=8584, n_prefixes=1136),
        FaultSpike(day=DAY_2001_FAULT, faulty_as=15412, n_prefixes=5532),
    )
    #: Single-origin background prefixes included in each snapshot (these
    #: also serve as fault victims).  Set to 0 to emit only MOAS prefixes.
    n_background_prefixes: int = 8000
    include_background: bool = False
    #: Pool of AS numbers origins are drawn from.
    n_origin_pool: int = 3000

    def validate(self) -> None:
        if self.days < 1:
            raise ValueError("trace must cover at least one day")
        if self.active_start < 0 or self.active_end < 0:
            raise ValueError("active population must be non-negative")
        if not 0 <= self.share_two_origins + self.share_three_origins <= 1:
            raise ValueError("origin-share fractions must sum to <= 1")
        needed = sum(f.n_prefixes for f in self.faults)
        if self.n_background_prefixes < needed:
            raise ValueError(
                f"background pool ({self.n_background_prefixes}) smaller than "
                f"total fault victims ({needed})"
            )
        for fault in self.faults:
            if not 0 <= fault.day < self.days:
                raise ValueError(f"fault day {fault.day} outside trace")


class _PrefixAllocator:
    """Deterministic stream of distinct prefixes (10.x /24s, then 172.x)."""

    def __init__(self) -> None:
        self._counter = 0

    def next(self) -> Prefix:
        index = self._counter
        self._counter += 1
        # 2^16 /24s under 10.0.0.0/8, then continue under 100.64/10 space.
        if index < (1 << 16):
            network = (10 << 24) | (index << 8)
        else:
            network = (100 << 24) | ((index - (1 << 16)) << 8)
        return Prefix(network, 24)


@dataclass
class _ActiveCase:
    prefix: Prefix
    origins: FrozenSet[ASN]
    ends_on: Optional[int]  # day after which it disappears; None = open-ended


class TraceGenerator:
    """Generates daily origin snapshots per the configured calibration."""

    def __init__(self, config: Optional[TraceConfig] = None,
                 rng: Optional[random.Random] = None) -> None:
        self.config = config or TraceConfig()
        self.config.validate()
        self.rng = rng or random.Random(0)
        self._alloc = _PrefixAllocator()
        self._origin_pool = [100 + i for i in range(self.config.n_origin_pool)]
        self._background: List[Tuple[Prefix, ASN]] = [
            (self._alloc.next(), self.rng.choice(self._origin_pool))
            for _ in range(self.config.n_background_prefixes)
        ]
        # Fault victims are disjoint slices of the background pool so each
        # victim prefix is MOAS only during its fault window.
        self._fault_victims: Dict[int, List[Tuple[Prefix, ASN]]] = {}
        cursor = 0
        for fault in self.config.faults:
            self._fault_victims[fault.day] = self._background[
                cursor: cursor + fault.n_prefixes
            ]
            cursor += fault.n_prefixes

    # -- population mechanics ----------------------------------------------

    def _sample_origin_set(self, forced: Optional[ASN] = None) -> FrozenSet[ASN]:
        roll = self.rng.random()
        if roll < self.config.share_two_origins:
            k = 2
        elif roll < self.config.share_two_origins + self.config.share_three_origins:
            k = 3
        else:
            k = self.rng.randint(4, 5)
        chosen = set(self.rng.sample(self._origin_pool, k))
        if forced is not None:
            chosen.add(forced)
        return frozenset(chosen)

    def _target_active(self, day: int) -> int:
        if self.config.days == 1:
            return self.config.active_start
        span = self.config.days - 1
        frac = day / span
        return round(
            self.config.active_start
            + frac * (self.config.active_end - self.config.active_start)
        )

    def _new_case(self, day: int, duration: Optional[int]) -> _ActiveCase:
        ends_on = None if duration is None else day + duration - 1
        return _ActiveCase(
            prefix=self._alloc.next(),
            origins=self._sample_origin_set(),
            ends_on=ends_on,
        )

    # -- the trace ---------------------------------------------------------------

    def snapshots(self) -> Iterator[Tuple[int, Dict[Prefix, FrozenSet[ASN]]]]:
        """Yield ``(day, {prefix: origins})`` for every day of the trace."""
        cfg = self.config
        persistent: List[_ActiveCase] = [
            self._new_case(0, None) for _ in range(self._target_active(0))
        ]
        transients: List[_ActiveCase] = []

        for day in range(cfg.days):
            # Persistent-population dynamics: births (turnover + growth),
            # then trim random retirees down to the target size.
            if day > 0:
                births = _poisson(self.rng, cfg.persistent_birth_rate)
                births += max(0, self._target_active(day) - self._target_active(day - 1))
                for _ in range(births):
                    persistent.append(self._new_case(day, None))
                excess = len(persistent) - self._target_active(day)
                for _ in range(max(0, excess)):
                    victim = self.rng.randrange(len(persistent))
                    persistent.pop(victim)

            # Transient churn.
            transients = [t for t in transients if t.ends_on is not None
                          and t.ends_on >= day]
            for _ in range(_poisson(self.rng, cfg.transient_one_day_rate)):
                transients.append(self._new_case(day, 1))
            for _ in range(_poisson(self.rng, cfg.transient_multi_day_rate)):
                duration = self.rng.randint(2, cfg.transient_multi_day_max)
                transients.append(self._new_case(day, duration))

            snapshot: Dict[Prefix, FrozenSet[ASN]] = {}
            if cfg.include_background:
                for prefix, origin in self._background:
                    snapshot[prefix] = frozenset({origin})
            for case in persistent:
                snapshot[case.prefix] = case.origins
            for case in transients:
                snapshot[case.prefix] = case.origins

            # Fault spikes: the faulty AS shows up as an extra origin on
            # each victim prefix for the fault's duration.
            for fault in cfg.faults:
                if fault.day <= day < fault.day + fault.duration_days:
                    for prefix, true_origin in self._fault_victims[fault.day]:
                        snapshot[prefix] = frozenset({true_origin, fault.faulty_as})

            yield day, snapshot

    def render_table(
        self, day: int, snapshot: Dict[Prefix, FrozenSet[ASN]]
    ) -> "RouteViewsTable":
        """Serialise one day's snapshot as a RouteViews-style table dump.

        Synthesises a plausible collector view: each origin of each prefix
        is seen through one synthetic vantage path ``(peer, transit,
        origin)``, so the dump exercises the same parse→infer→observe
        pipeline the paper ran on the real archive.  Vantage and transit
        ASNs are derived deterministically from the prefix so dumps are
        reproducible.
        """
        from repro.topology.routeviews import RouteViewsTable
        from repro.bgp.attributes import AsPath

        table = RouteViewsTable(date=f"day{day}", collector="synthetic")
        vantages = (64001, 64002)
        for prefix in sorted(snapshot, key=str):
            for index, origin in enumerate(sorted(snapshot[prefix])):
                peer = vantages[index % len(vantages)]
                transit = 64100 + (prefix.network >> 8) % 50
                path = [peer, transit, origin] if transit != origin else [peer, origin]
                table.add(prefix, peer, AsPath.from_asns(path))
        return table

    def run_study(
        self,
        duration_cutoff: int = DAY_2000_JULY,
    ) -> Tuple[MoasObserver, DurationTracker]:
        """Run the full §3 study: Figure 4 series + Figure 5 durations.

        ``duration_cutoff`` bounds the duration statistics (the paper's
        Figure 5 covers data up to mid-2000); the daily series always spans
        the whole trace.
        """
        observer = MoasObserver()
        tracker = DurationTracker()
        for day, snapshot in self.snapshots():
            cases = observer.observe_snapshot(day, snapshot)
            if day < duration_cutoff:
                tracker.add_cases(cases)
        return observer, tracker


def _poisson(rng: random.Random, lam: float) -> int:
    """Small-lambda Poisson draw (Knuth inversion)."""
    if lam <= 0:
        return 0
    import math

    threshold = math.exp(-lam)
    k = 0
    product = rng.random()
    while product > threshold:
        k += 1
        product *= rng.random()
    return k
