"""Summary statistics for the MOAS study and the §4.3 overhead accounting."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.core.moas_list import MoasList
from repro.measurement.duration import DurationTracker
from repro.measurement.moas_observer import MoasObserver


def median(values: Sequence[float]) -> float:
    """Median of a non-empty sequence."""
    if not values:
        raise ValueError("median of empty sequence")
    ordered = sorted(values)
    n = len(ordered)
    mid = n // 2
    if n % 2:
        return float(ordered[mid])
    return (ordered[mid - 1] + ordered[mid]) / 2.0


@dataclass(frozen=True)
class MoasStudySummary:
    """The §3.1 headline numbers, as measured on a trace."""

    days_observed: int
    total_cases: int
    max_daily_count: int
    max_daily_day: int
    median_daily_first_year: float
    median_daily_last_year: float
    one_day_fraction: float
    two_origin_share: float
    three_origin_share: float

    def rows(self) -> List[Tuple[str, str]]:
        """Report rows (label, value) for the benchmark harness."""
        return [
            ("days observed", str(self.days_observed)),
            ("distinct MOAS cases", str(self.total_cases)),
            ("max daily count", f"{self.max_daily_count} (day {self.max_daily_day})"),
            ("median daily, first year", f"{self.median_daily_first_year:.0f}"),
            ("median daily, last year", f"{self.median_daily_last_year:.0f}"),
            ("one-day cases", f"{self.one_day_fraction * 100:.1f}%"),
            ("two-origin share", f"{self.two_origin_share * 100:.2f}%"),
            ("three-origin share", f"{self.three_origin_share * 100:.2f}%"),
        ]


def summarise_study(
    observer: MoasObserver,
    tracker: DurationTracker,
    first_year_days: Tuple[int, int] = (54, 419),
    last_year_days: Tuple[int, int] = (1150, 1279),
) -> MoasStudySummary:
    """Compute the paper's headline statistics from a completed study.

    ``first_year_days``/``last_year_days`` delimit the windows whose daily
    medians the paper quotes (calendar 1998 and 2001, as day offsets from
    11/8/1997).
    """
    series = observer.daily_series()
    days = sorted(observer.daily_counts)
    if not days:
        raise ValueError("study observed no days")

    def window_median(bounds: Tuple[int, int]) -> float:
        lo, hi = bounds
        window = [observer.daily_counts[d] for d in days if lo <= d < hi]
        return median(window) if window else 0.0

    max_count = max(series)
    max_day = days[series.index(max_count)]

    origin_dist = observer.origin_count_distribution()
    dist_total = sum(origin_dist.values())
    two_share = origin_dist.get(2, 0) / dist_total if dist_total else 0.0
    three_share = origin_dist.get(3, 0) / dist_total if dist_total else 0.0

    return MoasStudySummary(
        days_observed=len(days),
        total_cases=tracker.total_cases(),
        max_daily_count=max_count,
        max_daily_day=max_day,
        median_daily_first_year=window_median(first_year_days),
        median_daily_last_year=window_median(last_year_days),
        one_day_fraction=tracker.one_day_fraction(),
        two_origin_share=two_share,
        three_origin_share=three_share,
    )


def moas_list_overhead_bytes(
    origins_by_prefix: Mapping, moas_only: bool = True
) -> int:
    """Total community bytes MOAS lists add to a table (§4.3).

    "Routes that originate from a single AS need not attach a MOAS list";
    with ``moas_only`` (the default) single-origin prefixes cost nothing.
    """
    total = 0
    for origins in origins_by_prefix.values():
        if len(origins) > 1 or not moas_only:
            total += MoasList(origins).encoded_size_bytes()
    return total
