"""Immutable index segments and the atomically-replaced manifest.

The on-disk index is a directory:

* ``seg-000001.json``, ``seg-000002.json``, … — **write-once** segment
  files, each covering one span of boundary coordinates.  A segment holds
  the per-prefix event histories and day counters accumulated over its
  span, prefixes sorted, canonical JSON.  Segments are never modified or
  deleted by normal operation — readers can hold one open while ingest
  publishes the next.
* ``manifest.json`` — the **commit point**: the ordered segment list
  (name, seq, content digest) plus the index's end coordinates and a
  monotonically increasing ``generation``.  The manifest is replaced
  atomically (temp + fsync + ``os.replace`` + parent-directory fsync via
  :mod:`repro.fsio`), and it is written *after* its newest segment, so a
  crash anywhere leaves either the old manifest (the new segment is an
  unreferenced orphan, reaped at the next start) or the new one — never a
  torn or dangling state.  A manifest that fails to parse is refused with
  :class:`~repro.query.track.QueryError`; the builder never rewrites one
  in place.

Segment document::

    {"format": "repro-query-segment", "version": 1, "seq": 3,
     "start": {"records": …, "alarm_bytes": …, "feed_bytes": …},
     "end":   {…},
     "alarm_days": [[day, count], …], "moas_days": [[day, count], …],
     "prefixes": [[prefix, {"alarms": [row, …], "origins": [[t, [o…]], …]}], …]}

``start``/``end`` are boundary coordinates: ``records`` and
``alarm_bytes`` always; ``feed_bytes`` for a single-feed service or
``feed_offsets`` (one per vantage feed) for the sharded router.  Every
query answer is invariant to where segment boundaries fall (property-
tested), so the service, the router, and the offline builder may cut
segments on different cadences and still serve identical answers.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Set, Union

from repro.fsio import fsync_parent_dir
from repro.query.model import canonical_json
from repro.query.track import AlarmRow, IndexEvent, QueryError
from repro.stream.checkpoint import FaultHook

SEGMENT_FORMAT = "repro-query-segment"
MANIFEST_FORMAT = "repro-query-manifest"
QUERY_VERSION = 1

MANIFEST_NAME = "manifest.json"
_SEGMENT_GLOB = "seg-*.json"


def _no_fault(point: str) -> None:
    return None


def segment_name(seq: int) -> str:
    return f"seg-{seq:06d}.json"


def segment_digest(doc: Dict[str, Any]) -> str:
    """Content digest of a segment's canonical serialisation."""
    return hashlib.sha256(canonical_json(doc).encode("utf-8")).hexdigest()[:16]


def assemble_segment(
    seq: int,
    start: Dict[str, Any],
    end: Dict[str, Any],
    events: Sequence[IndexEvent],
    alarm_rows: Sequence[AlarmRow],
) -> Optional[Dict[str, Any]]:
    """Build one canonical segment document from builder buffers.

    Returns ``None`` when there is nothing to record (an empty boundary) —
    the manifest still advances its end coordinates, but no file is cut.
    """
    if not events and not alarm_rows:
        return None
    per_prefix: Dict[str, Dict[str, List[Any]]] = {}
    alarm_days: Dict[int, int] = {}
    moas_days: Dict[int, int] = {}

    def bucket(prefix: str) -> Dict[str, List[Any]]:
        entry = per_prefix.get(prefix)
        if entry is None:
            entry = {"alarms": [], "origins": []}
            per_prefix[prefix] = entry
        return entry

    for event in events:
        if event[0] == "o":
            bucket(event[2])["origins"].append([event[1], event[3]])
        else:  # "d"
            day = int(event[1])
            moas_days[day] = moas_days.get(day, 0) + int(event[2])
    for prefix, row in alarm_rows:
        bucket(prefix)["alarms"].append(row)
        day = int(row[0])
        alarm_days[day] = alarm_days.get(day, 0) + 1
    return {
        "format": SEGMENT_FORMAT,
        "version": QUERY_VERSION,
        "seq": seq,
        "start": dict(sorted(start.items())),
        "end": dict(sorted(end.items())),
        "alarm_days": [[day, alarm_days[day]] for day in sorted(alarm_days)],
        "moas_days": [[day, moas_days[day]] for day in sorted(moas_days)],
        "prefixes": [
            [prefix, per_prefix[prefix]] for prefix in sorted(per_prefix)
        ],
    }


def manifest_entry(doc: Dict[str, Any]) -> Dict[str, Any]:
    """The manifest's summary row for one segment document."""
    events = sum(
        len(history["alarms"]) + len(history["origins"])
        for _, history in doc["prefixes"]
    )
    return {
        "name": segment_name(int(doc["seq"])),
        "seq": int(doc["seq"]),
        "digest": segment_digest(doc),
        "records": int(doc["end"]["records"]),
        "prefixes": len(doc["prefixes"]),
        "events": events,
    }


def manifest_doc(
    generation: int,
    mode: str,
    end: Dict[str, Any],
    entries: Sequence[Dict[str, Any]],
) -> Dict[str, Any]:
    return {
        "format": MANIFEST_FORMAT,
        "version": QUERY_VERSION,
        "generation": generation,
        "mode": mode,
        "end": dict(sorted(end.items())),
        "segments": list(entries),
    }


def manifest_etag(doc: Dict[str, Any]) -> str:
    """Strong ETag for HTTP caching: content digest of the manifest."""
    digest = hashlib.sha256(canonical_json(doc).encode("utf-8")).hexdigest()[:16]
    return f'"{doc["generation"]}-{digest}"'


# -- durable writes -----------------------------------------------------------


def _atomic_write(
    path: Path, text: str, fault: Optional[FaultHook], point: str
) -> None:
    """temp + fsync + ``os.replace`` + parent-dir fsync, with fault points
    ``<point>-pre-fsync`` / ``-pre-replace`` / ``-pre-dirsync``."""
    hook: FaultHook = fault if fault is not None else _no_fault
    tmp = path.with_name(path.name + ".tmp")
    with tmp.open("w", encoding="utf-8") as handle:
        handle.write(text)
        handle.flush()
        hook(f"{point}-pre-fsync")
        os.fsync(handle.fileno())
    hook(f"{point}-pre-replace")
    os.replace(tmp, path)
    hook(f"{point}-pre-dirsync")
    fsync_parent_dir(path)


def write_segment(
    directory: Path, doc: Dict[str, Any], fault: Optional[FaultHook] = None
) -> None:
    """Publish one segment file durably (write-once; see module docs)."""
    _atomic_write(
        directory / segment_name(int(doc["seq"])),
        canonical_json(doc) + "\n",
        fault,
        "segment",
    )


def write_manifest(
    directory: Path, doc: Dict[str, Any], fault: Optional[FaultHook] = None
) -> None:
    """Atomically replace the manifest — the index's commit point."""
    _atomic_write(
        directory / MANIFEST_NAME, canonical_json(doc) + "\n", fault, "manifest"
    )


# -- loading ------------------------------------------------------------------


def load_segment(
    path: Union[str, Path], expect_digest: Optional[str] = None
) -> Dict[str, Any]:
    """Load and validate one segment file (optionally digest-checked)."""
    target = Path(path)
    try:
        doc = json.loads(target.read_text(encoding="utf-8"))
    except FileNotFoundError as exc:
        raise QueryError(f"missing index segment {target}") from exc
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise QueryError(f"corrupt index segment {target}: {exc}") from exc
    if not isinstance(doc, dict) or doc.get("format") != SEGMENT_FORMAT:
        raise QueryError(f"{target} is not a {SEGMENT_FORMAT} document")
    if doc.get("version") != QUERY_VERSION:
        raise QueryError(
            f"unsupported segment version {doc.get('version')!r} in {target}"
        )
    if expect_digest is not None and segment_digest(doc) != expect_digest:
        raise QueryError(
            f"segment {target} digest mismatch: manifest expects "
            f"{expect_digest}, file hashes to {segment_digest(doc)}"
        )
    return doc


def load_manifest(directory: Union[str, Path]) -> Optional[Dict[str, Any]]:
    """Load the manifest, ``None`` when the index has never been built.

    A manifest that exists but does not parse or validate is **refused**
    (it cannot result from the atomic writer — something external tore
    it), never silently rebuilt over.
    """
    target = Path(directory) / MANIFEST_NAME
    if not target.exists():
        return None
    try:
        doc = json.loads(target.read_text(encoding="utf-8"))
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise QueryError(
            f"torn or corrupt index manifest {target}: {exc}; refusing — "
            f"delete the index directory to rebuild"
        ) from exc
    if not isinstance(doc, dict) or doc.get("format") != MANIFEST_FORMAT:
        raise QueryError(f"{target} is not a {MANIFEST_FORMAT} document")
    if doc.get("version") != QUERY_VERSION:
        raise QueryError(
            f"unsupported manifest version {doc.get('version')!r} in {target}"
        )
    for key in ("generation", "mode", "end", "segments"):
        if key not in doc:
            raise QueryError(f"manifest {target} is missing {key!r}")
    return doc


def reap_unreferenced(
    directory: Union[str, Path], manifest: Optional[Dict[str, Any]]
) -> List[str]:
    """Remove ``*.tmp`` strays and segment files the manifest doesn't own.

    A crash between a segment write and its manifest publish leaves an
    orphan segment nothing references; the next builder start sweeps it
    (the same hygiene :func:`repro.stream.checkpoint.reap_stale_tmp`
    applies to checkpoint chains).  Returns removed file names.
    """
    base = Path(directory)
    if not base.is_dir():
        return []
    referenced: Set[str] = set()
    if manifest is not None:
        referenced = {str(entry["name"]) for entry in manifest["segments"]}
    reaped: List[str] = []
    for stale in sorted(base.glob("*.tmp")):
        try:
            stale.unlink()
        except OSError:
            continue
        reaped.append(stale.name)
    for candidate in sorted(base.glob(_SEGMENT_GLOB)):
        if candidate.name in referenced:
            continue
        try:
            candidate.unlink()
        except OSError:
            continue
        reaped.append(candidate.name)
    return reaped
