"""Zero-dependency JSON API over a :class:`~repro.query.reader.QueryIndex`.

Stdlib :class:`~http.server.ThreadingHTTPServer` only — the serving
surface must not cost a dependency.  Endpoints (all GET, all canonical
JSON):

* ``/healthz`` — liveness plus the served manifest generation;
* ``/v1/stats`` — global aggregates;
* ``/v1/prefix?p=<prefix>`` — one prefix's looking-glass report;
* ``/v1/top?k=<n>&by=<alarms|transitions|moas_days>`` — noisiest prefixes;
* ``/v1/daily?kind=<alarms|moas>`` — per-day series.

Caching: every data response carries the manifest ETag
(``"<generation>-<digest>"``); a request presenting it via
``If-None-Match`` gets ``304 Not Modified`` with no body.  Each request
first runs :meth:`~repro.query.reader.QueryIndex.reload_if_changed`
under the server's lock, so a server pointed at a live stream's index
directory serves fresh boundaries without restarting — the atomic
manifest replace makes the check safe at any moment.

The serving path contains no sleeps and no wall-clock reads of its own
(repro-lint R006/R002 apply to this module like any other): request
arrival is the only clock, and answer content depends only on the index.
"""

from __future__ import annotations

import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional, Tuple
from urllib.parse import parse_qs, urlsplit

from repro.obs.metrics import Counter, MetricsRegistry
from repro.query.model import TOP_KEYS, canonical_json
from repro.query.reader import QueryIndex


class QueryHTTPServer(ThreadingHTTPServer):
    """ThreadingHTTPServer bound to one :class:`QueryIndex`."""

    daemon_threads = True

    def __init__(
        self,
        address: Tuple[str, int],
        index: QueryIndex,
        *,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        super().__init__(address, QueryRequestHandler)
        self.index = index
        self.lock = threading.Lock()
        self.m_requests: Optional[Counter] = None
        self.m_not_modified: Optional[Counter] = None
        if metrics is not None:
            self.m_requests = metrics.counter("query.requests")
            self.m_not_modified = metrics.counter("query.not_modified")


class QueryRequestHandler(BaseHTTPRequestHandler):
    """Route GETs to the shared answer functions; canonical JSON out."""

    server: QueryHTTPServer
    protocol_version = "HTTP/1.1"

    def log_message(self, format: str, *args: Any) -> None:
        return None  # request logging is the caller's concern, not stderr's

    def do_GET(self) -> None:  # noqa: N802 (http.server naming contract)
        if self.server.m_requests is not None:
            self.server.m_requests.inc()
        split = urlsplit(self.path)
        params = parse_qs(split.query)
        try:
            with self.server.lock:
                self.server.index.reload_if_changed()
                etag = self.server.index.etag
                if split.path == "/healthz":
                    doc: Any = {
                        "status": "ok",
                        "generation": self.server.index.generation,
                        "records": self.server.index.records,
                    }
                elif split.path == "/v1/stats":
                    doc = self.server.index.stats()
                elif split.path == "/v1/prefix":
                    values = params.get("p")
                    if not values:
                        raise _BadRequest("missing required parameter 'p'")
                    doc = self.server.index.prefix(values[0])
                elif split.path == "/v1/top":
                    k = _int_param(params, "k", 10)
                    by = params.get("by", ["alarms"])[0]
                    if by not in TOP_KEYS:
                        raise _BadRequest(
                            f"unknown ranking key {by!r}; expected one of "
                            f"{', '.join(TOP_KEYS)}"
                        )
                    doc = self.server.index.top(k, by)
                elif split.path == "/v1/daily":
                    kind = params.get("kind", ["alarms"])[0]
                    if kind not in ("alarms", "moas"):
                        raise _BadRequest(
                            f"unknown daily series {kind!r}; expected "
                            f"alarms|moas"
                        )
                    doc = self.server.index.daily(kind)
                else:
                    self._send_error(404, f"no such endpoint: {split.path}")
                    return
        except _BadRequest as exc:
            self._send_error(400, str(exc))
            return
        except ValueError as exc:  # includes QueryError from a torn reload
            self._send_error(500, str(exc))
            return
        if self.headers.get("If-None-Match") == etag:
            if self.server.m_not_modified is not None:
                self.server.m_not_modified.inc()
            self.send_response(304)
            self.send_header("ETag", etag)
            self.send_header("Content-Length", "0")
            self.end_headers()
            return
        body = (canonical_json(doc) + "\n").encode("utf-8")
        self.send_response(200)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.send_header("ETag", etag)
        self.end_headers()
        self.wfile.write(body)

    def _send_error(self, status: int, message: str) -> None:
        body = (canonical_json({"error": message}) + "\n").encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)


class _BadRequest(Exception):
    """A client error the handler turns into a 400 JSON body."""


def _int_param(params: Dict[str, Any], key: str, default: int) -> int:
    values = params.get(key)
    if not values:
        return default
    try:
        value = int(values[0])
    except ValueError as exc:
        raise _BadRequest(f"parameter {key!r} must be an integer") from exc
    if value < 1:
        raise _BadRequest(f"parameter {key!r} must be >= 1")
    return value


def make_server(
    index_dir: str,
    host: str = "127.0.0.1",
    port: int = 0,
    *,
    metrics: Optional[MetricsRegistry] = None,
) -> QueryHTTPServer:
    """Build a ready-to-serve server (port 0 = ephemeral, for tests).

    Raises :class:`~repro.query.track.QueryError` when the directory holds
    no readable index — serving an empty lie is worse than failing fast.
    """
    index = QueryIndex(index_dir, metrics=metrics)
    return QueryHTTPServer((host, port), index, metrics=metrics)
