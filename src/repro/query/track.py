"""Origin-set tracking: feed records -> index events, plus file replay.

The index builder does not re-run detection — alarms come from the alarm
log the engine already wrote.  What it must derive from the feed is the
part the log cannot answer: *which origins were live when*.
:class:`OriginTracker` is that fold, deliberately tiny: a live origin set
per prefix, emitting one JSON-safe **index event** whenever a record
changes observable state:

* ``["o", time, prefix, [origins...]]`` — the live origin set after an
  announce added a new origin or a withdraw removed one (re-announcements
  and unknown withdrawals emit nothing, mirroring
  :class:`~repro.stream.engine.StreamEngine` exactly);
* ``["d", day, moas_active]`` — at each period tick, this tracker's count
  of prefixes with two or more live origins.  A sharded deployment runs
  one tracker per shard and the builder *sums* same-day events, which is
  why the event carries a contribution rather than a global truth.

Events are plain lists so they cross shard pipes and land in segment
files unchanged.  The replay helpers at the bottom re-derive events from
byte ranges of feed/alarm files — the resume catch-up path and the
brute-force scan both use them, so "rebuilt index == live-built index"
is replay determinism, pinned by tests.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple, Union

from repro.stream.feed import OP_ANNOUNCE, OP_TICK, OP_WITHDRAW, FeedError, FeedRecord, parse_feed_line

#: One JSON-safe index event (see the module docstring for the shapes).
IndexEvent = List[Any]

#: One parsed alarm-log line, keyed by prefix:
#: ``(prefix, [time, kind, [observed...], [conflicting...]|None, origin|None])``.
AlarmRow = Tuple[str, List[Any]]


class QueryError(ValueError):
    """Raised for missing, torn, or inconsistent query-index state."""


class OriginTracker:
    """Fold announce/withdraw/tick records into origin-set transitions."""

    __slots__ = ("live", "moas_active")

    def __init__(self) -> None:
        self.live: Dict[str, Set[int]] = {}
        self.moas_active = 0

    @classmethod
    def from_live(cls, live: Mapping[str, Iterable[int]]) -> "OriginTracker":
        """Rebuild a tracker from known live origin sets (restore path)."""
        tracker = cls()
        for prefix in sorted(live):
            origins = {int(asn) for asn in live[prefix]}
            if not origins:
                continue
            tracker.live[prefix] = origins
            if len(origins) >= 2:
                tracker.moas_active += 1
        return tracker

    def live_state(self) -> Dict[str, List[int]]:
        """JSON-safe live origin sets (sorted), for hand-off and tests."""
        return {prefix: sorted(self.live[prefix]) for prefix in sorted(self.live)}

    def apply(self, record: FeedRecord) -> Optional[IndexEvent]:
        """Apply one feed record; return the event it produced, if any."""
        if record.op == OP_ANNOUNCE:
            assert record.prefix is not None and record.origin is not None
            prefix = str(record.prefix)
            origin = int(record.origin)
            origins = self.live.get(prefix)
            if origins is None:
                origins = set()
                self.live[prefix] = origins
            if origin in origins:
                return None  # re-announcement: origin set unchanged
            was_multiple = len(origins) >= 2
            origins.add(origin)
            if not was_multiple and len(origins) >= 2:
                self.moas_active += 1
            return ["o", record.time, prefix, sorted(origins)]
        if record.op == OP_WITHDRAW:
            assert record.prefix is not None and record.origin is not None
            prefix = str(record.prefix)
            origin = int(record.origin)
            origins = self.live.get(prefix)
            if origins is None or origin not in origins:
                return None  # withdrawing an unknown route is a no-op
            was_multiple = len(origins) >= 2
            origins.discard(origin)
            if was_multiple and len(origins) < 2:
                self.moas_active -= 1
            if not origins:
                del self.live[prefix]
            return ["o", record.time, prefix, sorted(origins)]
        assert record.op == OP_TICK
        return ["d", int(record.time), self.moas_active]


# -- alarm-log parsing --------------------------------------------------------


def alarm_row_from_line(line: str) -> AlarmRow:
    """Parse one alarm-log line (see StreamAlarm.to_json_line) into a row."""
    try:
        data = json.loads(line)
        prefix = str(data["prefix"])
        row: List[Any] = [
            data["time"],
            str(data["kind"]),
            [int(asn) for asn in data["observed"]],
            None
            if data.get("conflicting") is None
            else [int(asn) for asn in data["conflicting"]],
            None if data.get("origin") is None else int(data["origin"]),
        ]
    except (json.JSONDecodeError, KeyError, TypeError, ValueError) as exc:
        raise QueryError(f"malformed alarm line {line!r}: {exc}") from exc
    return prefix, row


def alarm_rows_from_range(
    path: Union[str, Path], start: int, end: Optional[int]
) -> List[AlarmRow]:
    """Parse alarm-log bytes ``[start, end)`` (``None`` = to EOF).

    The range must begin and end on line boundaries — alarm byte
    coordinates always do, because the service accounts whole lines.
    """
    target = Path(path)
    rows: List[AlarmRow] = []
    with target.open("rb") as handle:
        handle.seek(start)
        position = start
        while end is None or position < end:
            line = handle.readline()
            if not line:
                if end is not None and position < end:
                    raise QueryError(
                        f"alarm log {target} ends at byte {position}, "
                        f"expected {end}"
                    )
                break
            position += len(line)
            if end is not None and position > end:
                raise QueryError(
                    f"alarm range [{start}, {end}) of {target} does not end "
                    f"on a line boundary"
                )
            if not line.endswith(b"\n"):
                break  # torn tail past the durable range: not ours to index
            rows.append(alarm_row_from_line(line.decode("utf-8")))
    return rows


# -- feed replay --------------------------------------------------------------


def replay_feed_range(
    path: Union[str, Path],
    start: int,
    end: Optional[int],
    tracker: OriginTracker,
    out: List[IndexEvent],
) -> int:
    """Replay single-feed bytes ``[start, end)`` through ``tracker``.

    Returns the number of records applied (headers excluded), matching the
    service's record accounting exactly.
    """
    target = Path(path)
    records = 0
    with target.open("rb") as handle:
        handle.seek(start)
        position = start
        while end is None or position < end:
            line = handle.readline()
            if not line or not line.endswith(b"\n"):
                if end is not None:
                    raise QueryError(
                        f"feed {target} ends at byte {position}, expected {end}"
                    )
                break
            position += len(line)
            if end is not None and position > end:
                raise QueryError(
                    f"feed range [{start}, {end}) of {target} does not end "
                    f"on a line boundary"
                )
            try:
                record = parse_feed_line(line.decode("utf-8"))
            except FeedError as exc:
                raise QueryError(f"{target} at byte {position}: {exc}") from exc
            if record is None:
                continue
            records += 1
            event = tracker.apply(record)
            if event is not None:
                out.append(event)
    return records


class _ReplayFeed:
    """Cursor over one vantage-point feed during interleaved replay."""

    __slots__ = ("path", "handle", "position", "end", "pending_tick", "done")

    def __init__(self, path: Path, start: int, end: Optional[int]) -> None:
        self.path = path
        self.handle = path.open("rb")
        self.handle.seek(start)
        self.position = start
        self.end = end
        self.pending_tick: Optional[float] = None
        self.done = False


def replay_router_range(
    paths: Sequence[Union[str, Path]],
    starts: Sequence[int],
    ends: Optional[Sequence[int]],
    tracker: OriginTracker,
    out: List[IndexEvent],
) -> int:
    """Replay N vantage feeds the way :class:`~repro.stream.router.FeedRouter`
    consumes them: each feed up to its next tick (in feed order), then one
    fleet-wide tick when the live feeds agree on the day.

    Per-prefix event order matches the sharded run because a prefix lives
    in exactly one shard and a shard applies its lines in parent read
    order — which is this order.  Returns records applied (routed lines
    plus one per fleet tick), matching the router's accounting.
    """
    if len(paths) != len(starts) or (ends is not None and len(ends) != len(paths)):
        raise QueryError(
            f"feed/offset count mismatch: {len(paths)} feeds, "
            f"{len(starts)} starts"
        )
    feeds = [
        _ReplayFeed(Path(path), int(start), None if ends is None else int(ends[i]))
        for i, (path, start) in enumerate(zip(paths, starts))
    ]
    records = 0
    try:
        while True:
            live = [feed for feed in feeds if not feed.done]
            if not live:
                break
            for feed in live:
                if feed.pending_tick is not None:
                    continue
                while True:
                    if feed.end is not None and feed.position >= feed.end:
                        if feed.position > feed.end:
                            raise QueryError(
                                f"feed {feed.path} overran target offset "
                                f"{feed.end} (at {feed.position})"
                            )
                        feed.done = True
                        break
                    line = feed.handle.readline()
                    if not line or not line.endswith(b"\n"):
                        if feed.end is not None:
                            raise QueryError(
                                f"feed {feed.path} ends at byte "
                                f"{feed.position}, expected {feed.end}"
                            )
                        feed.done = True
                        break
                    feed.position += len(line)
                    try:
                        record = parse_feed_line(line.decode("utf-8"))
                    except FeedError as exc:
                        raise QueryError(
                            f"{feed.path} at byte {feed.position}: {exc}"
                        ) from exc
                    if record is None:
                        continue
                    if record.is_tick:
                        feed.pending_tick = record.time
                        break
                    records += 1
                    event = tracker.apply(record)
                    if event is not None:
                        out.append(event)
            ticking = [
                feed
                for feed in feeds
                if not feed.done and feed.pending_tick is not None
            ]
            if not ticking:
                continue
            days = sorted({feed.pending_tick for feed in ticking})
            if len(days) != 1:
                raise QueryError(
                    f"vantage feeds disagree on the current day: {days}"
                )
            day = days[0]
            assert day is not None
            records += 1  # the fleet-wide tick, as the router counts it
            event = tracker.apply(FeedRecord(op=OP_TICK, time=day))
            if event is not None:
                out.append(event)
            for feed in ticking:
                feed.pending_tick = None
    finally:
        for feed in feeds:
            if not feed.handle.closed:
                feed.handle.close()
    return records
