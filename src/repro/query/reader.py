"""Segment-merging reader: the warm, serve-side view of the index.

:class:`QueryIndex` loads the manifest, digest-checks every referenced
segment, and folds them (oldest first) into one
:class:`~repro.query.model.StoreState` — after which every answer is a
pure in-memory function, which is where the >=10k point-queries/sec
budget comes from.  Because segments are write-once and the manifest only
ever *appends* to the segment list while ingest runs,
:meth:`reload_if_changed` can refresh concurrently with a live stream:
same generation → no-op; a manifest whose segment list extends the loaded
one → fold just the new segments; anything else (a fresh run rebuilt the
index) → full reload.  Readers never take locks against the writer — the
atomic manifest replace is the only synchronisation point.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from repro.obs.metrics import Counter, MetricsRegistry
from repro.query.model import (
    StoreState,
    answers_doc,
    daily_answer,
    prefix_report,
    stats_answer,
    top_answer,
)
from repro.query.segments import load_manifest, load_segment, manifest_etag
from repro.query.track import QueryError


class QueryIndex:
    """A read-only view over one index directory's manifest + segments."""

    def __init__(
        self,
        index_dir: Union[str, Path],
        *,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self.index_dir = Path(index_dir)
        self._m_segments: Optional[Counter] = None
        self._m_reloads: Optional[Counter] = None
        if metrics is not None:
            self._m_segments = metrics.counter("query.segments_loaded")
            self._m_reloads = metrics.counter("query.reloads")
        manifest = load_manifest(self.index_dir)
        if manifest is None:
            raise QueryError(
                f"no index manifest in {self.index_dir}; build one with "
                f"'repro query build' or stream with --index"
            )
        self._manifest = manifest
        self._state = StoreState()
        self._fold_entries(manifest["segments"])

    def _fold_entries(self, entries: List[Dict[str, Any]]) -> None:
        for entry in entries:
            doc = load_segment(
                self.index_dir / str(entry["name"]),
                expect_digest=str(entry["digest"]),
            )
            self._state.fold_segment(doc)
            if self._m_segments is not None:
                self._m_segments.inc()
        self._state.records = int(self._manifest["end"]["records"])

    @property
    def generation(self) -> int:
        return int(self._manifest["generation"])

    @property
    def etag(self) -> str:
        return manifest_etag(self._manifest)

    @property
    def records(self) -> int:
        return self._state.records

    @property
    def state(self) -> StoreState:
        return self._state

    def reload_if_changed(self) -> bool:
        """Refresh from disk; returns True when anything was reloaded.

        Incremental when the new manifest's segment list is a pure
        extension of the loaded one (the live-ingest steady state); a full
        rebuild otherwise.
        """
        manifest = load_manifest(self.index_dir)
        if manifest is None:
            raise QueryError(
                f"index manifest vanished from {self.index_dir} while serving"
            )
        if int(manifest["generation"]) == self.generation:
            return False
        old = self._manifest["segments"]
        new = manifest["segments"]
        extends = len(new) >= len(old) and all(
            new[i]["name"] == old[i]["name"]
            and new[i]["digest"] == old[i]["digest"]
            for i in range(len(old))
        )
        self._manifest = manifest
        if extends:
            self._fold_entries(list(new[len(old):]))
        else:
            self._state = StoreState()
            self._fold_entries(list(new))
        if self._m_reloads is not None:
            self._m_reloads.inc()
        return True

    # -- answers (pure delegation to the shared model) ------------------------

    def stats(self) -> Dict[str, Any]:
        return stats_answer(self._state)

    def prefix(self, prefix: str) -> Dict[str, Any]:
        return prefix_report(self._state, prefix)

    def top(self, k: int, by: str = "alarms") -> List[Dict[str, Any]]:
        return top_answer(self._state, k, by)

    def daily(self, kind: str = "alarms") -> List[List[int]]:
        return daily_answer(self._state, kind)

    def answers(self, k: int = 10) -> Dict[str, Any]:
        return answers_doc(self._state, k)
