"""Brute-force scan: the oracle every index answer is checked against.

:func:`scan_state` rebuilds a :class:`~repro.query.model.StoreState`
straight from the raw artefacts — the full feed file(s) and the full
alarm log — using the *same* replay fold the index builder uses
(:mod:`repro.query.track`) and the *same* answer functions
(:mod:`repro.query.model`).  Index and scan can therefore only disagree
if the index missed or duplicated events, which is exactly what the
bit-identity tests and the CI smoke diff exist to catch.  O(full history)
per call by design: correctness oracle, not a serving path.
"""

from __future__ import annotations

from pathlib import Path
from typing import List, Sequence, Union

from repro.query.model import StoreState
from repro.query.track import (
    IndexEvent,
    OriginTracker,
    alarm_rows_from_range,
    replay_feed_range,
    replay_router_range,
)


def scan_state(
    feeds: Sequence[Union[str, Path]],
    alarms: Union[str, Path],
) -> StoreState:
    """Fold the complete feed(s) + alarm log into a fresh store state.

    One feed path replays the single-engine order; several replay the
    router's day-barrier interleave.  The alarm log may be absent (a run
    that never alarmed) — that is an empty alarm history, not an error.
    """
    tracker = OriginTracker()
    events: List[IndexEvent] = []
    if len(feeds) == 1:
        records = replay_feed_range(Path(feeds[0]), 0, None, tracker, events)
    else:
        records = replay_router_range(
            feeds, [0] * len(feeds), None, tracker, events
        )
    alarms_path = Path(alarms)
    rows = (
        alarm_rows_from_range(alarms_path, 0, None)
        if alarms_path.exists()
        else []
    )
    state = StoreState()
    state.fold_events(events, rows)
    state.records = records
    return state
