"""The index builder: boundary-coupled segment construction.

:class:`IndexBuilder` rides the stream's checkpoint boundaries.  During a
batch it accumulates index events — from its own
:class:`~repro.query.track.OriginTracker` on the single-engine path
(:meth:`observe`), or shipped back from shard trackers at router barriers
(:meth:`ingest_events`).  At each boundary the service calls
:meth:`prepare_boundary` *synchronously* (cheap: drains buffers into a
canonical segment document and the next manifest) and executes the
returned :class:`IndexJob` on its writer path **after** the alarm fsync
and the chain write::

    alarm append+fsync  ->  chain record  ->  segment file  ->  manifest

That ordering is the whole durability argument: the manifest is the
index's commit point and always lands last, so the on-disk index can only
ever be *at or behind* the checkpoint chain, never ahead.  Resume is
therefore always :meth:`resume`'s catch-up — fold the manifested segments
back into tracker state, replay the feed/alarm byte gap up to the chain
tip, publish one catch-up segment — or, when the manifest is missing,
foreign, or ahead of the chain (a stale index from some other run), a
from-scratch rebuild.  A manifest that exists but cannot be parsed is
**refused** (:class:`~repro.query.track.QueryError`), never overwritten:
rebuild-or-refuse, no torn state.

:func:`build_index` is the offline path — same builder, cutting segments
every N trace days instead of every service boundary.  Answers are
segmentation-invariant, so all three producers serve identical queries.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Sequence, Union

from repro.obs.metrics import Counter, MetricsRegistry
from repro.query.model import StoreState
from repro.query.segments import (
    MANIFEST_NAME,
    assemble_segment,
    load_manifest,
    load_segment,
    manifest_doc,
    manifest_entry,
    reap_unreferenced,
    write_manifest,
    write_segment,
)
from repro.query.track import (
    AlarmRow,
    IndexEvent,
    OriginTracker,
    QueryError,
    alarm_row_from_line,
    alarm_rows_from_range,
    replay_feed_range,
    replay_router_range,
)
from repro.stream.checkpoint import FaultHook
from repro.stream.feed import FeedRecord

#: Index modes: one tailer feed vs the sharded router's N vantage feeds.
MODE_SINGLE = "single"
MODE_ROUTER = "router"


def zero_coordinates(mode: str, feed_count: int = 1) -> Dict[str, Any]:
    """The boundary coordinates of an empty history."""
    if mode == MODE_ROUTER:
        return {
            "records": 0,
            "alarm_bytes": 0,
            "feed_offsets": [0] * feed_count,
        }
    return {"records": 0, "alarm_bytes": 0, "feed_bytes": 0}


@dataclass
class IndexJob:
    """One boundary's durable index work, prepared on the ingest path."""

    segment: Optional[Dict[str, Any]]
    manifest: Dict[str, Any]


class IndexBuilder:
    """Accumulate index events; cut a segment + manifest at each boundary."""

    def __init__(
        self,
        index_dir: Union[str, Path],
        *,
        metrics: Optional[MetricsRegistry] = None,
        fault: Optional[FaultHook] = None,
    ) -> None:
        self.index_dir = Path(index_dir)
        self._fault = fault
        self._tracker = OriginTracker()
        self._events: List[IndexEvent] = []
        self._alarm_rows: List[AlarmRow] = []
        self._entries: List[Dict[str, Any]] = []
        self._generation = 0
        self._mode = MODE_SINGLE
        self._last_end: Dict[str, Any] = zero_coordinates(MODE_SINGLE)
        self.segments_written = 0
        self.manifests_written = 0
        self.catchup_records = 0
        self._m_segments: Optional[Counter] = None
        self._m_manifests: Optional[Counter] = None
        self._m_events: Optional[Counter] = None
        self._m_alarm_rows: Optional[Counter] = None
        self._m_catchup: Optional[Counter] = None
        if metrics is not None:
            self._m_segments = metrics.counter("query.segments")
            self._m_manifests = metrics.counter("query.manifest_writes")
            self._m_events = metrics.counter("query.events")
            self._m_alarm_rows = metrics.counter("query.alarm_rows")
            self._m_catchup = metrics.counter("query.catchup_records")

    # -- lifecycle -----------------------------------------------------------

    def start_fresh(self, mode: str = MODE_SINGLE, feed_count: int = 1) -> None:
        """Begin an empty index, wiping any previous one in the directory.

        Mirrors the service's fresh-run alarm-log truncation: a fresh run
        invalidates every byte coordinate an old index could refer to.
        """
        self.index_dir.mkdir(parents=True, exist_ok=True)
        manifest_path = self.index_dir / MANIFEST_NAME
        if manifest_path.exists():
            manifest_path.unlink()
        reap_unreferenced(self.index_dir, None)
        self._mode = mode
        self._tracker = OriginTracker()
        self._events = []
        self._alarm_rows = []
        self._entries = []
        self._generation = 0
        self._last_end = zero_coordinates(mode, feed_count)

    def resume(
        self,
        *,
        feeds: Sequence[Union[str, Path]],
        alarms: Union[str, Path],
        end: Dict[str, Any],
    ) -> None:
        """Bring the on-disk index up to the chain tip's coordinates.

        ``end`` comes from
        :meth:`repro.stream.checkpoint.Checkpoint.index_coordinates`.  The
        manifest (the index commit point) can only be at or behind it; a
        manifest *ahead* of the chain is a stale index from a longer prior
        run and triggers a from-scratch rebuild, as does a mode or
        feed-count mismatch.  The replayed gap is published immediately as
        one catch-up segment, so the run loop starts from a clean buffer.
        """
        mode = MODE_ROUTER if "feed_offsets" in end else MODE_SINGLE
        self.index_dir.mkdir(parents=True, exist_ok=True)
        manifest = load_manifest(self.index_dir)  # refuses torn manifests
        reap_unreferenced(self.index_dir, manifest)
        if manifest is not None and not self._compatible(manifest, mode, end):
            manifest = None  # stale or foreign: rebuild from scratch
        if manifest is None:
            self.start_fresh(mode, feed_count=len(feeds))
            start = dict(self._last_end)
        else:
            self._mode = mode
            self._entries = [dict(entry) for entry in manifest["segments"]]
            self._generation = int(manifest["generation"])
            self._last_end = dict(manifest["end"])
            self._restore_tracker()
            start = dict(self._last_end)
        self.catchup_records += self._replay_gap(feeds, alarms, start, end)
        if self._m_catchup is not None and self.catchup_records:
            self._m_catchup.inc(self.catchup_records)
        job = self.prepare_boundary(end, [])
        if job is not None:
            self.commit(job)

    def _compatible(
        self, manifest: Dict[str, Any], mode: str, end: Dict[str, Any]
    ) -> bool:
        if manifest["mode"] != mode:
            return False
        manifest_end = manifest["end"]
        if int(manifest_end["records"]) > int(end["records"]):
            return False
        if int(manifest_end["alarm_bytes"]) > int(end["alarm_bytes"]):
            return False
        if mode == MODE_ROUTER:
            offsets = manifest_end.get("feed_offsets")
            targets = end["feed_offsets"]
            if not isinstance(offsets, list) or len(offsets) != len(targets):
                return False
            if any(int(o) > int(t) for o, t in zip(offsets, targets)):
                return False
        else:
            if int(manifest_end.get("feed_bytes", 0)) > int(end["feed_bytes"]):
                return False
        return True

    def _restore_tracker(self) -> None:
        """Rebuild live origin sets by folding the manifested segments."""
        state = StoreState()
        for entry in self._entries:
            doc = load_segment(
                self.index_dir / str(entry["name"]),
                expect_digest=str(entry["digest"]),
            )
            state.fold_segment(doc)
        live = {
            prefix: [int(asn) for asn in history.transitions[-1][1]]
            for prefix, history in state.prefixes.items()
            if history.transitions and history.transitions[-1][1]
        }
        self._tracker = OriginTracker.from_live(live)

    def _replay_gap(
        self,
        feeds: Sequence[Union[str, Path]],
        alarms: Union[str, Path],
        start: Dict[str, Any],
        end: Dict[str, Any],
    ) -> int:
        expected = int(end["records"]) - int(start["records"])
        if expected == 0:
            return 0
        if self._mode == MODE_ROUTER:
            records = replay_router_range(
                feeds,
                [int(offset) for offset in start["feed_offsets"]],
                [int(offset) for offset in end["feed_offsets"]],
                self._tracker,
                self._events,
            )
        else:
            records = replay_feed_range(
                Path(feeds[0]),
                int(start["feed_bytes"]),
                int(end["feed_bytes"]),
                self._tracker,
                self._events,
            )
        if records != expected:
            raise QueryError(
                f"index catch-up replayed {records} records but coordinates "
                f"claim {expected}; the index does not belong to this feed"
            )
        self._alarm_rows.extend(
            alarm_rows_from_range(
                alarms, int(start["alarm_bytes"]), int(end["alarm_bytes"])
            )
        )
        return records

    # -- ingest --------------------------------------------------------------

    def observe(self, record: FeedRecord) -> None:
        """Single-engine hot path: fold one already-parsed feed record."""
        event = self._tracker.apply(record)
        if event is not None:
            self._events.append(event)

    def ingest_events(self, events: Iterable[IndexEvent]) -> None:
        """Router path: adopt events a shard tracker computed."""
        self._events.extend(events)

    # -- boundaries ----------------------------------------------------------

    def prepare_boundary(
        self, end: Dict[str, Any], alarm_lines: Sequence[str]
    ) -> Optional[IndexJob]:
        """Drain buffers into one boundary's segment + manifest documents.

        Synchronous state capture, no I/O — safe on the ingest path; the
        returned job's :meth:`commit` does the durable writes.  Returns
        ``None`` when nothing changed since the previous boundary.
        """
        for line in alarm_lines:
            self._alarm_rows.append(alarm_row_from_line(line))
        events, self._events = self._events, []
        rows, self._alarm_rows = self._alarm_rows, []
        if self._m_events is not None and events:
            self._m_events.inc(len(events))
        if self._m_alarm_rows is not None and rows:
            self._m_alarm_rows.inc(len(rows))
        seq = self._entries[-1]["seq"] + 1 if self._entries else 1
        doc = assemble_segment(seq, self._last_end, dict(end), events, rows)
        if doc is None and dict(self._last_end) == dict(end):
            return None
        if doc is not None:
            self._entries.append(manifest_entry(doc))
        self._generation += 1
        self._last_end = dict(end)
        manifest = manifest_doc(
            self._generation, self._mode, self._last_end, list(self._entries)
        )
        return IndexJob(segment=doc, manifest=manifest)

    def commit(self, job: IndexJob) -> None:
        """Durably publish one prepared boundary (segment first, then the
        manifest — the commit point)."""
        if job.segment is not None:
            write_segment(self.index_dir, job.segment, self._fault)
            self.segments_written += 1
            if self._m_segments is not None:
                self._m_segments.inc()
        write_manifest(self.index_dir, job.manifest, self._fault)
        self.manifests_written += 1
        if self._m_manifests is not None:
            self._m_manifests.inc()


# -- offline builds -----------------------------------------------------------


def build_index(
    feeds: Sequence[Union[str, Path]],
    alarms: Union[str, Path],
    index_dir: Union[str, Path],
    *,
    segment_days: int = 30,
    metrics: Optional[MetricsRegistry] = None,
) -> Dict[str, Any]:
    """Build a complete index from a finished feed + alarm log.

    Cuts a segment every ``segment_days`` trace days (day-aligned
    boundaries: at a tick for day D every record and alarm with time <= D
    is final, so the alarm byte cursor advances in lockstep with no
    guessing).  Returns a JSON-safe build summary.
    """
    if segment_days < 1:
        raise ValueError(f"segment_days must be >= 1, got {segment_days}")
    feed_paths = [Path(feed) for feed in feeds]
    alarms_path = Path(alarms)
    mode = MODE_ROUTER if len(feed_paths) > 1 else MODE_SINGLE
    builder = IndexBuilder(index_dir, metrics=metrics)
    builder.start_fresh(mode, feed_count=len(feed_paths))

    alarm_cursor = _AlarmCursor(alarms_path)
    records = 0
    days_seen = 0

    def cut(end: Dict[str, Any]) -> None:
        job = builder.prepare_boundary(end, [])
        if job is not None:
            builder.commit(job)

    if mode == MODE_SINGLE:
        walker = _FeedWalker(feed_paths[0], builder)
        while True:
            day = walker.advance_one_day()
            if day is None:
                break
            records = walker.records
            days_seen += 1
            if days_seen % segment_days == 0:
                builder._alarm_rows.extend(alarm_cursor.take_through(day))
                cut(
                    {
                        "records": walker.records,
                        "alarm_bytes": alarm_cursor.position,
                        "feed_bytes": walker.position,
                    }
                )
        builder._alarm_rows.extend(alarm_cursor.take_through(None))
        cut(
            {
                "records": walker.records,
                "alarm_bytes": alarm_cursor.position,
                "feed_bytes": walker.position,
            }
        )
        records = walker.records
        walker.close()
    else:
        fleet = _FleetWalker(feed_paths, builder)
        while True:
            day = fleet.advance_one_day()
            if day is None:
                break
            records = fleet.records
            days_seen += 1
            if days_seen % segment_days == 0:
                builder._alarm_rows.extend(alarm_cursor.take_through(day))
                cut(
                    {
                        "records": fleet.records,
                        "alarm_bytes": alarm_cursor.position,
                        "feed_offsets": fleet.offsets(),
                    }
                )
        builder._alarm_rows.extend(alarm_cursor.take_through(None))
        cut(
            {
                "records": fleet.records,
                "alarm_bytes": alarm_cursor.position,
                "feed_offsets": fleet.offsets(),
            }
        )
        records = fleet.records
        fleet.close()
    alarm_cursor.close()
    return {
        "records": records,
        "days": days_seen,
        "segments": builder.segments_written,
        "mode": mode,
    }


class _AlarmCursor:
    """Lockstep reader over the alarm log, consuming lines by day.

    Alarm-log times are nondecreasing (the engine emits in feed order and
    feed time never rewinds), so "every alarm with time <= D" is a prefix
    of the file — which keeps the byte coordinate exact.
    """

    def __init__(self, path: Path) -> None:
        self._handle = path.open("rb") if path.exists() else None
        self.position = 0
        self._held: Optional[AlarmRow] = None
        self._held_bytes = 0

    def take_through(self, day: Optional[float]) -> List[AlarmRow]:
        """Rows with time <= ``day`` (``None`` = everything remaining)."""
        rows: List[AlarmRow] = []
        if self._handle is None:
            return rows
        while True:
            if self._held is None:
                line = self._handle.readline()
                if not line or not line.endswith(b"\n"):
                    break
                self._held = alarm_row_from_line(line.decode("utf-8"))
                self._held_bytes = len(line)
            if day is not None and float(self._held[1][0]) > day:
                break
            rows.append(self._held)
            self.position += self._held_bytes
            self._held = None
        return rows

    def close(self) -> None:
        if self._handle is not None and not self._handle.closed:
            self._handle.close()


class _FeedWalker:
    """Single-feed cursor: apply records through the builder, day by day."""

    def __init__(self, path: Path, builder: IndexBuilder) -> None:
        self._path = path
        self._handle = path.open("rb")
        self._builder = builder
        self.position = 0
        self.records = 0

    def advance_one_day(self) -> Optional[float]:
        """Consume through the next tick; returns its day (None at EOF)."""
        from repro.stream.feed import parse_feed_line

        while True:
            line = self._handle.readline()
            if not line or not line.endswith(b"\n"):
                return None
            self.position += len(line)
            record = parse_feed_line(line.decode("utf-8"))
            if record is None:
                continue
            self.records += 1
            self._builder.observe(record)
            if record.is_tick:
                return record.time

    def close(self) -> None:
        if not self._handle.closed:
            self._handle.close()


class _FleetWalker:
    """Multi-feed cursor mirroring the router's day-barrier interleave."""

    def __init__(self, paths: Sequence[Path], builder: IndexBuilder) -> None:
        from repro.query.track import _ReplayFeed

        self._feeds = [_ReplayFeed(path, 0, None) for path in paths]
        self._builder = builder
        self.records = 0

    def offsets(self) -> List[int]:
        return [feed.position for feed in self._feeds]

    def advance_one_day(self) -> Optional[float]:
        from repro.stream.feed import OP_TICK, parse_feed_line

        while True:
            live = [feed for feed in self._feeds if not feed.done]
            if not live:
                return None
            for feed in live:
                if feed.pending_tick is not None:
                    continue
                while True:
                    line = feed.handle.readline()
                    if not line or not line.endswith(b"\n"):
                        feed.done = True
                        break
                    feed.position += len(line)
                    record = parse_feed_line(line.decode("utf-8"))
                    if record is None:
                        continue
                    if record.is_tick:
                        feed.pending_tick = record.time
                        break
                    self.records += 1
                    self._builder.observe(record)
            ticking = [
                feed
                for feed in self._feeds
                if not feed.done and feed.pending_tick is not None
            ]
            if not ticking:
                continue
            days = sorted({feed.pending_tick for feed in ticking})
            if len(days) != 1:
                raise QueryError(
                    f"vantage feeds disagree on the current day: {days}"
                )
            day = days[0]
            assert day is not None
            self.records += 1
            self._builder.observe(FeedRecord(op=OP_TICK, time=day))
            for feed in ticking:
                feed.pending_tick = None
            return day

    def close(self) -> None:
        for feed in self._feeds:
            if not feed.handle.closed:
                feed.handle.close()
