"""The query data model: per-prefix histories and canonical answers.

Everything the query subsystem serves — per-prefix timelines, origin sets,
MOAS duration statistics, top-K rankings, daily series — is a pure function
of one in-memory structure, :class:`StoreState`: a map from prefix to its
ordered event history plus two global day-counter series.  Both the
segment-backed reader (:mod:`repro.query.reader`) and the brute-force scan
(:mod:`repro.query.scan`) *fold into the same structure and call the same
answer functions below*, so "every query answer is bit-identical to a full
scan" is a property of the fold, not of two parallel answer
implementations that could drift.

Event rows are JSON-safe lists (they live inside segment files):

* **transition** — ``[time, [origins...]]``: the prefix's live origin set
  *after* an announce/withdraw changed it (empty = the prefix went dark);
* **alarm** — ``[time, kind, [observed...], [conflicting...] | None,
  origin | None]``: one parsed alarm-log line.

Within a prefix both lists are in event order; the canonical timeline
merge is a stable sort on ``(time, kind-rank)`` with alarms ranked before
transitions — the engine raises an announcement's alarms before
installing the route, so this reproduces the true causal order.

A MOAS interval opens when a transition takes the live origin set to two
or more origins and closes when a later transition drops it below two;
durations are in days (feed time units).  The Live-Long-and-Prosper split
counts completed intervals of at least :data:`LONG_LIVED_DAYS` days as
long-lived.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

#: Completed MOAS intervals at least this many days long count as
#: "long-lived" (the Live Long and Prosper split; see PAPERS.md).
LONG_LIVED_DAYS = 30.0

#: Ranking keys accepted by :func:`top_answer`.
TOP_KEYS = ("alarms", "transitions", "moas_days")


def canonical_json(doc: Any) -> str:
    """The one serialisation every artefact and answer uses (sorted keys,
    compact separators) — identical values are identical bytes."""
    return json.dumps(doc, sort_keys=True, separators=(",", ":"))


@dataclass
class PrefixHistory:
    """One prefix's ordered alarm and origin-set-transition rows."""

    alarms: List[List[Any]] = field(default_factory=list)
    transitions: List[List[Any]] = field(default_factory=list)


@dataclass
class StoreState:
    """The folded history store: per-prefix events plus day series."""

    prefixes: Dict[str, PrefixHistory] = field(default_factory=dict)
    alarm_days: Dict[int, int] = field(default_factory=dict)
    moas_days: Dict[int, int] = field(default_factory=dict)
    records: int = 0

    def history(self, prefix: str) -> PrefixHistory:
        entry = self.prefixes.get(prefix)
        if entry is None:
            entry = PrefixHistory()
            self.prefixes[prefix] = entry
        return entry

    def fold_events(
        self,
        events: Sequence[List[Any]],
        alarm_rows: Sequence[Tuple[str, List[Any]]],
    ) -> None:
        """Fold raw builder buffers (see :mod:`repro.query.track`)."""
        for event in events:
            if event[0] == "o":
                self.history(event[2]).transitions.append([event[1], event[3]])
            else:  # "d": one tick's MOAS-active contribution
                day = int(event[1])
                self.moas_days[day] = self.moas_days.get(day, 0) + int(event[2])
        for prefix, row in alarm_rows:
            self.history(prefix).alarms.append(row)
            day = int(row[0])
            self.alarm_days[day] = self.alarm_days.get(day, 0) + 1

    def fold_segment(self, doc: Dict[str, Any]) -> None:
        """Fold one immutable segment document (oldest first)."""
        for day, count in doc["alarm_days"]:
            day = int(day)
            self.alarm_days[day] = self.alarm_days.get(day, 0) + int(count)
        for day, count in doc["moas_days"]:
            day = int(day)
            self.moas_days[day] = self.moas_days.get(day, 0) + int(count)
        for prefix, history in doc["prefixes"]:
            entry = self.history(prefix)
            entry.alarms.extend(history["alarms"])
            entry.transitions.extend(history["origins"])
        self.records = int(doc["end"]["records"])


# -- derived per-prefix facts -------------------------------------------------


def live_origins(history: PrefixHistory) -> List[int]:
    """The origin set after the last transition (empty = dark)."""
    if not history.transitions:
        return []
    return [int(asn) for asn in history.transitions[-1][1]]


def ever_origins(history: PrefixHistory) -> List[int]:
    """Every origin that was ever live for the prefix, sorted."""
    seen: Set[int] = set()
    for _, origins in history.transitions:
        seen.update(int(asn) for asn in origins)
    return sorted(seen)


def moas_intervals(
    history: PrefixHistory,
) -> Tuple[List[List[float]], Optional[float]]:
    """Completed ``[start, end]`` MOAS intervals plus the open start."""
    completed: List[List[float]] = []
    open_since: Optional[float] = None
    for time, origins in history.transitions:
        multiple = len(origins) >= 2
        if open_since is None and multiple:
            open_since = float(time)
        elif open_since is not None and not multiple:
            completed.append([open_since, float(time)])
            open_since = None
    return completed, open_since


def duration_stats(
    durations: Sequence[float], long_threshold: float = LONG_LIVED_DAYS
) -> Dict[str, Any]:
    """Deterministic summary stats over completed MOAS durations (days).

    ``median`` averages the middle pair for even counts; ``p95`` is the
    nearest-rank percentile; the sum behind ``mean`` runs over the sorted
    values so it is independent of input order.
    """
    values = sorted(float(d) for d in durations)
    n = len(values)
    if n == 0:
        return {
            "count": 0,
            "min": None,
            "max": None,
            "mean": None,
            "median": None,
            "p95": None,
            "long_lived": 0,
            "short_lived": 0,
        }
    if n % 2:
        median = values[n // 2]
    else:
        median = (values[n // 2 - 1] + values[n // 2]) / 2.0
    p95 = values[max(0, math.ceil(0.95 * n) - 1)]
    long_lived = sum(1 for value in values if value >= long_threshold)
    return {
        "count": n,
        "min": values[0],
        "max": values[-1],
        "mean": sum(values) / n,
        "median": median,
        "p95": p95,
        "long_lived": long_lived,
        "short_lived": n - long_lived,
    }


def _alarm_kind_counts(history: PrefixHistory) -> Dict[str, int]:
    counts: Dict[str, int] = {}
    for row in history.alarms:
        kind = str(row[1])
        counts[kind] = counts.get(kind, 0) + 1
    return dict(sorted(counts.items()))


# -- answers ------------------------------------------------------------------


def prefix_report(state: StoreState, prefix: str) -> Dict[str, Any]:
    """The looking-glass answer for one prefix (timeline + derived sets)."""
    history = state.prefixes.get(prefix)
    if history is None:
        history = PrefixHistory()
    completed, open_since = moas_intervals(history)
    tagged: List[Tuple[float, int, Dict[str, Any]]] = []
    for row in history.alarms:
        tagged.append(
            (
                float(row[0]),
                0,
                {
                    "type": "alarm",
                    "time": row[0],
                    "kind": row[1],
                    "observed": row[2],
                    "conflicting": row[3],
                    "origin": row[4],
                },
            )
        )
    for time, origins in history.transitions:
        tagged.append(
            (float(time), 1, {"type": "origins", "time": time, "origins": origins})
        )
    tagged.sort(key=lambda item: (item[0], item[1]))  # stable: ties keep order
    return {
        "prefix": prefix,
        "found": prefix in state.prefixes,
        "live_origins": live_origins(history),
        "ever_origins": ever_origins(history),
        "alarms": {
            "total": len(history.alarms),
            "by_kind": _alarm_kind_counts(history),
        },
        "timeline": [entry for _, _, entry in tagged],
        "moas": {
            "completed": completed,
            "open_since": open_since,
            "durations": duration_stats(
                [end - start for start, end in completed]
            ),
        },
    }


def stats_answer(state: StoreState) -> Dict[str, Any]:
    """Global aggregates over the whole store."""
    alarm_total = 0
    by_kind: Dict[str, int] = {}
    live_pairs = 0
    ever_pairs = 0
    moas_open = 0
    moas_ever = 0
    completed_total = 0
    durations: List[float] = []
    for prefix in sorted(state.prefixes):
        history = state.prefixes[prefix]
        alarm_total += len(history.alarms)
        for kind, count in _alarm_kind_counts(history).items():
            by_kind[kind] = by_kind.get(kind, 0) + count
        live_pairs += len(live_origins(history))
        ever_pairs += len(ever_origins(history))
        completed, open_since = moas_intervals(history)
        if open_since is not None:
            moas_open += 1
        if completed or open_since is not None:
            moas_ever += 1
        completed_total += len(completed)
        durations.extend(end - start for start, end in completed)
    days = sorted(set(state.alarm_days) | set(state.moas_days))
    return {
        "records": state.records,
        "prefixes": len(state.prefixes),
        "alarms": {"total": alarm_total, "by_kind": dict(sorted(by_kind.items()))},
        "origins": {"live_pairs": live_pairs, "ever_pairs": ever_pairs},
        "moas": {
            "active": moas_open,
            "ever": moas_ever,
            "completed": completed_total,
            "durations": duration_stats(durations),
        },
        "days": {
            "first": days[0] if days else None,
            "last": days[-1] if days else None,
            "ticked": len(state.moas_days),
        },
    }


def top_answer(state: StoreState, k: int, by: str = "alarms") -> List[Dict[str, Any]]:
    """The K noisiest prefixes under one ranking key (ties broken by
    prefix string, ascending — fully deterministic)."""
    if by not in TOP_KEYS:
        raise ValueError(f"unknown ranking key {by!r}; expected one of {TOP_KEYS}")
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    rows: List[Dict[str, Any]] = []
    for prefix in sorted(state.prefixes):
        history = state.prefixes[prefix]
        completed, _ = moas_intervals(history)
        row: Dict[str, Any] = {
            "prefix": prefix,
            "alarms": len(history.alarms),
            "transitions": len(history.transitions),
            "moas_days": sum(end - start for start, end in sorted(completed)),
        }
        if row[by]:
            rows.append(row)
    rows.sort(key=lambda row: (-float(row[by]), row["prefix"]))
    return rows[:k]


def daily_answer(state: StoreState, kind: str = "alarms") -> List[List[int]]:
    """``[[day, count], ...]`` sorted by day, for alarms or MOAS."""
    if kind == "alarms":
        series = state.alarm_days
    elif kind == "moas":
        series = state.moas_days
    else:
        raise ValueError(f"unknown daily series {kind!r}; expected alarms|moas")
    return [[day, series[day]] for day in sorted(series)]


def answers_doc(state: StoreState, k: int = 10) -> Dict[str, Any]:
    """Every answer at once — the document CI diffs against a full scan."""
    return {
        "stats": stats_answer(state),
        "daily": {
            "alarms": daily_answer(state, "alarms"),
            "moas": daily_answer(state, "moas"),
        },
        "top": {key: top_answer(state, k, key) for key in TOP_KEYS},
        "prefixes": {
            prefix: prefix_report(state, prefix)
            for prefix in sorted(state.prefixes)
        },
    }
