"""``repro.query`` — the looking-glass query service over stream history.

The streaming engine (PR 6-8) writes two durable artefacts: the
append-only alarm log and the checkpoint chain.  This package turns them
into a *servable history store*:

* :mod:`repro.query.track` — origin-set tracking and byte-range replay:
  feed records → JSON-safe index events, shared by live ingest, resume
  catch-up, and the brute-force scan;
* :mod:`repro.query.segments` — immutable write-once segment files plus
  the atomically-replaced manifest (the index's commit point);
* :mod:`repro.query.builder` — :class:`~repro.query.builder.IndexBuilder`
  rides the stream's checkpoint boundaries, cutting one segment per
  boundary *after* the alarm fsync and chain write so the index is never
  ahead of the chain; :func:`~repro.query.builder.build_index` is the
  offline equivalent over finished artefacts;
* :mod:`repro.query.model` — :class:`~repro.query.model.StoreState` and
  the answer functions (prefix timelines, origin sets, MOAS duration
  stats, top-K, daily series); reader and scan fold into this one
  structure, which is why index answers are bit-identical to a scan;
* :mod:`repro.query.reader` — :class:`~repro.query.reader.QueryIndex`,
  the segment-merging warm reader with incremental reload;
* :mod:`repro.query.scan` — the full-artefact oracle;
* :mod:`repro.query.server` — the zero-dependency JSON HTTP API with
  ETag/generation caching.

CLI surface: ``repro query build|scan|dump|stats|prefix|top|serve``; the
stream side is ``repro stream run --index DIR``.
"""

from repro.query.builder import IndexBuilder, build_index
from repro.query.model import StoreState, answers_doc, canonical_json
from repro.query.reader import QueryIndex
from repro.query.scan import scan_state
from repro.query.track import OriginTracker, QueryError

__all__ = [
    "IndexBuilder",
    "OriginTracker",
    "QueryError",
    "QueryIndex",
    "StoreState",
    "answers_doc",
    "build_index",
    "canonical_json",
    "scan_state",
]
