"""The long-running detection service.

:class:`StreamService` tails a feed file (or FIFO) in batched reads, pushes
every record through a :class:`~repro.stream.engine.StreamEngine`, and
persists two artefacts:

* the **alarm log** — one canonical JSON line per first-seen alarm;
* the **checkpoint** — the engine state plus feed/log coordinates.

The two are coupled transactionally: pending alarm lines are flushed to the
log *only* at checkpoint boundaries (and once more at a graceful stop), and
the checkpoint written immediately after records how many lines are durable.
A service killed at an arbitrary point therefore leaves an alarm log that is
a prefix of the uninterrupted run's log, and a resume — which restores the
engine, truncates the log back to the recorded line count, and seeks the
feed to the recorded byte offset — continues producing exactly the remaining
lines.  Concatenating the two runs' logs reproduces the uninterrupted log
byte for byte; ``tests/test_stream_service.py`` and the ``stream-smoke`` CI
job hold that property.

Wall time never steers detection: the loop takes an injectable ``clock``
(throughput/latency measurement only — quarantined like every other timing
field) and an injectable ``sleeper`` (follow-mode polling and throttling),
so tests drive the service with fakes and the repro-lint R006 rule keeps
``time.sleep`` out of everything except the one default-sleeper call site
below.
"""

from __future__ import annotations

import os
import signal
import time
from dataclasses import dataclass
from pathlib import Path
from types import FrameType
from typing import IO, Any, Callable, Dict, List, Optional, Union

from repro.obs.manifest import ManifestRecord
from repro.obs.metrics import Counter, MetricsRegistry
from repro.stream.checkpoint import Checkpoint, load_checkpoint, save_checkpoint
from repro.stream.engine import StreamEngine
from repro.stream.feed import FeedError, FeedRecord, parse_feed_line


def _real_sleep(seconds: float) -> None:
    """Default sleeper (follow-mode polling / throttling); tests inject fakes."""
    time.sleep(seconds)  # repro-lint: disable=R006


def _real_clock() -> float:
    """Default wall clock; measurement only, never an input to detection."""
    return time.perf_counter()  # repro-lint: disable=R002


class FeedTailer:
    """Batched reader over a feed file, tracking exact byte offsets.

    Reads in binary so ``byte_offset`` is always the start of the next
    unconsumed line.  A partial line at EOF (a writer caught mid-record) is
    left unconsumed — the next poll re-reads it once the newline lands.
    """

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self._handle: IO[bytes] = self.path.open("rb")
        self.byte_offset = 0

    def seek(self, byte_offset: int) -> None:
        self._handle.seek(byte_offset)
        self.byte_offset = byte_offset

    def read_batch(self, limit: int) -> List[FeedRecord]:
        """Up to ``limit`` records; empty means EOF (poll again or finish)."""
        records: List[FeedRecord] = []
        while len(records) < limit:
            position = self._handle.tell()
            line = self._handle.readline()
            if not line:
                break
            if not line.endswith(b"\n"):
                self._handle.seek(position)
                break
            self.byte_offset = self._handle.tell()
            try:
                record = parse_feed_line(line.decode("utf-8"))
            except FeedError as exc:
                raise FeedError(f"{self.path} at byte {position}: {exc}") from exc
            if record is not None:
                records.append(record)
        return records

    def close(self) -> None:
        if not self._handle.closed:
            self._handle.close()


@dataclass
class StreamSummary:
    """One service run's outcome (the manifest ``outcome`` payload)."""

    records: int
    offset: int
    alarms_emitted: int
    alarm_duplicates: int
    alarm_lines: int
    checkpoints: int
    moas_active: int
    state_prefixes: int
    days_ticked: int
    stopped: bool
    eof: bool
    wall_seconds: float
    events_per_sec: float
    checkpoint_seconds: float

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe dict; timing lives under quarantined TIMING_KEYS names."""
        return {
            "records": self.records,
            "offset": self.offset,
            "alarms_emitted": self.alarms_emitted,
            "alarm_duplicates": self.alarm_duplicates,
            "alarm_lines": self.alarm_lines,
            "checkpoints": self.checkpoints,
            "moas_active": self.moas_active,
            "state_prefixes": self.state_prefixes,
            "days_ticked": self.days_ticked,
            "stopped": self.stopped,
            "eof": self.eof,
            "events_per_sec": self.events_per_sec,
            "checkpoint_seconds": self.checkpoint_seconds,
        }


class StreamService:
    """Tail a feed, detect online, checkpoint, survive being killed."""

    def __init__(
        self,
        feed: Union[str, Path],
        alarms: Union[str, Path],
        checkpoint: Optional[Union[str, Path]] = None,
        *,
        window: float = 30.0,
        batch_size: int = 256,
        checkpoint_every: int = 1000,
        follow: bool = False,
        poll_interval: float = 0.2,
        throttle: float = 0.0,
        max_records: Optional[int] = None,
        metrics: Optional[MetricsRegistry] = None,
        clock: Optional[Callable[[], float]] = None,
        sleeper: Optional[Callable[[float], None]] = None,
    ) -> None:
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        if checkpoint_every < 1:
            raise ValueError(
                f"checkpoint_every must be >= 1, got {checkpoint_every}"
            )
        self.feed_path = Path(feed)
        self.alarms_path = Path(alarms)
        self.checkpoint_path = None if checkpoint is None else Path(checkpoint)
        self.engine = StreamEngine(window=window, metrics=metrics)
        self.batch_size = batch_size
        self.checkpoint_every = checkpoint_every
        self.follow = follow
        self.poll_interval = poll_interval
        self.throttle = throttle
        self.max_records = max_records
        self.checkpoints_written = 0
        self._alarm_lines = 0
        self._pending: List[str] = []
        self._stop_requested = False
        self._clock = clock if clock is not None else _real_clock
        self._sleeper = sleeper if sleeper is not None else _real_sleep
        self._checkpoint_seconds = 0.0
        self._m_checkpoints: Optional[Counter] = None
        if metrics is not None:
            self._m_checkpoints = metrics.counter("stream.checkpoints")

    # -- control ---------------------------------------------------------------

    def request_stop(self) -> None:
        """Finish the in-flight batch, flush + checkpoint, then return."""
        self._stop_requested = True

    def install_signal_handlers(self) -> None:
        """SIGTERM/SIGINT -> graceful stop (main thread only)."""
        signal.signal(signal.SIGTERM, self._on_signal)
        signal.signal(signal.SIGINT, self._on_signal)

    def _on_signal(self, signum: int, frame: Optional[FrameType]) -> None:
        self.request_stop()

    # -- the run loop -----------------------------------------------------------

    def run(self, resume: bool = False) -> StreamSummary:
        started = self._clock()
        tailer = FeedTailer(self.feed_path)
        try:
            if resume:
                self._resume(tailer)
            else:
                # Fresh run: start the alarm log empty so reruns never append
                # to a stale log.
                self.alarms_path.write_text("", encoding="utf-8")
                self._alarm_lines = 0
            applied = 0
            since_checkpoint = 0
            reached_eof = False
            while not self._stop_requested:
                if self.max_records is not None and applied >= self.max_records:
                    break
                limit = self.batch_size
                if self.max_records is not None:
                    limit = min(limit, self.max_records - applied)
                batch = tailer.read_batch(limit)
                if not batch:
                    if not self.follow:
                        reached_eof = True
                        break
                    self._sleeper(self.poll_interval)
                    continue
                for record in batch:
                    for alarm in self.engine.apply(record):
                        self._pending.append(alarm.to_json_line())
                applied += len(batch)
                since_checkpoint += len(batch)
                if self.throttle > 0.0:
                    self._sleeper(self.throttle)
                if since_checkpoint >= self.checkpoint_every:
                    self._flush_and_checkpoint(tailer)
                    since_checkpoint = 0
            # Graceful exit: whatever stopped us, leave the log and
            # checkpoint agreeing on a resumable record boundary.
            self._flush_and_checkpoint(tailer)
            wall = self._clock() - started
            return StreamSummary(
                records=applied,
                offset=self.engine.offset,
                alarms_emitted=self.engine.alarms_emitted,
                alarm_duplicates=self.engine.alarm_duplicates,
                alarm_lines=self._alarm_lines,
                checkpoints=self.checkpoints_written,
                moas_active=self.engine.moas_active,
                state_prefixes=self.engine.state_prefixes,
                days_ticked=len(self.engine.daily_counts),
                stopped=self._stop_requested,
                eof=reached_eof,
                wall_seconds=wall,
                events_per_sec=applied / wall if wall > 0 else 0.0,
                checkpoint_seconds=self._checkpoint_seconds,
            )
        finally:
            tailer.close()

    # -- checkpointing ----------------------------------------------------------

    def _resume(self, tailer: FeedTailer) -> None:
        if self.checkpoint_path is None:
            raise ValueError("resume requested but no checkpoint path configured")
        checkpoint = load_checkpoint(self.checkpoint_path)
        self.engine.restore_state(checkpoint.engine_state)
        if checkpoint.offset != self.engine.offset:
            raise ValueError(
                f"checkpoint offset {checkpoint.offset} disagrees with its "
                f"engine state offset {self.engine.offset}"
            )
        self._alarm_lines = checkpoint.alarm_lines
        if self.alarms_path.exists():
            self._truncate_alarm_log(checkpoint.alarm_lines)
        else:
            # Resuming onto a fresh log path: it receives only the lines the
            # uninterrupted run would emit after the checkpoint.
            self.alarms_path.write_text("", encoding="utf-8")
        tailer.seek(checkpoint.byte_offset)

    def _truncate_alarm_log(self, keep_lines: int) -> None:
        """Roll the log back to the checkpoint's durable prefix.

        Robust against a crash that landed between the alarm flush and the
        checkpoint write: any lines past ``keep_lines`` were flushed for a
        checkpoint that never became durable, and will be re-emitted.
        """
        with self.alarms_path.open("r", encoding="utf-8") as handle:
            lines = handle.readlines()
        if len(lines) < keep_lines:
            raise ValueError(
                f"alarm log {self.alarms_path} has {len(lines)} lines but the "
                f"checkpoint recorded {keep_lines}"
            )
        if len(lines) > keep_lines:
            with self.alarms_path.open("w", encoding="utf-8") as handle:
                handle.writelines(lines[:keep_lines])

    def _flush_and_checkpoint(self, tailer: FeedTailer) -> None:
        began = self._clock()
        if self._pending:
            with self.alarms_path.open("a", encoding="utf-8") as handle:
                for line in self._pending:
                    handle.write(line + "\n")
                handle.flush()
                os.fsync(handle.fileno())
            self._alarm_lines += len(self._pending)
            self._pending.clear()
        if self.checkpoint_path is not None:
            save_checkpoint(
                self.checkpoint_path,
                Checkpoint(
                    offset=self.engine.offset,
                    byte_offset=tailer.byte_offset,
                    alarm_lines=self._alarm_lines,
                    engine_state=self.engine.snapshot_state(),
                ),
            )
            self.checkpoints_written += 1
            if self._m_checkpoints is not None:
                self._m_checkpoints.inc()
        self._checkpoint_seconds += self._clock() - began

    # -- attribution -------------------------------------------------------------

    def manifest_record(
        self,
        summary: StreamSummary,
        spec: Optional[Dict[str, Any]] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> ManifestRecord:
        """The run's single manifest line (timing under quarantined keys)."""
        base_spec: Dict[str, Any] = {
            "kind": "stream",
            "feed": str(self.feed_path),
            "window": self.engine.window,
            "batch_size": self.batch_size,
            "checkpoint_every": self.checkpoint_every,
        }
        if spec is not None:
            base_spec.update(spec)
        return ManifestRecord(
            index=0,
            seed=0,
            spec=base_spec,
            outcome=summary.to_dict(),
            metrics={} if metrics is None else dict(metrics.snapshot()),
            worker="stream",
            wall_seconds=summary.wall_seconds,
        )
