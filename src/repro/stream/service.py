"""The long-running detection service.

:class:`StreamService` tails a feed file (or FIFO) in batched reads, pushes
every record through a :class:`~repro.stream.engine.StreamEngine`, and
persists two artefacts:

* the **alarm log** — one canonical JSON line per first-seen alarm;
* the **checkpoint chain** — a full engine snapshot plus delta-encoded
  incremental boundaries (see :mod:`repro.stream.checkpoint`).

The two are coupled transactionally: pending alarm lines are flushed to the
log *only* at checkpoint boundaries (and once more at a graceful stop), and
the chain record written immediately after states how many lines — and
bytes — are durable.  A service killed at an arbitrary point therefore
leaves an alarm log whose durable prefix is named by the last durable chain
record, and a resume — which replays the chain, rolls the log back with a
single ``os.truncate`` to the recorded byte offset, and seeks the feed to
the recorded byte offset — continues producing exactly the remaining lines.
Concatenating the two runs' logs reproduces the uninterrupted log byte for
byte; ``tests/test_stream_service.py``, the fault-injection suite in
``tests/test_stream_faults.py`` and the ``stream-smoke`` CI job hold that
property.

Serialisation is **double-buffered off the ingest path**: at a boundary the
service captures the (cheap, delta-encoded) payload synchronously, then
hands the alarm flush + chain append to a background writer thread; ingest
only blocks when two boundaries are already in flight.  Ordering is
preserved by the queue, so the durability invariants are exactly those of
the synchronous path — ``async_io=False`` forces inline writes for tests.

Wall time never steers detection: the loop takes an injectable ``clock``
(throughput/latency measurement only — quarantined like every other timing
field) and an injectable ``sleeper`` (follow-mode polling and throttling),
so tests drive the service with fakes and the repro-lint R006 rule keeps
``time.sleep`` out of everything except the one default-sleeper call site
below.
"""

from __future__ import annotations

import os
import queue
import signal
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from types import FrameType
from typing import (
    IO,
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    List,
    Optional,
    Tuple,
    Union,
)

from repro.fsio import fsync_parent_dir
from repro.obs.manifest import ManifestRecord
from repro.obs.metrics import Counter, MetricsRegistry
from repro.stream.checkpoint import (
    DEFAULT_FULL_EVERY,
    ChainWriter,
    Checkpoint,
    CheckpointError,
    FaultHook,
    load_chain,
    reap_stale_tmp,
)
from repro.stream.engine import StreamEngine
from repro.stream.feed import FeedError, FeedRecord, parse_feed_line

if TYPE_CHECKING:  # runtime import is lazy: stream never *needs* query
    from repro.query.builder import IndexBuilder, IndexJob

#: Environment hook for crash-injection in subprocess tests: a fault-point
#: name, optionally ``:n`` to crash on the n-th hit (default first).
FAULT_ENV_VAR = "REPRO_STREAM_FAULT"
#: Exit status used by the injected-crash hook (distinct from real errors).
FAULT_EXIT_CODE = 73


def _real_sleep(seconds: float) -> None:
    """Default sleeper (follow-mode polling / throttling); tests inject fakes."""
    time.sleep(seconds)  # repro-lint: disable=R006


def _real_clock() -> float:
    """Default wall clock; measurement only, never an input to detection."""
    return time.perf_counter()  # repro-lint: disable=R002


def fault_hook_from_env() -> Optional[FaultHook]:
    """Build a crash hook from ``REPRO_STREAM_FAULT`` (``point[:n]``).

    The hook hard-exits the process (``os._exit``) at the chosen fault
    point, simulating a crash with no flushing, no handlers, no goodbye —
    which is the honest model for kill-testing durability code.
    """
    spec = os.environ.get(FAULT_ENV_VAR)
    if not spec:
        return None
    point, _, nth_text = spec.partition(":")
    remaining = [int(nth_text) if nth_text else 1]

    def hook(name: str) -> None:
        if name != point:
            return
        remaining[0] -= 1
        if remaining[0] <= 0:
            os._exit(FAULT_EXIT_CODE)

    return hook


class FeedTailer:
    """Batched reader over a feed file, tracking exact byte offsets.

    Reads in binary so ``byte_offset`` is always the start of the next
    unconsumed line.  A partial line at EOF (a writer caught mid-record) is
    left unconsumed — the next poll re-reads it once the newline lands.
    """

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self._handle: IO[bytes] = self.path.open("rb")
        self.byte_offset = 0

    def seek(self, byte_offset: int) -> None:
        self._handle.seek(byte_offset)
        self.byte_offset = byte_offset

    def read_batch(self, limit: int) -> List[FeedRecord]:
        """Up to ``limit`` records; empty means EOF (poll again or finish)."""
        records: List[FeedRecord] = []
        while len(records) < limit:
            position = self._handle.tell()
            line = self._handle.readline()
            if not line:
                break
            if not line.endswith(b"\n"):
                self._handle.seek(position)
                break
            self.byte_offset = self._handle.tell()
            try:
                record = parse_feed_line(line.decode("utf-8"))
            except FeedError as exc:
                raise FeedError(f"{self.path} at byte {position}: {exc}") from exc
            if record is not None:
                records.append(record)
        return records

    def close(self) -> None:
        if not self._handle.closed:
            self._handle.close()


@dataclass
class StreamSummary:
    """One service run's outcome (the manifest ``outcome`` payload)."""

    records: int
    offset: int
    alarms_emitted: int
    alarm_duplicates: int
    alarm_lines: int
    checkpoints: int
    moas_active: int
    state_prefixes: int
    days_ticked: int
    stopped: bool
    eof: bool
    wall_seconds: float
    events_per_sec: float
    checkpoint_seconds: float
    checkpoint_fulls: int = 0
    checkpoint_deltas: int = 0
    shards: int = 1
    alarm_totals: Dict[str, int] = field(default_factory=dict)
    daily_series: List[int] = field(default_factory=list)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe dict; timing lives under quarantined TIMING_KEYS names."""
        return {
            "records": self.records,
            "offset": self.offset,
            "alarms_emitted": self.alarms_emitted,
            "alarm_duplicates": self.alarm_duplicates,
            "alarm_lines": self.alarm_lines,
            "alarm_totals": dict(sorted(self.alarm_totals.items())),
            "checkpoints": self.checkpoints,
            "checkpoint_fulls": self.checkpoint_fulls,
            "checkpoint_deltas": self.checkpoint_deltas,
            "moas_active": self.moas_active,
            "state_prefixes": self.state_prefixes,
            "days_ticked": self.days_ticked,
            "daily_series": list(self.daily_series),
            "stopped": self.stopped,
            "eof": self.eof,
            "shards": self.shards,
            "events_per_sec": self.events_per_sec,
            "checkpoint_seconds": self.checkpoint_seconds,
        }


#: One boundary's durable work: alarm lines to append, then (optionally)
#: one chain write — a full Checkpoint or a delta record's fields — then
#: (optionally) one prepared index segment+manifest publish, strictly last
#: so the index commit point can never get ahead of the chain.
_WriterTask = Tuple[
    List[str],
    Optional[str],
    Optional[Checkpoint],
    Dict[str, Any],
    Optional["IndexJob"],
]


class _WriterPump:
    """Background double-buffered executor for boundary writes.

    Tasks run strictly in submission order on one thread; ``submit`` blocks
    only when ``depth`` boundaries are already in flight (the double
    buffer).  The first failure is latched and re-raised to the submitter —
    durability errors must never be silently swallowed off-thread.
    """

    _STOP = object()

    def __init__(
        self, execute: Callable[[_WriterTask], None], depth: int = 2
    ) -> None:
        self._execute = execute
        self._tasks: "queue.Queue[Any]" = queue.Queue(maxsize=max(1, depth))
        self._error: Optional[BaseException] = None
        self._thread = threading.Thread(
            target=self._loop, name="stream-writer", daemon=True
        )
        self._thread.start()

    def _loop(self) -> None:
        while True:
            task = self._tasks.get()
            if task is self._STOP:
                return
            if self._error is not None:
                continue  # drain without executing after a failure
            try:
                self._execute(task)
            except BaseException as exc:  # latched, re-raised on the caller
                self._error = exc

    def _check(self) -> None:
        if self._error is not None:
            error, self._error = self._error, None
            raise error

    def submit(self, task: _WriterTask) -> None:
        self._check()
        self._tasks.put(task)

    def close(self) -> None:
        """Drain, stop the thread, and surface any latched failure."""
        self._tasks.put(self._STOP)
        self._thread.join()
        self._check()


class StreamService:
    """Tail a feed, detect online, checkpoint incrementally, survive kills."""

    def __init__(
        self,
        feed: Union[str, Path],
        alarms: Union[str, Path],
        checkpoint: Optional[Union[str, Path]] = None,
        *,
        window: float = 30.0,
        batch_size: int = 256,
        checkpoint_every: int = 1000,
        full_every: int = DEFAULT_FULL_EVERY,
        follow: bool = False,
        poll_interval: float = 0.2,
        throttle: float = 0.0,
        max_records: Optional[int] = None,
        metrics: Optional[MetricsRegistry] = None,
        clock: Optional[Callable[[], float]] = None,
        sleeper: Optional[Callable[[float], None]] = None,
        async_io: bool = True,
        fault: Optional[FaultHook] = None,
        index: Optional[Union[str, Path]] = None,
    ) -> None:
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        if checkpoint_every < 1:
            raise ValueError(
                f"checkpoint_every must be >= 1, got {checkpoint_every}"
            )
        if full_every < 1:
            raise ValueError(f"full_every must be >= 1, got {full_every}")
        self.feed_path = Path(feed)
        self.alarms_path = Path(alarms)
        self.checkpoint_path = None if checkpoint is None else Path(checkpoint)
        self.engine = StreamEngine(window=window, metrics=metrics)
        self.batch_size = batch_size
        self.checkpoint_every = checkpoint_every
        self.full_every = full_every
        self.follow = follow
        self.poll_interval = poll_interval
        self.throttle = throttle
        self.max_records = max_records
        self.checkpoints_written = 0
        self.fulls_written = 0
        self.deltas_written = 0
        self._fault: Optional[FaultHook] = (
            fault if fault is not None else fault_hook_from_env()
        )
        self._builder: Optional["IndexBuilder"] = None
        if index is not None:
            from repro.query.builder import IndexBuilder as _IndexBuilder

            self._builder = _IndexBuilder(
                index, metrics=metrics, fault=self._fault
            )
        self._chain: Optional[ChainWriter] = None
        if self.checkpoint_path is not None:
            self._chain = ChainWriter(
                self.checkpoint_path,
                full_every=full_every,
                fault=self._fault,
            )
        self._boundaries_since_full = 0
        self._chain_started = False
        self._alarm_lines = 0
        self._alarm_bytes = 0
        self._pending: List[str] = []
        self._stop_requested = False
        self._clock = clock if clock is not None else _real_clock
        self._sleeper = sleeper if sleeper is not None else _real_sleep
        self._async_io = async_io
        self._pump: Optional[_WriterPump] = None
        self._checkpoint_seconds = 0.0
        self._m_checkpoints: Optional[Counter] = None
        self._m_fulls: Optional[Counter] = None
        self._m_deltas: Optional[Counter] = None
        if metrics is not None:
            self._m_checkpoints = metrics.counter("stream.checkpoints")
            self._m_fulls = metrics.counter("stream.checkpoint_fulls")
            self._m_deltas = metrics.counter("stream.checkpoint_deltas")

    # -- control ---------------------------------------------------------------

    def request_stop(self) -> None:
        """Finish the in-flight batch, flush + checkpoint, then return."""
        self._stop_requested = True

    def install_signal_handlers(self) -> None:
        """SIGTERM/SIGINT -> graceful stop (main thread only)."""
        signal.signal(signal.SIGTERM, self._on_signal)
        signal.signal(signal.SIGINT, self._on_signal)

    def _on_signal(self, signum: int, frame: Optional[FrameType]) -> None:
        self.request_stop()

    # -- the run loop -----------------------------------------------------------

    def run(self, resume: bool = False) -> StreamSummary:
        started = self._clock()
        if self.checkpoint_path is not None:
            # A crash mid-write strands `<name>*.tmp` files that nothing
            # would ever collect; sweep them before touching the chain.
            reap_stale_tmp(self.checkpoint_path)
        tailer = FeedTailer(self.feed_path)
        if self._async_io:
            self._pump = _WriterPump(self._execute_boundary)
        try:
            if resume:
                self._resume(tailer)
            else:
                # Fresh run: start the alarm log empty so reruns never append
                # to a stale log; directory-fsync so the (possibly new) log
                # file itself survives a crash.
                self.alarms_path.write_text("", encoding="utf-8")
                fsync_parent_dir(self.alarms_path)
                self._alarm_lines = 0
                self._alarm_bytes = 0
                if self._builder is not None:
                    self._builder.start_fresh()
            applied = 0
            since_checkpoint = 0
            reached_eof = False
            while not self._stop_requested:
                if self.max_records is not None and applied >= self.max_records:
                    break
                limit = self.batch_size
                if self.max_records is not None:
                    limit = min(limit, self.max_records - applied)
                batch = tailer.read_batch(limit)
                if not batch:
                    if not self.follow:
                        reached_eof = True
                        break
                    self._sleeper(self.poll_interval)
                    continue
                for record in batch:
                    for alarm in self.engine.apply(record):
                        self._pending.append(alarm.to_json_line())
                    if self._builder is not None:
                        self._builder.observe(record)
                applied += len(batch)
                since_checkpoint += len(batch)
                if self.throttle > 0.0:
                    self._sleeper(self.throttle)
                if since_checkpoint >= self.checkpoint_every:
                    self._flush_and_checkpoint(tailer)
                    since_checkpoint = 0
            # Graceful exit: whatever stopped us, leave the log and
            # checkpoint agreeing on a resumable record boundary.
            self._flush_and_checkpoint(tailer)
            self._drain_pump()
            wall = self._clock() - started
            return StreamSummary(
                records=applied,
                offset=self.engine.offset,
                alarms_emitted=self.engine.alarms_emitted,
                alarm_duplicates=self.engine.alarm_duplicates,
                alarm_lines=self._alarm_lines,
                checkpoints=self.checkpoints_written,
                checkpoint_fulls=self.fulls_written,
                checkpoint_deltas=self.deltas_written,
                moas_active=self.engine.moas_active,
                state_prefixes=self.engine.state_prefixes,
                days_ticked=len(self.engine.daily_counts),
                stopped=self._stop_requested,
                eof=reached_eof,
                wall_seconds=wall,
                events_per_sec=applied / wall if wall > 0 else 0.0,
                checkpoint_seconds=self._checkpoint_seconds,
                alarm_totals=self.engine.alarm_totals(),
                daily_series=self.engine.daily_series(),
            )
        finally:
            try:
                self._drain_pump()
            finally:
                tailer.close()

    def _drain_pump(self) -> None:
        if self._pump is not None:
            pump, self._pump = self._pump, None
            began = self._clock()
            pump.close()
            self._checkpoint_seconds += self._clock() - began

    # -- checkpointing ----------------------------------------------------------

    def _resume(self, tailer: FeedTailer) -> None:
        if self.checkpoint_path is None:
            raise ValueError("resume requested but no checkpoint path configured")
        chain = load_chain(self.checkpoint_path)
        checkpoint = chain.checkpoint
        self.engine.restore_state(checkpoint.engine_state)
        if checkpoint.offset != self.engine.offset:
            raise CheckpointError(
                f"checkpoint offset {checkpoint.offset} disagrees with its "
                f"engine state offset {self.engine.offset}"
            )
        self._alarm_lines = checkpoint.alarm_lines
        if self.alarms_path.exists():
            self._truncate_alarm_log(checkpoint)
        else:
            # Resuming onto a fresh log path: it receives only the lines the
            # uninterrupted run would emit after the checkpoint.
            self.alarms_path.write_text("", encoding="utf-8")
            fsync_parent_dir(self.alarms_path)
            self._alarm_bytes = 0
        assert self._chain is not None  # checkpoint_path implies a chain
        self._chain.resume(chain)
        self._boundaries_since_full = chain.seq
        self._chain_started = True
        tailer.seek(checkpoint.byte_offset)
        if self._builder is not None:
            end = checkpoint.index_coordinates()
            # The truncation above may have corrected v1-era byte
            # accounting; the index must catch up to what is actually
            # durable in *this* log file.
            end["alarm_bytes"] = self._alarm_bytes
            self._builder.resume(
                feeds=[self.feed_path], alarms=self.alarms_path, end=end
            )

    def _truncate_alarm_log(self, checkpoint: Checkpoint) -> None:
        """Roll the log back to the checkpoint's durable prefix.

        Robust against a crash that landed between the alarm flush and the
        chain write: any bytes past the recorded durable length were
        flushed for a boundary that never became durable, and will be
        re-emitted.  The rollback itself is one ``os.truncate`` — a single
        atomic syscall, safe to die during and idempotent to repeat —
        replacing the old read-all-lines-and-rewrite (which a crash could
        leave half-written, silently corrupting the log).
        """
        keep_bytes = checkpoint.alarm_bytes
        if keep_bytes == 0 and checkpoint.alarm_lines > 0:
            # v1-era checkpoint without byte accounting: locate the byte
            # offset of the recorded line count, then truncate atomically.
            keep_bytes = self._line_byte_offset(checkpoint.alarm_lines)
        size = self.alarms_path.stat().st_size
        if size < keep_bytes:
            raise CheckpointError(
                f"alarm log {self.alarms_path} has {size} bytes but the "
                f"checkpoint recorded {keep_bytes} durable"
            )
        with self.alarms_path.open("r+b") as handle:
            if keep_bytes > 0:
                handle.seek(keep_bytes - 1)
                if handle.read(1) != b"\n":
                    raise CheckpointError(
                        f"alarm log {self.alarms_path} does not end a line at "
                        f"byte {keep_bytes}; refusing to truncate"
                    )
            if self._fault is not None:
                self._fault("truncate-pre")
            if size > keep_bytes:
                handle.truncate(keep_bytes)
                handle.flush()
                os.fsync(handle.fileno())
            if self._fault is not None:
                self._fault("truncate-post")
        self._alarm_bytes = keep_bytes

    def _line_byte_offset(self, lines: int) -> int:
        """Byte offset just past line ``lines`` of the alarm log."""
        offset = 0
        seen = 0
        with self.alarms_path.open("rb") as handle:
            for line in handle:
                seen += 1
                offset += len(line)
                if seen == lines:
                    return offset
        raise CheckpointError(
            f"alarm log {self.alarms_path} has {seen} lines but the "
            f"checkpoint recorded {lines}"
        )

    def _flush_and_checkpoint(self, tailer: FeedTailer) -> None:
        began = self._clock()
        pending, self._pending = self._pending, []
        self._alarm_lines += len(pending)
        self._alarm_bytes += sum(len(line.encode("utf-8")) + 1 for line in pending)
        kind: Optional[str] = None
        checkpoint: Optional[Checkpoint] = None
        delta: Dict[str, Any] = {}
        if self._chain is not None:
            if (
                not self._chain_started
                or self._boundaries_since_full + 1 >= self.full_every
            ):
                kind = "full"
                checkpoint = Checkpoint(
                    offset=self.engine.offset,
                    byte_offset=tailer.byte_offset,
                    alarm_lines=self._alarm_lines,
                    engine_state=self.engine.snapshot_state(),
                    alarm_bytes=self._alarm_bytes,
                )
                self._boundaries_since_full = 0
                self._chain_started = True
                self.fulls_written += 1
                if self._m_fulls is not None:
                    self._m_fulls.inc()
            else:
                kind = "delta"
                delta = {
                    "offset": self.engine.offset,
                    "byte_offset": tailer.byte_offset,
                    "alarm_lines": self._alarm_lines,
                    "alarm_bytes": self._alarm_bytes,
                    "delta": self.engine.delta_state(),
                }
                self._boundaries_since_full += 1
                self.deltas_written += 1
                if self._m_deltas is not None:
                    self._m_deltas.inc()
            self.engine.mark_clean()
            self.checkpoints_written += 1
            if self._m_checkpoints is not None:
                self._m_checkpoints.inc()
        job: Optional["IndexJob"] = None
        if self._builder is not None:
            job = self._builder.prepare_boundary(
                {
                    "records": self.engine.offset,
                    "alarm_bytes": self._alarm_bytes,
                    "feed_bytes": tailer.byte_offset,
                },
                pending,
            )
        task: _WriterTask = (pending, kind, checkpoint, delta, job)
        if self._pump is not None:
            self._pump.submit(task)
        else:
            self._execute_boundary(task)
        self._checkpoint_seconds += self._clock() - began

    def _execute_boundary(self, task: _WriterTask) -> None:
        """One boundary's durable work (writer thread, or inline when sync)."""
        pending, kind, checkpoint, delta, job = task
        if pending:
            if self._fault is not None:
                self._fault("alarm-pre-append")
            with self.alarms_path.open("a", encoding="utf-8") as handle:
                for line in pending:
                    handle.write(line + "\n")
                handle.flush()
                if self._fault is not None:
                    self._fault("alarm-pre-fsync")
                os.fsync(handle.fileno())
            if self._fault is not None:
                self._fault("alarm-post-fsync")
        if kind is not None:
            assert self._chain is not None
            if kind == "full":
                assert checkpoint is not None
                self._chain.write_full(checkpoint)
            else:
                self._chain.append_delta(
                    offset=delta["offset"],
                    byte_offset=delta["byte_offset"],
                    alarm_lines=delta["alarm_lines"],
                    alarm_bytes=delta["alarm_bytes"],
                    delta=delta["delta"],
                )
        if job is not None:
            # Strictly after the chain write: the manifest (the index's
            # commit point) must never reference a boundary the chain has
            # not made durable.
            assert self._builder is not None
            self._builder.commit(job)

    # -- attribution -------------------------------------------------------------

    def manifest_record(
        self,
        summary: StreamSummary,
        spec: Optional[Dict[str, Any]] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> ManifestRecord:
        """The run's single manifest line (timing under quarantined keys)."""
        base_spec: Dict[str, Any] = {
            "kind": "stream",
            "feed": str(self.feed_path),
            "window": self.engine.window,
            "batch_size": self.batch_size,
            "checkpoint_every": self.checkpoint_every,
            "full_every": self.full_every,
        }
        if spec is not None:
            base_spec.update(spec)
        return ManifestRecord(
            index=0,
            seed=0,
            spec=base_spec,
            outcome=summary.to_dict(),
            metrics={} if metrics is None else dict(metrics.snapshot()),
            worker="stream",
            wall_seconds=summary.wall_seconds,
        )
