"""Deterministic service checkpoints.

A checkpoint is one versioned JSON document capturing everything the
service needs to resume exactly where it stopped:

* ``offset`` / ``byte_offset`` — how many feed records were consumed and
  where the next one starts in the feed file;
* ``alarm_lines`` — how many alarm-log lines were durably flushed;
* ``engine`` — the full :meth:`~repro.stream.engine.StreamEngine.
  snapshot_state` structure (live origins, conflict evidence, alarm-dedup
  counts, daily MOAS counts).

The alarm log is flushed *transactionally at checkpoint boundaries only*
(see :mod:`repro.stream.service`), so ``alarm_lines`` always names a
prefix of the uninterrupted run's log — that invariant, plus the engine
state round-trip being canonical, is what makes a killed-and-resumed
service's concatenated alarm log bit-identical to an uninterrupted run's.

Writes are atomic (temp file + ``os.replace``), so a crash mid-write
leaves the previous checkpoint intact rather than a torn file.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Union

CHECKPOINT_FORMAT = "repro-stream-checkpoint"
CHECKPOINT_VERSION = 1


class CheckpointError(ValueError):
    """Raised for missing, torn, or version-incompatible checkpoints."""


@dataclass(frozen=True)
class Checkpoint:
    """One resumable service state."""

    offset: int
    byte_offset: int
    alarm_lines: int
    engine_state: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.offset < 0 or self.byte_offset < 0 or self.alarm_lines < 0:
            raise CheckpointError(
                f"checkpoint coordinates must be non-negative, got "
                f"offset={self.offset} byte_offset={self.byte_offset} "
                f"alarm_lines={self.alarm_lines}"
            )

    def to_json(self) -> str:
        """Canonical serialisation (sorted keys, stable indent-free form)."""
        return json.dumps(
            {
                "format": CHECKPOINT_FORMAT,
                "version": CHECKPOINT_VERSION,
                "offset": self.offset,
                "byte_offset": self.byte_offset,
                "alarm_lines": self.alarm_lines,
                "engine": self.engine_state,
            },
            sort_keys=True,
            separators=(",", ":"),
        )

    @classmethod
    def from_json(cls, text: str) -> "Checkpoint":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise CheckpointError(f"checkpoint is not valid JSON: {exc}") from exc
        if not isinstance(data, dict):
            raise CheckpointError("checkpoint must be a JSON object")
        if data.get("format") != CHECKPOINT_FORMAT:
            raise CheckpointError(
                f"not a {CHECKPOINT_FORMAT} document: {data.get('format')!r}"
            )
        version = data.get("version")
        if version != CHECKPOINT_VERSION:
            raise CheckpointError(f"unsupported checkpoint version {version!r}")
        try:
            return cls(
                offset=int(data["offset"]),
                byte_offset=int(data["byte_offset"]),
                alarm_lines=int(data["alarm_lines"]),
                engine_state=dict(data["engine"]),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise CheckpointError(f"malformed checkpoint: {exc}") from exc


def save_checkpoint(path: Union[str, Path], checkpoint: Checkpoint) -> None:
    """Atomically write ``checkpoint`` to ``path`` (temp + ``os.replace``)."""
    target = Path(path)
    tmp = target.with_name(target.name + ".tmp")
    with tmp.open("w", encoding="utf-8") as handle:
        handle.write(checkpoint.to_json() + "\n")
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, target)


def load_checkpoint(path: Union[str, Path]) -> Checkpoint:
    """Load and validate a checkpoint; raises :class:`CheckpointError`."""
    target = Path(path)
    if not target.exists():
        raise CheckpointError(f"no checkpoint at {target}")
    return Checkpoint.from_json(target.read_text(encoding="utf-8"))
