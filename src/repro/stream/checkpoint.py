"""Deterministic service checkpoints — full snapshots plus delta chains.

A checkpoint names everything the service needs to resume exactly where it
stopped:

* ``offset`` / ``byte_offset`` — how many feed records were consumed and
  where the next one starts in the feed file;
* ``alarm_lines`` / ``alarm_bytes`` — how many alarm-log lines (and bytes)
  were durably flushed, so resume can roll the log back with one
  ``os.truncate`` instead of a non-atomic rewrite;
* ``engine`` — either a full
  :meth:`~repro.stream.engine.StreamEngine.snapshot_state` document or the
  sharded router's composite state (one engine state per shard plus feed
  coordinates).

Durability is a **chain**: the checkpoint path holds the most recent *full*
snapshot, and a sibling ``<path>.deltas`` file accumulates one JSON line
per incremental boundary — each delta carrying only the engine keys dirtied
since the previous boundary (see :mod:`repro.stream.delta`), linked to its
base snapshot by content digest and a contiguous sequence number.  Every
``full_every``-th boundary compacts: a fresh full snapshot is published
atomically and the delta file is reset.

Crash anatomy (every step leaves a resumable state):

* full snapshots are temp + ``fsync`` + ``os.replace`` + parent-directory
  ``fsync`` — a crash mid-write leaves the previous chain intact, and the
  directory fsync closes the ext4/xfs hole where a rename itself could be
  lost after a crash;
* delta appends are flushed and fsynced per line; a crash mid-append
  leaves a **torn tail** (no trailing newline) which the loader drops —
  the chain resumes from the previous boundary;
* compaction resets the delta file *before* replacing the full snapshot,
  so a crash between the two steps rewinds to the old full snapshot —
  valid, just less recent — and never leaves deltas dangling from a
  mismatched base (a dangling base digest is refused as corruption).

Anything else — a torn middle line, a sequence gap, a wrong base digest —
raises :class:`CheckpointError`: resume either replays cleanly or refuses,
never silently diverges.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Union

from repro.fsio import fsync_parent_dir
from repro.stream.delta import apply_state_delta

CHECKPOINT_FORMAT = "repro-stream-checkpoint"
CHECKPOINT_VERSION = 2
#: Versions this loader understands (v1 predates ``alarm_bytes`` + chains).
SUPPORTED_VERSIONS = (1, 2)

DELTA_FORMAT = "repro-stream-checkpoint-delta"

#: Default compaction cadence: one full snapshot per this many boundaries.
DEFAULT_FULL_EVERY = 32

#: Crash-injection hook: called with a fault-point name at every durability
#: step; raising (or exiting) simulates a crash at exactly that point.
FaultHook = Callable[[str], None]


class CheckpointError(ValueError):
    """Raised for missing, torn, or version-incompatible checkpoints."""


@dataclass(frozen=True)
class Checkpoint:
    """One resumable service state (full engine/router document)."""

    offset: int
    byte_offset: int
    alarm_lines: int
    engine_state: Dict[str, Any] = field(default_factory=dict)
    alarm_bytes: int = 0

    def __post_init__(self) -> None:
        if (
            self.offset < 0
            or self.byte_offset < 0
            or self.alarm_lines < 0
            or self.alarm_bytes < 0
        ):
            raise CheckpointError(
                f"checkpoint coordinates must be non-negative, got "
                f"offset={self.offset} byte_offset={self.byte_offset} "
                f"alarm_lines={self.alarm_lines} alarm_bytes={self.alarm_bytes}"
            )

    def to_json(self) -> str:
        """Canonical serialisation (sorted keys, stable indent-free form)."""
        return json.dumps(
            {
                "format": CHECKPOINT_FORMAT,
                "version": CHECKPOINT_VERSION,
                "offset": self.offset,
                "byte_offset": self.byte_offset,
                "alarm_lines": self.alarm_lines,
                "alarm_bytes": self.alarm_bytes,
                "engine": self.engine_state,
            },
            sort_keys=True,
            separators=(",", ":"),
        )

    def digest(self) -> str:
        """Content digest linking deltas to their base snapshot."""
        return hashlib.sha256(self.to_json().encode("utf-8")).hexdigest()[:16]

    def index_coordinates(self) -> Dict[str, Any]:
        """This checkpoint's position in index-boundary terms.

        The boundary hook the query subsystem (:mod:`repro.query`) shares
        with the stream: how many records are folded in, how many alarm-log
        bytes are durable, and where the feed cursor(s) stand — ``feed_bytes``
        for a single-engine service, ``feed_offsets`` (one per vantage feed)
        for the sharded router's composite state.  An index manifest is
        valid for a chain exactly when its end coordinates are component-wise
        at or behind these.
        """
        if "shard_count" in self.engine_state:  # router composite document
            return {
                "records": self.offset,
                "alarm_bytes": self.alarm_bytes,
                "feed_offsets": [
                    int(offset)
                    for offset in self.engine_state["feed_offsets"]
                ],
            }
        return {
            "records": self.offset,
            "alarm_bytes": self.alarm_bytes,
            "feed_bytes": self.byte_offset,
        }

    @classmethod
    def from_json(cls, text: str) -> "Checkpoint":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise CheckpointError(f"checkpoint is not valid JSON: {exc}") from exc
        if not isinstance(data, dict):
            raise CheckpointError("checkpoint must be a JSON object")
        if data.get("format") != CHECKPOINT_FORMAT:
            raise CheckpointError(
                f"not a {CHECKPOINT_FORMAT} document: {data.get('format')!r}"
            )
        version = data.get("version")
        if version not in SUPPORTED_VERSIONS:
            raise CheckpointError(f"unsupported checkpoint version {version!r}")
        try:
            return cls(
                offset=int(data["offset"]),
                byte_offset=int(data["byte_offset"]),
                alarm_lines=int(data["alarm_lines"]),
                engine_state=dict(data["engine"]),
                alarm_bytes=int(data.get("alarm_bytes", 0)),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise CheckpointError(f"malformed checkpoint: {exc}") from exc


@dataclass(frozen=True)
class LoadedChain:
    """A validated chain: the replayed tip plus continuation coordinates."""

    checkpoint: Checkpoint  #: full snapshot with every delta folded in
    full: Checkpoint  #: the on-disk base snapshot, as written
    base_digest: str
    seq: int  #: sequence number of the last valid delta (0 = none)
    delta_valid_bytes: int  #: length of the validated delta-file prefix
    torn_tail_bytes: int  #: bytes dropped past the last durable delta


def delta_path_for(path: Union[str, Path]) -> Path:
    """The delta-chain sibling of a checkpoint path."""
    target = Path(path)
    return target.with_name(target.name + ".deltas")


def reap_stale_tmp(path: Union[str, Path]) -> List[str]:
    """Remove temp files a crashed writer left beside checkpoint ``path``.

    A crash between writing ``<name>*.tmp`` and its ``os.replace`` strands
    the temp file forever (nothing ever reads or collects it); services
    call this once at start so stale temps cannot accumulate.  Returns the
    removed file names.
    """
    target = Path(path)
    reaped: List[str] = []
    if not target.parent.is_dir():
        return reaped
    for stale in sorted(target.parent.glob(target.name + "*.tmp")):
        try:
            stale.unlink()
        except OSError:
            continue
        reaped.append(stale.name)
    return reaped


def _no_fault(point: str) -> None:
    return None


class ChainWriter:
    """Writes one checkpoint chain: full snapshots, delta appends, compaction.

    The writer is synchronous and single-owner (one service per checkpoint
    path, as before); the service wraps it in a background pump for the
    async double-buffered path.  ``fault`` is the crash-injection hook —
    production passes nothing and every ``_fault`` call is a no-op.
    """

    def __init__(
        self,
        path: Union[str, Path],
        *,
        full_every: int = DEFAULT_FULL_EVERY,
        fault: Optional[FaultHook] = None,
    ) -> None:
        if full_every < 1:
            raise ValueError(f"full_every must be >= 1, got {full_every}")
        self.path = Path(path)
        self.delta_path = delta_path_for(path)
        self.full_every = full_every
        self._fault: FaultHook = fault if fault is not None else _no_fault
        self._base_digest: Optional[str] = None
        self._seq = 0
        self._deltas_since_full = 0
        self.fulls_written = 0
        self.deltas_written = 0

    # -- lifecycle -----------------------------------------------------------

    def resume(self, chain: LoadedChain) -> None:
        """Continue an existing chain: drop any torn tail, adopt coordinates."""
        if chain.torn_tail_bytes:
            with self.delta_path.open("r+b") as handle:
                handle.truncate(chain.delta_valid_bytes)
                handle.flush()
                os.fsync(handle.fileno())
        self._base_digest = chain.base_digest
        self._seq = chain.seq
        self._deltas_since_full = chain.seq

    def wants_full(self) -> bool:
        """Should the next boundary be a full snapshot (compaction)?"""
        return (
            self._base_digest is None
            or self._deltas_since_full + 1 >= self.full_every
        )

    # -- writing -------------------------------------------------------------

    def write_full(self, checkpoint: Checkpoint) -> None:
        """Publish a full snapshot atomically and reset the delta chain."""
        doc = checkpoint.to_json()
        tmp = self.path.with_name(self.path.name + ".tmp")
        with tmp.open("w", encoding="utf-8") as handle:
            handle.write(doc + "\n")
            handle.flush()
            self._fault("full-pre-fsync")
            os.fsync(handle.fileno())
        self._fault("full-pre-reset")
        # Reset deltas BEFORE replacing the snapshot: a crash between the
        # two steps rewinds to the old full snapshot (valid), and deltas
        # can never dangle from a base that no longer exists.
        if self.delta_path.exists():
            delta_tmp = self.delta_path.with_name(self.delta_path.name + ".tmp")
            with delta_tmp.open("wb") as handle:
                handle.flush()
                os.fsync(handle.fileno())
            self._fault("full-pre-reset-replace")
            os.replace(delta_tmp, self.delta_path)
        self._fault("full-pre-replace")
        os.replace(tmp, self.path)
        self._fault("full-pre-dirsync")
        fsync_parent_dir(self.path)
        self._base_digest = checkpoint.digest()
        self._seq = 0
        self._deltas_since_full = 0
        self.fulls_written += 1

    def append_delta(
        self,
        *,
        offset: int,
        byte_offset: int,
        alarm_lines: int,
        alarm_bytes: int,
        delta: Dict[str, Any],
    ) -> None:
        """Append one incremental boundary to the chain (fsynced)."""
        if self._base_digest is None:
            raise CheckpointError(
                "cannot append a delta before any full snapshot"
            )
        record = {
            "format": DELTA_FORMAT,
            "version": CHECKPOINT_VERSION,
            "seq": self._seq + 1,
            "base": self._base_digest,
            "offset": offset,
            "byte_offset": byte_offset,
            "alarm_lines": alarm_lines,
            "alarm_bytes": alarm_bytes,
            "delta": delta,
        }
        line = json.dumps(record, sort_keys=True, separators=(",", ":")) + "\n"
        created = not self.delta_path.exists()
        self._fault("delta-pre-append")
        with self.delta_path.open("ab") as handle:
            half = max(1, len(line) // 2)
            handle.write(line[:half].encode("utf-8"))
            handle.flush()
            self._fault("delta-mid-append")
            handle.write(line[half:].encode("utf-8"))
            handle.flush()
            self._fault("delta-pre-fsync")
            os.fsync(handle.fileno())
        if created:
            fsync_parent_dir(self.delta_path)
        self._fault("delta-post-fsync")
        self._seq += 1
        self._deltas_since_full += 1
        self.deltas_written += 1


# -- loading ----------------------------------------------------------------


def load_chain(path: Union[str, Path]) -> LoadedChain:
    """Load and replay a checkpoint chain; raises :class:`CheckpointError`.

    The torn-tail rule: the delta file's final bytes count as durable only
    up to the last newline-terminated, valid line.  A trailing fragment
    without a newline is a crash mid-append and is dropped (the previous
    boundary is the resume point).  Any *complete* line that is invalid —
    bad JSON, wrong base digest, a sequence gap, a rewinding offset — is
    corruption, and the whole load refuses.
    """
    target = Path(path)
    if not target.exists():
        raise CheckpointError(f"no checkpoint at {target}")
    full = Checkpoint.from_json(target.read_text(encoding="utf-8"))
    base_digest = full.digest()

    delta_file = delta_path_for(target)
    state = full.engine_state
    offset = full.offset
    byte_offset = full.byte_offset
    alarm_lines = full.alarm_lines
    alarm_bytes = full.alarm_bytes
    seq = 0
    valid_bytes = 0
    torn_bytes = 0
    if delta_file.exists():
        raw = delta_file.read_bytes()
        consumed = 0
        while consumed < len(raw):
            newline = raw.find(b"\n", consumed)
            if newline < 0:
                torn_bytes = len(raw) - consumed
                break
            line = raw[consumed:newline]
            consumed = newline + 1
            try:
                record = json.loads(line.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                raise CheckpointError(
                    f"corrupt delta line {seq + 1} in {delta_file}: {exc}"
                ) from exc
            if not isinstance(record, dict) or record.get("format") != DELTA_FORMAT:
                raise CheckpointError(
                    f"delta line {seq + 1} in {delta_file} is not a "
                    f"{DELTA_FORMAT} record"
                )
            if record.get("version") not in SUPPORTED_VERSIONS:
                raise CheckpointError(
                    f"unsupported delta version {record.get('version')!r} "
                    f"in {delta_file}"
                )
            if record.get("base") != base_digest:
                raise CheckpointError(
                    f"delta line {seq + 1} in {delta_file} chains from base "
                    f"{record.get('base')!r}, snapshot is {base_digest}"
                )
            if record.get("seq") != seq + 1:
                raise CheckpointError(
                    f"delta chain gap in {delta_file}: expected seq "
                    f"{seq + 1}, found {record.get('seq')!r}"
                )
            try:
                new_offset = int(record["offset"])
                new_byte_offset = int(record["byte_offset"])
                new_alarm_lines = int(record["alarm_lines"])
                new_alarm_bytes = int(record.get("alarm_bytes", 0))
                state = apply_state_delta(state, dict(record["delta"]))
            except (KeyError, TypeError, ValueError) as exc:
                raise CheckpointError(
                    f"malformed delta line {seq + 1} in {delta_file}: {exc}"
                ) from exc
            if new_offset < offset:
                raise CheckpointError(
                    f"delta line {seq + 1} in {delta_file} rewinds offset "
                    f"{offset} -> {new_offset}"
                )
            offset = new_offset
            byte_offset = new_byte_offset
            alarm_lines = new_alarm_lines
            alarm_bytes = new_alarm_bytes
            seq += 1
            valid_bytes = consumed
    tip = Checkpoint(
        offset=offset,
        byte_offset=byte_offset,
        alarm_lines=alarm_lines,
        engine_state=state,
        alarm_bytes=alarm_bytes,
    )
    return LoadedChain(
        checkpoint=tip,
        full=full,
        base_digest=base_digest,
        seq=seq,
        delta_valid_bytes=valid_bytes,
        torn_tail_bytes=torn_bytes,
    )


def save_checkpoint(path: Union[str, Path], checkpoint: Checkpoint) -> None:
    """Atomically write ``checkpoint`` as a fresh full snapshot.

    Resets any existing delta chain beside ``path`` — the one-shot
    (chainless) API used by tests and external callers.
    """
    ChainWriter(path, full_every=1).write_full(checkpoint)


def load_checkpoint(path: Union[str, Path]) -> Checkpoint:
    """Load a checkpoint chain and return its replayed tip."""
    return load_chain(path).checkpoint
