"""Delta encoding for engine checkpoints — the state algebra.

A full :meth:`~repro.stream.engine.StreamEngine.snapshot_state` document
is O(live table): at collector scale serialising it at every checkpoint
boundary is what cost the service ~60% of its throughput.  An *incremental*
checkpoint instead records only the keys dirtied since the previous
boundary — per-prefix origin sets / evidence / activity stamps, alarm-dedup
counts, ticked days — plus the handful of scalar counters, all in the same
canonical JSON-safe shape as the full snapshot.

This module owns the pure state algebra, deliberately free of any file
I/O so it can be property-tested in isolation and reused by both the
single-engine service and the sharded router:

* :func:`apply_engine_delta` — fold one engine delta (produced by
  :meth:`StreamEngine.delta_state`) into a full engine-state document,
  returning a canonical document equal to what ``snapshot_state`` would
  have produced at that boundary;
* :func:`apply_state_delta` — the same fold for *router* composite states
  (one engine state per shard plus feed coordinates).

Delta semantics are **set-to-value**: each dirtied key carries its complete
current value, with ``None`` meaning "deleted".  Applying a delta is
therefore idempotent, and replay order is the only thing that matters —
which is exactly what the chain loader enforces with sequence numbers.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.net.addresses import Prefix

#: Scalar counters carried (and overwritten) by every delta.
ENGINE_SCALARS = (
    "window",
    "offset",
    "moas_active",
    "alarms_emitted",
    "alarm_duplicates",
    "evictions",
)


def _prefix_order(name: str) -> Tuple[Any, ...]:
    return Prefix.parse(name).sort_key


def _alarm_sort_key(entry: List[Any]) -> Tuple[Any, ...]:
    prefix, kind, observed, conflicting, origin = entry[:5]
    return (
        prefix,
        kind,
        tuple(observed),
        tuple(conflicting) if conflicting is not None else (),
        origin if origin is not None else -1,
    )


def apply_engine_delta(
    state: Dict[str, Any], delta: Dict[str, Any]
) -> Dict[str, Any]:
    """Fold one engine delta into a full engine-state document.

    Both inputs are canonical JSON-safe structures; the result is again
    canonical (sorted exactly as ``snapshot_state`` sorts), so chains of
    deltas replay to bit-identical documents regardless of where the full
    snapshot fell.
    """
    days = {int(day): int(count) for day, count in state["daily_counts"]}
    for day, count in delta.get("days", []):
        days[int(day)] = int(count)

    origins = {name: live for name, live in state["origins"]}
    observed = {name: lists for name, lists in state["observed"]}
    activity = {name: last for name, last in state["last_activity"]}
    # The three per-prefix components are dirtied (and shipped)
    # independently — see StreamEngine.delta_state.
    for name, live in delta.get("origins", []):
        if live is None:
            origins.pop(name, None)
        else:
            origins[name] = live
    for name, lists in delta.get("observed", []):
        if lists is None:
            observed.pop(name, None)
        else:
            observed[name] = lists
    for name, last in delta.get("activity", []):
        if last is None:
            activity.pop(name, None)
        else:
            activity[name] = last

    alarms: Dict[Tuple[Any, ...], List[Any]] = {
        tuple(_alarm_sort_key(entry)): entry for entry in state["alarm_counts"]
    }
    for entry in delta.get("alarms", []):
        key = tuple(_alarm_sort_key(entry))
        count = entry[5]
        if count is None:
            alarms.pop(key, None)
        else:
            alarms[key] = entry
    merged: Dict[str, Any] = {
        name: delta[name] for name in ENGINE_SCALARS
    }
    merged["daily_counts"] = [[day, days[day]] for day in sorted(days)]
    merged["origins"] = [
        [name, origins[name]] for name in sorted(origins, key=_prefix_order)
    ]
    merged["observed"] = [
        [name, observed[name]] for name in sorted(observed, key=_prefix_order)
    ]
    merged["last_activity"] = [
        [name, activity[name]] for name in sorted(activity, key=_prefix_order)
    ]
    merged["alarm_counts"] = [alarms[key] for key in sorted(alarms)]
    return merged


def apply_state_delta(
    state: Dict[str, Any], delta: Dict[str, Any]
) -> Dict[str, Any]:
    """Fold a delta into either an engine state or a router composite state.

    Router composite documents hold one engine state per shard under
    ``"shards"`` plus the feed-fan-in coordinates; their deltas carry one
    engine delta per shard in shard order.
    """
    if "shards" not in state:
        return apply_engine_delta(state, delta)
    shard_states: List[Dict[str, Any]] = list(state["shards"])
    shard_deltas: List[Optional[Dict[str, Any]]] = list(delta["shards"])
    if len(shard_states) != len(shard_deltas):
        raise ValueError(
            f"delta has {len(shard_deltas)} shards, state has "
            f"{len(shard_states)}"
        )
    merged = dict(state)
    merged["shards"] = [
        shard_state if shard_delta is None
        else apply_engine_delta(shard_state, shard_delta)
        for shard_state, shard_delta in zip(shard_states, shard_deltas)
    ]
    for key in ("feed_offsets", "epoch", "feed_ticks"):
        if key in delta:
            merged[key] = delta[key]
    return merged
