"""The incremental online MOAS detector.

:class:`StreamEngine` is the streaming counterpart of both halves of the
batch pipeline: it maintains the live per-prefix origin state the §3
observer derives from daily table dumps (so MOAS counts fall out of the
same state, updated in O(1) per event instead of a full-table rescan), and
it applies the §4.2 :class:`~repro.core.checker.MoasChecker` conflict rules
to every announcement as it arrives — step 2 (an origin missing from its
own list) and step 3 (inconsistency with any list previously observed for
the prefix), with the same deterministic conflicting-list selection.

Because a long-running service cannot keep evidence forever, conflict
evidence for *dead* prefixes (no live origin) is evicted once the prefix
has been quiet for a configurable window of ticks — the bounded-window
analogue of the checker's per-run ``_observed`` map.  Alarms are
deduplicated on their full evidence (prefix, kind, observed list,
conflicting list, suspect origin): the first occurrence emits a
:class:`StreamAlarm` record, repeats only bump an aggregate count, so a
route flapping through the same conflict a thousand times costs one alarm
line and a counter.

All engine state round-trips through :meth:`snapshot_state` /
:meth:`restore_state` as canonical JSON-safe structures (sorted lists of
pairs, never raw dicts), which is what makes checkpoint/resume produce
bit-identical alarm logs.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Set, Tuple

from repro.core.alarms import AlarmKind
from repro.core.detection import (
    DEFAULT_EVIDENCE_WINDOW,
    evaluate_list_conflict,
    select_conflicting,
)
from repro.core.moas_list import MoasList
from repro.net.addresses import Prefix
from repro.net.asn import ASN
from repro.obs.metrics import Counter, Gauge, MetricsRegistry
from repro.stream.feed import OP_ANNOUNCE, OP_TICK, OP_WITHDRAW, FeedRecord

#: Dedup key: (prefix, kind, observed list, conflicting list, suspect origin).
AlarmKey = Tuple[str, str, Tuple[ASN, ...], Optional[Tuple[ASN, ...]], Optional[ASN]]


@dataclass(frozen=True)
class StreamAlarm:
    """One deduplicated alarm emitted by the online detector."""

    time: float
    prefix: str
    kind: str
    observed: Tuple[ASN, ...]
    conflicting: Optional[Tuple[ASN, ...]] = None
    origin: Optional[ASN] = None

    def key(self) -> AlarmKey:
        return (self.prefix, self.kind, self.observed, self.conflicting, self.origin)

    def to_json_line(self) -> str:
        data: Dict[str, Any] = {
            "time": self.time,
            "prefix": self.prefix,
            "kind": self.kind,
            "observed": list(self.observed),
        }
        if self.conflicting is not None:
            data["conflicting"] = list(self.conflicting)
        if self.origin is not None:
            data["origin"] = self.origin
        return json.dumps(data, sort_keys=True, separators=(",", ":"))


class StreamEngine:
    """Per-update MOAS detection over an unbounded feed."""

    # Metric counters/gauges are observability wiring, re-resolved from the
    # registry on construction — not detector state to checkpoint.  The
    # dirty sets are since-last-checkpoint bookkeeping for delta encoding:
    # a restored engine starts clean by definition (the chain on disk
    # already covers everything up to the restore point), so they are
    # deliberately not part of the snapshot.
    _SNAPSHOT_WAIVED = frozenset(
        {
            "_m_updates",
            "_m_announces",
            "_m_withdrawals",
            "_m_ticks",
            "_m_alarms",
            "_m_duplicates",
            "_m_evictions",
            "_g_prefixes",
            "_g_moas",
            "_dirty_origins",
            "_dirty_observed",
            "_dirty_activity",
            "_dirty_alarms",
            "_dirty_days",
        }
    )

    def __init__(
        self,
        window: float = DEFAULT_EVIDENCE_WINDOW,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        if window <= 0:
            raise ValueError(f"eviction window must be positive, got {window}")
        self.window = window
        # Live state: which origins currently announce each prefix, and the
        # MOAS list each one last attached.
        self._origins: Dict[Prefix, Dict[ASN, MoasList]] = {}
        # Conflict evidence: every distinct list observed for a prefix since
        # its evidence was last evicted (mirrors MoasChecker._observed).
        self._observed: Dict[Prefix, Set[MoasList]] = {}
        self._last_activity: Dict[Prefix, float] = {}
        # Alarm dedup/aggregation: evidence key -> occurrence count.
        self._alarm_counts: Dict[AlarmKey, int] = {}
        # Keys dirtied since the last checkpoint boundary (delta encoding).
        # Tracked per component: a refresh re-announcement touches only the
        # activity stamp, so the (unchanged) origin map and evidence set of
        # that prefix must not be re-serialised at the next boundary.
        self._dirty_origins: Set[Prefix] = set()
        self._dirty_observed: Set[Prefix] = set()
        self._dirty_activity: Set[Prefix] = set()
        self._dirty_alarms: Set[AlarmKey] = set()
        self._dirty_days: Set[int] = set()
        # Prefixes currently in a MOAS state, maintained on 1<->2 origin
        # transitions so a tick is O(1) for the count itself.
        self._moas_active = 0
        self.daily_counts: Dict[int, int] = {}
        self.offset = 0
        self.alarms_emitted = 0
        self.alarm_duplicates = 0
        self.evictions = 0
        self._m_updates: Optional[Counter] = None
        self._m_announces: Optional[Counter] = None
        self._m_withdrawals: Optional[Counter] = None
        self._m_ticks: Optional[Counter] = None
        self._m_alarms: Optional[Counter] = None
        self._m_duplicates: Optional[Counter] = None
        self._m_evictions: Optional[Counter] = None
        self._g_prefixes: Optional[Gauge] = None
        self._g_moas: Optional[Gauge] = None
        if metrics is not None:
            self._m_updates = metrics.counter("stream.updates")
            self._m_announces = metrics.counter("stream.announces")
            self._m_withdrawals = metrics.counter("stream.withdrawals")
            self._m_ticks = metrics.counter("stream.ticks")
            self._m_alarms = metrics.counter("stream.alarms")
            self._m_duplicates = metrics.counter("stream.alarm_duplicates")
            self._m_evictions = metrics.counter("stream.evictions")
            self._g_prefixes = metrics.gauge("stream.state_prefixes")
            self._g_moas = metrics.gauge("stream.moas_active")

    # -- introspection -------------------------------------------------------

    @property
    def moas_active(self) -> int:
        """Prefixes currently announced by more than one origin."""
        return self._moas_active

    @property
    def state_prefixes(self) -> int:
        """Prefixes the engine holds any state for (live or evidence)."""
        return len(self._origins.keys() | self._observed.keys())

    def live_origins(self, prefix: Prefix) -> Tuple[ASN, ...]:
        return tuple(sorted(self._origins.get(prefix, {})))

    def alarm_totals(self) -> Dict[str, int]:
        """Aggregate occurrence counts per alarm kind (dedup included)."""
        totals: Dict[str, int] = {}
        for key, count in self._alarm_counts.items():
            totals[key[1]] = totals.get(key[1], 0) + count
        return dict(sorted(totals.items()))

    def daily_series(self) -> List[int]:
        """MOAS counts ordered by day — Figure 4 from the stream path."""
        return [self.daily_counts[day] for day in sorted(self.daily_counts)]

    # -- the per-update hot path ---------------------------------------------

    def apply(self, record: FeedRecord) -> List[StreamAlarm]:
        """Apply one feed record; returns newly emitted (first-seen) alarms."""
        self.offset += 1
        if self._m_updates is not None:
            self._m_updates.inc()
        if record.op == OP_ANNOUNCE:
            return self._apply_announce(record)
        if record.op == OP_WITHDRAW:
            self._apply_withdraw(record)
            return []
        self._apply_tick(record)
        return []

    def _apply_announce(self, record: FeedRecord) -> List[StreamAlarm]:
        if self._m_announces is not None:
            self._m_announces.inc()
        prefix, origin = record.prefix, record.origin
        assert prefix is not None and origin is not None  # FeedRecord invariant
        self._last_activity[prefix] = record.time
        self._dirty_activity.add(prefix)
        moas_list = MoasList(record.effective_moas())
        alarms: List[StreamAlarm] = []

        # Step 2 (checker): an announcement whose own origin is missing from
        # the list it carries is malformed by construction.  Alarm-only
        # semantics: the route still becomes live state, but — like the
        # checker's early return — contributes no step-3 evidence.
        if not moas_list.authorises(origin):
            self._record_alarm(
                StreamAlarm(
                    time=record.time,
                    prefix=str(prefix),
                    kind=AlarmKind.ORIGIN_NOT_IN_OWN_LIST.value,
                    observed=tuple(moas_list),
                    origin=origin,
                ),
                alarms,
            )
            self._install(prefix, origin, moas_list)
            return alarms

        # Step 3 (checker): the shared repro.core.detection predicates — the
        # batch checker applies the identical rule and evidence selection,
        # which is what keeps stream == batch bit-identical.
        seen = self._observed.setdefault(prefix, set())
        conflict, is_new_list = evaluate_list_conflict(seen, moas_list)
        if is_new_list:
            self._dirty_observed.add(prefix)
        if conflict and is_new_list:
            conflicting = select_conflicting(seen, moas_list)
            self._record_alarm(
                StreamAlarm(
                    time=record.time,
                    prefix=str(prefix),
                    kind=AlarmKind.INCONSISTENT_LISTS.value,
                    observed=tuple(moas_list),
                    conflicting=tuple(conflicting),
                    origin=origin,
                ),
                alarms,
            )
        self._install(prefix, origin, moas_list)
        return alarms

    def _install(self, prefix: Prefix, origin: ASN, moas_list: MoasList) -> None:
        live = self._origins.setdefault(prefix, {})
        if live.get(origin) == moas_list:
            return  # a refresh of the identical route changes nothing
        was_moas = len(live) > 1
        live[origin] = moas_list
        self._dirty_origins.add(prefix)
        if len(live) > 1 and not was_moas:
            self._moas_active += 1

    def _apply_withdraw(self, record: FeedRecord) -> None:
        if self._m_withdrawals is not None:
            self._m_withdrawals.inc()
        prefix, origin = record.prefix, record.origin
        assert prefix is not None and origin is not None  # FeedRecord invariant
        self._last_activity[prefix] = record.time
        self._dirty_activity.add(prefix)
        live = self._origins.get(prefix)
        if live is None or origin not in live:
            return  # withdrawing an unknown route is a no-op, as in BGP
        was_moas = len(live) > 1
        del live[origin]
        self._dirty_origins.add(prefix)
        if was_moas and len(live) <= 1:
            self._moas_active -= 1
        if not live:
            del self._origins[prefix]

    def _apply_tick(self, record: FeedRecord) -> None:
        if self._m_ticks is not None:
            self._m_ticks.inc()
        day = int(record.time)
        if day in self.daily_counts:
            raise ValueError(f"day {day} was already ticked")
        self.daily_counts[day] = self._moas_active
        self._dirty_days.add(day)
        self._evict(record.time)
        if self._g_prefixes is not None:
            self._g_prefixes.set(self.state_prefixes)
        if self._g_moas is not None:
            self._g_moas.set(self._moas_active)

    def _evict(self, now: float) -> None:
        """Drop evidence and dedup state for long-dead prefixes.

        A prefix is evictable once it has no live origin and has been quiet
        for at least ``window``; its conflict evidence, activity stamp and
        alarm-dedup entries all go, bounding state by the live table plus
        one window of churn.  Runs once per tick, iterating in prefix order
        so eviction is deterministic.
        """
        horizon = now - self.window
        stale = sorted(
            (
                prefix
                for prefix, last in self._last_activity.items()
                if last <= horizon and prefix not in self._origins
            ),
            key=lambda p: p.sort_key,
        )
        if not stale:
            return
        stale_names = {str(prefix) for prefix in stale}
        # Eviction drops evidence and activity; the live-origin component
        # was already deleted (and dirtied) by the withdrawal that killed
        # the prefix.
        self._dirty_observed.update(stale)
        self._dirty_activity.update(stale)
        for prefix in stale:
            self._observed.pop(prefix, None)
            del self._last_activity[prefix]
        for key in [k for k in self._alarm_counts if k[0] in stale_names]:
            del self._alarm_counts[key]
            self._dirty_alarms.add(key)
        self.evictions += len(stale)
        if self._m_evictions is not None:
            self._m_evictions.inc(len(stale))

    def _record_alarm(self, alarm: StreamAlarm, out: List[StreamAlarm]) -> None:
        key = alarm.key()
        count = self._alarm_counts.get(key, 0)
        self._alarm_counts[key] = count + 1
        self._dirty_alarms.add(key)
        if count == 0:
            self.alarms_emitted += 1
            if self._m_alarms is not None:
                self._m_alarms.inc()
            out.append(alarm)
        else:
            self.alarm_duplicates += 1
            if self._m_duplicates is not None:
                self._m_duplicates.inc()

    # -- checkpointable state ------------------------------------------------

    def snapshot_state(self) -> Dict[str, Any]:
        """Canonical JSON-safe engine state (sorted lists of pairs)."""
        origins = [
            [
                str(prefix),
                [
                    [origin, sorted(live[origin].origins)]
                    for origin in sorted(live)
                ],
            ]
            for prefix, live in sorted(
                self._origins.items(), key=lambda item: item[0].sort_key
            )
        ]
        observed = [
            [str(prefix), sorted(sorted(m.origins) for m in lists)]
            for prefix, lists in sorted(
                self._observed.items(), key=lambda item: item[0].sort_key
            )
        ]
        activity = [
            [str(prefix), last]
            for prefix, last in sorted(
                self._last_activity.items(), key=lambda item: item[0].sort_key
            )
        ]
        alarm_counts = [
            [
                key[0],
                key[1],
                list(key[2]),
                None if key[3] is None else list(key[3]),
                key[4],
                count,
            ]
            for key, count in sorted(
                self._alarm_counts.items(),
                key=lambda item: (
                    item[0][0],
                    item[0][1],
                    item[0][2],
                    item[0][3] or (),
                    item[0][4] or -1,
                ),
            )
        ]
        return {
            "window": self.window,
            "offset": self.offset,
            "moas_active": self._moas_active,
            "alarms_emitted": self.alarms_emitted,
            "alarm_duplicates": self.alarm_duplicates,
            "evictions": self.evictions,
            "daily_counts": [[day, self.daily_counts[day]] for day in sorted(self.daily_counts)],
            "origins": origins,
            "observed": observed,
            "last_activity": activity,
            "alarm_counts": alarm_counts,
        }

    def delta_state(self) -> Dict[str, Any]:
        """Canonical delta: only keys dirtied since :meth:`mark_clean`.

        Entries use set-to-value semantics — each dirty key carries its
        complete current value, ``None`` meaning deleted — so
        :func:`repro.stream.delta.apply_engine_delta` folds them into a
        prior :meth:`snapshot_state` document to reproduce this engine's
        state exactly.  The three per-prefix components are tracked (and
        emitted) independently: a refresh-mode workload re-announces the
        whole live table daily, dirtying every activity stamp, but the
        origin maps and evidence sets it leaves untouched stay out of the
        payload — that asymmetry is what keeps incremental checkpoints
        cheap at exactly the workload where full snapshots are dearest.
        Scalar counters are always included (they are a handful of ints).
        Does not clear the dirty sets; pair with :meth:`mark_clean` once
        the payload is handed to the writer.
        """
        origins = []
        for prefix in sorted(self._dirty_origins, key=lambda p: p.sort_key):
            live = self._origins.get(prefix)
            origins.append(
                [
                    str(prefix),
                    None
                    if live is None
                    else [
                        [origin, sorted(live[origin].origins)]
                        for origin in sorted(live)
                    ],
                ]
            )
        observed = []
        for prefix in sorted(self._dirty_observed, key=lambda p: p.sort_key):
            lists = self._observed.get(prefix)
            observed.append(
                [
                    str(prefix),
                    None if lists is None else sorted(
                        sorted(m.origins) for m in lists
                    ),
                ]
            )
        activity = [
            [str(prefix), self._last_activity.get(prefix)]
            for prefix in sorted(self._dirty_activity, key=lambda p: p.sort_key)
        ]
        alarms = [
            [
                key[0],
                key[1],
                list(key[2]),
                None if key[3] is None else list(key[3]),
                key[4],
                self._alarm_counts.get(key),
            ]
            for key in sorted(
                self._dirty_alarms,
                key=lambda k: (k[0], k[1], k[2], k[3] or (), k[4] or -1),
            )
        ]
        return {
            "window": self.window,
            "offset": self.offset,
            "moas_active": self._moas_active,
            "alarms_emitted": self.alarms_emitted,
            "alarm_duplicates": self.alarm_duplicates,
            "evictions": self.evictions,
            "days": [
                [day, self.daily_counts[day]] for day in sorted(self._dirty_days)
            ],
            "origins": origins,
            "observed": observed,
            "activity": activity,
            "alarms": alarms,
        }

    def mark_clean(self) -> None:
        """Forget dirty tracking — the caller has captured a boundary."""
        self._dirty_origins.clear()
        self._dirty_observed.clear()
        self._dirty_activity.clear()
        self._dirty_alarms.clear()
        self._dirty_days.clear()

    def restore_state(self, state: Dict[str, Any]) -> None:
        """Rebuild engine state from a :meth:`snapshot_state` structure."""
        self.window = float(state["window"])
        self.offset = int(state["offset"])
        self._moas_active = int(state["moas_active"])
        self.alarms_emitted = int(state["alarms_emitted"])
        self.alarm_duplicates = int(state["alarm_duplicates"])
        self.evictions = int(state["evictions"])
        self.daily_counts = {int(day): int(count) for day, count in state["daily_counts"]}
        self._origins = {
            Prefix.parse(prefix): {
                int(origin): MoasList(members) for origin, members in live
            }
            for prefix, live in state["origins"]
        }
        self._observed = {
            Prefix.parse(prefix): {MoasList(members) for members in lists}
            for prefix, lists in state["observed"]
        }
        self._last_activity = {
            Prefix.parse(prefix): float(last)
            for prefix, last in state["last_activity"]
        }
        # A restored engine is clean: the chain on disk already covers
        # everything up to this state.
        self._dirty_origins = set()
        self._dirty_observed = set()
        self._dirty_activity = set()
        self._dirty_alarms = set()
        self._dirty_days = set()
        self._alarm_counts = {}
        for raw in state["alarm_counts"]:
            prefix_str, kind, observed, conflicting, origin, count = raw
            key: AlarmKey = (
                str(prefix_str),
                str(kind),
                tuple(int(a) for a in observed),
                None if conflicting is None else tuple(int(a) for a in conflicting),
                None if origin is None else int(origin),
            )
            self._alarm_counts[key] = int(count)
