"""Sharded online detection — N vantage-point feeds fanned into S engines.

A single :class:`~repro.stream.engine.StreamEngine` tops out around one
core's worth of per-update work.  :class:`FeedRouter` scales the service
across processes by partitioning the prefix space: each **shard** is a
forked worker owning one engine, and the parent routes every announce /
withdraw line to ``crc32(prefix) % shards`` without parsing it (a raw-byte
substring scan — the canonical feed serialisation makes ``"p":"…"`` the
only place a prefix appears).  Because the dedup key of every alarm starts
with its prefix, shards never produce duplicate alarms across the fleet,
and the MOAS-active count for a day is simply the sum of the shard counts.

**Day-boundary synchronisation.**  Each feed carries one tick per day.  The
router reads every feed up to its day-``D`` tick, flushes the routed lines,
then broadcasts exactly one ``tick(D)`` barrier to every shard — satisfying
the engine's one-tick-per-day invariant and giving eviction the same global
day clock a single engine would see.  The barrier reply carries each
shard's alarm lines since the previous barrier; the parent concatenates
them in shard-index order, so the merged log's line order is a pure
function of the feed contents — ``(day, shard, emission order)`` — no
matter where checkpoints or interruptions fall.

**One durability domain.**  The parent owns the only checkpoint chain and
the only alarm log.  At a checkpoint boundary (the first day barrier after
``checkpoint_every`` routed records) every shard also returns its engine
payload — a full :meth:`~StreamEngine.snapshot_state` or a
:meth:`~StreamEngine.delta_state` — and the parent writes one composite
chain record (``shard_count``, per-shard states, per-feed byte offsets,
the completed day) through the same
:class:`~repro.stream.checkpoint.ChainWriter` the single-engine service
uses, after fsyncing the alarm lines it accounts.  Kill-and-resume is
therefore exactly the single-engine story: load the chain, refuse on a
shard-count mismatch, restore each shard, ``os.truncate`` the alarm log to
the recorded byte, seek each feed, continue — and the concatenated logs
are bit-identical to an uninterrupted sharded run.

A graceful stop (SIGTERM) finishes the in-flight day first, so every
checkpoint sits on a day boundary and the merged-log ordering above holds
across interruptions.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import signal
import zlib
from pathlib import Path
from types import FrameType
from typing import (
    IO,
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Union,
)

from repro.fsio import fsync_parent_dir
from repro.obs.manifest import ManifestRecord
from repro.obs.metrics import MetricsRegistry
from repro.stream.checkpoint import (
    DEFAULT_FULL_EVERY,
    ChainWriter,
    Checkpoint,
    CheckpointError,
    FaultHook,
    load_chain,
    reap_stale_tmp,
)
from repro.stream.engine import StreamEngine
from repro.stream.feed import OP_TICK, FeedError, FeedRecord, parse_feed_line
from repro.stream.service import (
    StreamSummary,
    _real_clock,
    _real_sleep,
    fault_hook_from_env,
)

if TYPE_CHECKING:  # runtime import is lazy: stream never *needs* query
    from repro.query.builder import IndexBuilder

#: Raw-byte markers in the canonical feed serialisation (sorted keys,
#: compact separators — see FeedRecord.to_json_line).
_PREFIX_MARK = b'"p":"'
_TICK_MARK = b'"op":"T"'
_HEADER_MARK = b'"format"'


class RouterError(ValueError):
    """Raised for feed/shard misconfiguration the router refuses to run."""


def shard_for_prefix(prefix_bytes: bytes, shards: int) -> int:
    """Stable prefix -> shard assignment (crc32, never the salted builtin
    ``hash``) — must agree across runs for resume to hold."""
    return zlib.crc32(prefix_bytes) % shards


def route_line(line: bytes, shards: int) -> Optional[int]:
    """Classify one raw feed line: a shard index for announce/withdraw,
    ``None`` for ticks and headers (handled by the parent)."""
    start = line.find(_PREFIX_MARK)
    if start < 0:
        return None
    start += len(_PREFIX_MARK)
    end = line.index(b'"', start)
    return shard_for_prefix(line[start:end], shards)


def merged_daily_counts(shard_states: Sequence[Dict[str, Any]]) -> Dict[int, int]:
    """Global per-day MOAS counts: the sum of the shard counts."""
    totals: Dict[int, int] = {}
    for state in shard_states:
        for day, count in state["daily_counts"]:
            totals[int(day)] = totals.get(int(day), 0) + int(count)
    return dict(sorted(totals.items()))


# -- the shard worker --------------------------------------------------------


def _shard_worker(conn: Any, window: float, index_enabled: bool = False) -> None:
    """One shard: an engine fed raw lines, answering barrier requests.

    Runs in a forked child.  The parent dying (even via ``SIGKILL`` /
    ``os._exit`` crash injection) closes the pipe, which surfaces here as
    ``EOFError``/``OSError`` — the worker exits, so crashes never strand
    shard processes.

    With ``index_enabled`` the shard also runs a
    :class:`~repro.query.track.OriginTracker` beside the engine and ships
    the index events it produced back with each barrier reply (the third
    tuple element) — the parent's :class:`~repro.query.builder.IndexBuilder`
    adopts them in shard-index order.  A shard's per-prefix event order is
    the parent's read order for that prefix, which is why a byte-range
    replay reproduces the live-built index exactly.
    """
    engine = StreamEngine(window=window)
    tracker = None
    if index_enabled:
        from repro.query.track import OriginTracker

        tracker = OriginTracker()
    pending: List[str] = []
    events: List[List[Any]] = []
    try:
        while True:
            message = conn.recv()
            tag = message[0]
            if tag == "lines":
                for raw in message[1]:
                    record = parse_feed_line(raw.decode("utf-8"))
                    if record is not None:
                        for alarm in engine.apply(record):
                            pending.append(alarm.to_json_line())
                        if tracker is not None:
                            event = tracker.apply(record)
                            if event is not None:
                                events.append(event)
            elif tag == "barrier":
                day, kind = message[1], message[2]
                if day is not None:
                    engine.apply(FeedRecord(op=OP_TICK, time=day))
                    if tracker is not None:
                        event = tracker.apply(
                            FeedRecord(op=OP_TICK, time=day)
                        )
                        if event is not None:
                            events.append(event)
                payload: Optional[Dict[str, Any]] = None
                if kind == "full":
                    payload = engine.snapshot_state()
                elif kind == "delta":
                    payload = engine.delta_state()
                if kind is not None:
                    engine.mark_clean()
                lines, pending = pending, []
                shipped, events = events, []
                conn.send((lines, payload, shipped))
            elif tag == "restore":
                engine.restore_state(message[1])
                if tracker is not None:
                    from repro.query.track import OriginTracker

                    tracker = OriginTracker.from_live(
                        {
                            prefix: [origin for origin, _ in pairs]
                            for prefix, pairs in message[1]["origins"]
                        }
                    )
                    events = []
                conn.send(("ok",))
            elif tag == "stop":
                return
    except (EOFError, OSError):
        return
    finally:
        conn.close()


class _Shard:
    """Parent-side handle: the worker process, its pipe, a line buffer."""

    def __init__(self, index: int, process: Any, conn: Any) -> None:
        self.index = index
        self.process = process
        self.conn = conn
        self.buffer: List[bytes] = []


class _RoutedFeed:
    """One vantage-point feed: raw binary reader with exact byte offsets."""

    def __init__(self, index: int, path: Union[str, Path]) -> None:
        self.index = index
        self.path = Path(path)
        self.handle: IO[bytes] = self.path.open("rb")
        self.byte_offset = 0
        self.pending_tick: Optional[float] = None
        self.done = False

    def seek(self, byte_offset: int) -> None:
        self.handle.seek(byte_offset)
        self.byte_offset = byte_offset

    def close(self) -> None:
        if not self.handle.closed:
            self.handle.close()


def _tick_day(line: bytes, path: Path) -> float:
    try:
        return float(json.loads(line.decode("utf-8"))["t"])
    except (UnicodeDecodeError, ValueError, KeyError, TypeError) as exc:
        raise FeedError(f"{path}: malformed tick line {line!r}: {exc}") from exc


class FeedRouter:
    """Fan N feeds into S shard processes under one durability domain."""

    def __init__(
        self,
        feeds: Sequence[Union[str, Path]],
        alarms: Union[str, Path],
        checkpoint: Optional[Union[str, Path]] = None,
        *,
        shards: int = 2,
        window: float = 30.0,
        checkpoint_every: int = 1000,
        full_every: int = DEFAULT_FULL_EVERY,
        throttle: float = 0.0,
        max_records: Optional[int] = None,
        metrics: Optional[MetricsRegistry] = None,
        clock: Optional[Callable[[], float]] = None,
        sleeper: Optional[Callable[[float], None]] = None,
        fault: Optional[FaultHook] = None,
        index: Optional[Union[str, Path]] = None,
    ) -> None:
        if not feeds:
            raise RouterError("the router needs at least one feed")
        if shards < 1:
            raise RouterError(f"shards must be >= 1, got {shards}")
        if checkpoint_every < 1:
            raise RouterError(
                f"checkpoint_every must be >= 1, got {checkpoint_every}"
            )
        self.feed_paths = [Path(feed) for feed in feeds]
        self.alarms_path = Path(alarms)
        self.checkpoint_path = None if checkpoint is None else Path(checkpoint)
        self.shards = shards
        self.window = window
        self.checkpoint_every = checkpoint_every
        self.full_every = full_every
        self.throttle = throttle
        self.max_records = max_records
        self.checkpoints_written = 0
        self.fulls_written = 0
        self.deltas_written = 0
        self._fault: Optional[FaultHook] = (
            fault if fault is not None else fault_hook_from_env()
        )
        self._builder: Optional["IndexBuilder"] = None
        if index is not None:
            from repro.query.builder import IndexBuilder as _IndexBuilder

            self._builder = _IndexBuilder(
                index, metrics=metrics, fault=self._fault
            )
        self._chain: Optional[ChainWriter] = None
        if self.checkpoint_path is not None:
            self._chain = ChainWriter(
                self.checkpoint_path, full_every=full_every, fault=self._fault
            )
        self._boundaries_since_full = 0
        self._chain_started = False
        self._alarm_lines = 0
        self._alarm_bytes = 0
        self._pending: List[str] = []
        self._records_total = 0
        self._stop_requested = False
        self._epoch: Optional[float] = None
        self._checkpoint_seconds = 0.0
        # Quarantined timing/pacing injection points, as in StreamService.
        self._clock = clock if clock is not None else _real_clock
        self._sleeper = sleeper if sleeper is not None else _real_sleep
        self._m_records = None
        self._m_barriers = None
        self._m_checkpoints = None
        if metrics is not None:
            self._m_records = metrics.counter("router.records")
            self._m_barriers = metrics.counter("router.barriers")
            self._m_checkpoints = metrics.counter("router.checkpoints")
            metrics.gauge("router.shards").set(shards)

    # -- control ---------------------------------------------------------------

    def request_stop(self) -> None:
        """Finish the in-flight day, checkpoint at its barrier, then return."""
        self._stop_requested = True

    def install_signal_handlers(self) -> None:
        signal.signal(signal.SIGTERM, self._on_signal)
        signal.signal(signal.SIGINT, self._on_signal)

    def _on_signal(self, signum: int, frame: Optional[FrameType]) -> None:
        self.request_stop()

    # -- shard lifecycle -------------------------------------------------------

    def _spawn_shards(self) -> List[_Shard]:
        try:
            context = multiprocessing.get_context("fork")
        except ValueError as exc:  # pragma: no cover - non-POSIX platforms
            raise RouterError("sharded routing requires fork support") from exc
        shards: List[_Shard] = []
        for index in range(self.shards):
            parent_conn, child_conn = context.Pipe()
            process = context.Process(
                target=_shard_worker,
                args=(child_conn, self.window, self._builder is not None),
                name=f"stream-shard-{index}",
                daemon=True,
            )
            process.start()
            child_conn.close()
            shards.append(_Shard(index, process, parent_conn))
        return shards

    def _stop_shards(self, shards: List[_Shard]) -> None:
        for shard in shards:
            try:
                shard.conn.send(("stop",))
            except (BrokenPipeError, OSError):
                pass
            shard.conn.close()
        for shard in shards:
            shard.process.join(timeout=10)
            if shard.process.is_alive():  # pragma: no cover - hung worker
                shard.process.terminate()
                shard.process.join(timeout=10)

    def _flush_buffers(self, shards: List[_Shard]) -> None:
        for shard in shards:
            if shard.buffer:
                shard.conn.send(("lines", shard.buffer))
                shard.buffer = []

    def _barrier(
        self, shards: List[_Shard], day: Optional[float], kind: Optional[str]
    ) -> List[Optional[Dict[str, Any]]]:
        """Synchronise every shard; gather alarms (always, in shard-index
        order — this is what fixes the merged-log ordering) and, when
        ``kind`` is set, the per-shard checkpoint payloads."""
        self._flush_buffers(shards)
        for shard in shards:
            shard.conn.send(("barrier", day, kind))
        payloads: List[Optional[Dict[str, Any]]] = []
        for shard in shards:
            lines, payload, events = shard.conn.recv()
            self._pending.extend(lines)
            payloads.append(payload)
            if self._builder is not None and events:
                # Shard-index order, like the alarm lines: a prefix lives
                # in exactly one shard, so per-prefix event order is
                # already the parent's read order.
                self._builder.ingest_events(events)
        if self._m_barriers is not None:
            self._m_barriers.inc()
        return payloads

    # -- checkpointing ---------------------------------------------------------

    def _composite_full(
        self, feeds: List[_RoutedFeed], payloads: List[Optional[Dict[str, Any]]]
    ) -> Dict[str, Any]:
        return {
            "shard_count": self.shards,
            "window": self.window,
            "epoch": self._epoch,
            "feed_offsets": [feed.byte_offset for feed in feeds],
            "shards": payloads,
        }

    def _write_checkpoint(
        self,
        feeds: List[_RoutedFeed],
        kind: str,
        payloads: List[Optional[Dict[str, Any]]],
    ) -> None:
        """Flush pending alarm lines durably, then the chain record that
        accounts them — the single transactional ordering both the service
        and the router rely on."""
        pending, self._pending = self._pending, []
        self._alarm_lines += len(pending)
        self._alarm_bytes += sum(len(line.encode("utf-8")) + 1 for line in pending)
        if pending:
            if self._fault is not None:
                self._fault("alarm-pre-append")
            with self.alarms_path.open("a", encoding="utf-8") as handle:
                for line in pending:
                    handle.write(line + "\n")
                handle.flush()
                if self._fault is not None:
                    self._fault("alarm-pre-fsync")
                os.fsync(handle.fileno())
            if self._fault is not None:
                self._fault("alarm-post-fsync")
        assert self._chain is not None
        if kind == "full":
            self._chain.write_full(
                Checkpoint(
                    offset=self._records_total,
                    byte_offset=0,
                    alarm_lines=self._alarm_lines,
                    engine_state=self._composite_full(feeds, payloads),
                    alarm_bytes=self._alarm_bytes,
                )
            )
            self._boundaries_since_full = 0
            self._chain_started = True
            self.fulls_written += 1
        else:
            self._chain.append_delta(
                offset=self._records_total,
                byte_offset=0,
                alarm_lines=self._alarm_lines,
                alarm_bytes=self._alarm_bytes,
                delta={
                    "epoch": self._epoch,
                    "feed_offsets": [feed.byte_offset for feed in feeds],
                    "shards": payloads,
                },
            )
            self._boundaries_since_full += 1
            self.deltas_written += 1
        self.checkpoints_written += 1
        if self._m_checkpoints is not None:
            self._m_checkpoints.inc()
        self._commit_index(feeds, pending)

    def _commit_index(
        self, feeds: List[_RoutedFeed], pending: List[str]
    ) -> None:
        """Publish the index boundary — strictly after the chain write, so
        the manifest never references records the chain hasn't made
        durable."""
        if self._builder is None:
            return
        job = self._builder.prepare_boundary(
            {
                "records": self._records_total,
                "alarm_bytes": self._alarm_bytes,
                "feed_offsets": [feed.byte_offset for feed in feeds],
            },
            pending,
        )
        if job is not None:
            self._builder.commit(job)

    def _next_kind(self) -> str:
        if (
            not self._chain_started
            or self._boundaries_since_full + 1 >= self.full_every
        ):
            return "full"
        return "delta"

    def _truncate_alarm_log(self, checkpoint: Checkpoint) -> None:
        keep = checkpoint.alarm_bytes
        size = self.alarms_path.stat().st_size
        if size < keep:
            raise CheckpointError(
                f"alarm log {self.alarms_path} has {size} bytes but the "
                f"checkpoint recorded {keep} durable"
            )
        with self.alarms_path.open("r+b") as handle:
            if keep > 0:
                handle.seek(keep - 1)
                if handle.read(1) != b"\n":
                    raise CheckpointError(
                        f"alarm log {self.alarms_path} does not end a line "
                        f"at byte {keep}; refusing to truncate"
                    )
            if size > keep:
                handle.truncate(keep)
                handle.flush()
                os.fsync(handle.fileno())
        self._alarm_bytes = keep

    def _resume(
        self, feeds: List[_RoutedFeed], shards: List[_Shard]
    ) -> None:
        if self.checkpoint_path is None:
            raise RouterError("resume requested but no checkpoint path configured")
        chain = load_chain(self.checkpoint_path)
        checkpoint = chain.checkpoint
        state = checkpoint.engine_state
        if "shard_count" not in state:
            raise CheckpointError(
                f"{self.checkpoint_path} is a single-engine checkpoint, not "
                f"a router composite"
            )
        if int(state["shard_count"]) != self.shards:
            raise CheckpointError(
                f"checkpoint was written by {state['shard_count']} shards, "
                f"cannot resume with {self.shards}"
            )
        offsets = state["feed_offsets"]
        if len(offsets) != len(feeds):
            raise CheckpointError(
                f"checkpoint recorded {len(offsets)} feeds, "
                f"got {len(feeds)}"
            )
        for shard, shard_state in zip(shards, state["shards"]):
            shard.conn.send(("restore", shard_state))
        for shard in shards:
            reply = shard.conn.recv()
            if reply != ("ok",):  # pragma: no cover - defensive
                raise RouterError(f"shard {shard.index} failed to restore")
        for feed, offset in zip(feeds, offsets):
            feed.seek(int(offset))
        self._epoch = state["epoch"]
        self._records_total = checkpoint.offset
        self._alarm_lines = checkpoint.alarm_lines
        if self.alarms_path.exists():
            self._truncate_alarm_log(checkpoint)
        else:
            self.alarms_path.write_text("", encoding="utf-8")
            fsync_parent_dir(self.alarms_path)
            self._alarm_bytes = 0
        assert self._chain is not None
        self._chain.resume(chain)
        self._boundaries_since_full = chain.seq
        self._chain_started = True
        if self._builder is not None:
            end = checkpoint.index_coordinates()
            end["alarm_bytes"] = self._alarm_bytes
            self._builder.resume(
                feeds=list(self.feed_paths),
                alarms=self.alarms_path,
                end=end,
            )

    # -- the run loop ----------------------------------------------------------

    def _read_to_tick(self, feed: _RoutedFeed, shards: List[_Shard]) -> int:
        """Consume one feed up to (and including) its next tick line,
        routing announce/withdraw lines into shard buffers.  Returns the
        number of records routed."""
        routed = 0
        while True:
            line = feed.handle.readline()
            if not line or not line.endswith(b"\n"):
                feed.done = True
                return routed
            feed.byte_offset += len(line)
            if _HEADER_MARK in line:
                continue
            if _TICK_MARK in line:
                feed.pending_tick = _tick_day(line, feed.path)
                return routed
            target = route_line(line, self.shards)
            if target is None:
                raise FeedError(
                    f"{feed.path}: unroutable feed line {line[:80]!r}"
                )
            shards[target].buffer.append(line)
            routed += 1

    def run(self, resume: bool = False) -> StreamSummary:
        started = self._clock()
        if self.checkpoint_path is not None:
            reap_stale_tmp(self.checkpoint_path)
        feeds = [
            _RoutedFeed(index, path)
            for index, path in enumerate(self.feed_paths)
        ]
        shards = self._spawn_shards()
        stopped_early = False
        reached_eof = False
        try:
            if resume:
                self._resume(feeds, shards)
            else:
                self.alarms_path.write_text("", encoding="utf-8")
                fsync_parent_dir(self.alarms_path)
                self._alarm_lines = 0
                self._alarm_bytes = 0
                if self._builder is not None:
                    from repro.query.builder import MODE_ROUTER

                    self._builder.start_fresh(
                        MODE_ROUTER, feed_count=len(feeds)
                    )
            applied = 0
            since_checkpoint = 0
            while True:
                if self._stop_requested:
                    stopped_early = True
                    break
                if self.max_records is not None and applied >= self.max_records:
                    stopped_early = True
                    break
                live = [feed for feed in feeds if not feed.done]
                if not live:
                    reached_eof = True
                    break
                for feed in live:
                    if feed.pending_tick is None:
                        routed = self._read_to_tick(feed, shards)
                        applied += routed
                        since_checkpoint += routed
                        self._records_total += routed
                        if self._m_records is not None:
                            self._m_records.inc(routed)
                # A feed that hit EOF mid-day contributes its lines but no
                # tick; the day closes on the feeds that did tick.
                ticking = [
                    feed for feed in feeds
                    if not feed.done and feed.pending_tick is not None
                ]
                if not ticking:
                    continue  # some feeds went EOF; loop re-evaluates
                days = sorted({feed.pending_tick for feed in ticking})
                if len(days) != 1:
                    raise RouterError(
                        f"vantage feeds disagree on the current day: {days}"
                    )
                day = days[0]
                self._records_total += 1  # the day's tick, applied fleet-wide
                applied += 1
                since_checkpoint += 1
                kind: Optional[str] = None
                if self._chain is not None and (
                    since_checkpoint >= self.checkpoint_every
                ):
                    kind = self._next_kind()
                payloads = self._barrier(shards, day, kind)
                self._epoch = day
                for feed in ticking:
                    feed.pending_tick = None
                if kind is not None:
                    began = self._clock()
                    self._write_checkpoint(feeds, kind, payloads)
                    self._checkpoint_seconds += self._clock() - began
                    since_checkpoint = 0
                if self.throttle > 0.0:
                    self._sleeper(self.throttle)
            # Final barrier: collect remaining alarms and a full composite
            # state, then make both durable (when a chain is configured).
            final = self._barrier(shards, None, "full")
            states = [payload for payload in final if payload is not None]
            if self._chain is not None:
                began = self._clock()
                self._write_checkpoint(feeds, "full", final)
                self._checkpoint_seconds += self._clock() - began
            elif self._pending or self._builder is not None:
                pending, self._pending = self._pending, []
                self._alarm_lines += len(pending)
                self._alarm_bytes += sum(
                    len(line.encode("utf-8")) + 1 for line in pending
                )
                if pending:
                    with self.alarms_path.open("a", encoding="utf-8") as handle:
                        for line in pending:
                            handle.write(line + "\n")
                        handle.flush()
                        os.fsync(handle.fileno())
                self._commit_index(feeds, pending)
            wall = self._clock() - started
            daily = merged_daily_counts(states)
            totals: Dict[str, int] = {}
            for state in states:
                for row in state["alarm_counts"]:
                    kind_name = str(row[1])
                    totals[kind_name] = totals.get(kind_name, 0) + int(row[5])
            return StreamSummary(
                records=applied,
                offset=self._records_total,
                alarms_emitted=sum(s["alarms_emitted"] for s in states),
                alarm_duplicates=sum(s["alarm_duplicates"] for s in states),
                alarm_lines=self._alarm_lines,
                checkpoints=self.checkpoints_written,
                checkpoint_fulls=self.fulls_written,
                checkpoint_deltas=self.deltas_written,
                moas_active=sum(s["moas_active"] for s in states),
                state_prefixes=sum(
                    len(
                        {name for name, _ in s["origins"]}
                        | {name for name, _ in s["observed"]}
                    )
                    for s in states
                ),
                days_ticked=len(daily),
                stopped=stopped_early,
                eof=reached_eof,
                wall_seconds=wall,
                events_per_sec=applied / wall if wall > 0 else 0.0,
                checkpoint_seconds=self._checkpoint_seconds,
                shards=self.shards,
                alarm_totals=dict(sorted(totals.items())),
                daily_series=list(daily.values()),
            )
        finally:
            self._stop_shards(shards)
            for feed in feeds:
                feed.close()

    # -- attribution -----------------------------------------------------------

    def manifest_record(
        self,
        summary: StreamSummary,
        spec: Optional[Dict[str, Any]] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> ManifestRecord:
        base_spec: Dict[str, Any] = {
            "kind": "stream-router",
            "feeds": [str(path) for path in self.feed_paths],
            "shards": self.shards,
            "window": self.window,
            "checkpoint_every": self.checkpoint_every,
            "full_every": self.full_every,
        }
        if spec is not None:
            base_spec.update(spec)
        return ManifestRecord(
            index=0,
            seed=0,
            spec=base_spec,
            outcome=summary.to_dict(),
            metrics={} if metrics is None else dict(metrics.snapshot()),
            worker="stream-router",
            wall_seconds=summary.wall_seconds,
        )
