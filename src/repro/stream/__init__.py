"""repro.stream — online MOAS detection over live BGP update feeds.

The batch pipeline answers "what happened in this archive"; this package
answers "what is happening right now".  It consists of:

* :mod:`repro.stream.feed` — the line-delimited update-feed format plus its
  two producers (daily-snapshot diffing, live simulator tap);
* :mod:`repro.stream.engine` — the incremental detector (checker conflict
  rules per update, bounded-window eviction, alarm dedup/aggregation);
* :mod:`repro.stream.checkpoint` — versioned, atomic state snapshots;
* :mod:`repro.stream.service` — the tailing loop with transactional alarm
  flushing, kill-and-resume bit-identity, metrics and manifests.

See ``docs/streaming.md`` for the feed format, checkpoint layout, and
resume semantics.
"""

from repro.stream.checkpoint import (
    CHECKPOINT_FORMAT,
    CHECKPOINT_VERSION,
    Checkpoint,
    CheckpointError,
    load_checkpoint,
    save_checkpoint,
)
from repro.stream.engine import StreamAlarm, StreamEngine
from repro.stream.feed import (
    FEED_FORMAT,
    FEED_VERSION,
    FeedError,
    FeedRecord,
    FeedWriter,
    SimulatorTap,
    feed_header_line,
    parse_feed_line,
    read_feed,
    snapshot_deltas,
)
from repro.stream.service import FeedTailer, StreamService, StreamSummary

__all__ = [
    "CHECKPOINT_FORMAT",
    "CHECKPOINT_VERSION",
    "Checkpoint",
    "CheckpointError",
    "FEED_FORMAT",
    "FEED_VERSION",
    "FeedError",
    "FeedRecord",
    "FeedTailer",
    "FeedWriter",
    "SimulatorTap",
    "StreamAlarm",
    "StreamEngine",
    "StreamService",
    "StreamSummary",
    "feed_header_line",
    "load_checkpoint",
    "parse_feed_line",
    "read_feed",
    "save_checkpoint",
    "snapshot_deltas",
]
