"""repro.stream — online MOAS detection over live BGP update feeds.

The batch pipeline answers "what happened in this archive"; this package
answers "what is happening right now".  It consists of:

* :mod:`repro.stream.feed` — the line-delimited update-feed format plus its
  two producers (daily-snapshot diffing, live simulator tap);
* :mod:`repro.stream.engine` — the incremental detector (checker conflict
  rules per update, bounded-window eviction, alarm dedup/aggregation);
* :mod:`repro.stream.delta` — the delta-encoding state algebra for
  incremental checkpoints;
* :mod:`repro.stream.checkpoint` — versioned checkpoint chains: atomic
  full snapshots plus fsynced delta appends with periodic compaction;
* :mod:`repro.stream.service` — the tailing loop with transactional alarm
  flushing, async double-buffered checkpointing, kill-and-resume
  bit-identity, metrics and manifests;
* :mod:`repro.stream.router` — N vantage-point feeds sharded by prefix
  across worker processes, merged into one durability domain.

See ``docs/streaming.md`` for the feed format, checkpoint-chain layout,
sharding, and resume semantics.
"""

from repro.stream.checkpoint import (
    CHECKPOINT_FORMAT,
    CHECKPOINT_VERSION,
    ChainWriter,
    Checkpoint,
    CheckpointError,
    load_chain,
    load_checkpoint,
    reap_stale_tmp,
    save_checkpoint,
)
from repro.stream.delta import apply_engine_delta, apply_state_delta
from repro.stream.engine import StreamAlarm, StreamEngine
from repro.stream.feed import (
    FEED_FORMAT,
    FEED_VERSION,
    FeedError,
    FeedRecord,
    FeedWriter,
    SimulatorTap,
    feed_header_line,
    parse_feed_line,
    read_feed,
    snapshot_deltas,
)
from repro.stream.router import FeedRouter, RouterError, merged_daily_counts
from repro.stream.service import FeedTailer, StreamService, StreamSummary

__all__ = [
    "CHECKPOINT_FORMAT",
    "CHECKPOINT_VERSION",
    "ChainWriter",
    "Checkpoint",
    "CheckpointError",
    "FEED_FORMAT",
    "FEED_VERSION",
    "FeedError",
    "FeedRecord",
    "FeedRouter",
    "FeedTailer",
    "FeedWriter",
    "RouterError",
    "SimulatorTap",
    "StreamAlarm",
    "StreamEngine",
    "StreamService",
    "StreamSummary",
    "apply_engine_delta",
    "apply_state_delta",
    "feed_header_line",
    "load_chain",
    "load_checkpoint",
    "merged_daily_counts",
    "parse_feed_line",
    "read_feed",
    "reap_stale_tmp",
    "save_checkpoint",
    "snapshot_deltas",
]
