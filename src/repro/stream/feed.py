"""The line-delimited BGP update-feed format and its producers.

A *feed* is the streaming counterpart of the daily routing-table snapshots
the §3 study consumes: an unbounded sequence of per-origin announce /
withdraw events plus periodic *tick* records marking measurement-period
boundaries (one tick per day for trace-derived feeds).  The format is one
JSON object per line — tail-able, FIFO-friendly, and diffable — with a
single header line identifying the format version:

.. code-block:: text

    {"format": "repro-stream-feed", "version": 1}
    {"op": "A", "p": "10.0.0.0/24", "t": 0, "o": 701, "m": [701, 702]}
    {"op": "W", "p": "10.0.0.0/24", "t": 3, "o": 702}
    {"op": "T", "t": 3}

Field semantics (compact keys keep multi-million-record feeds small):

* ``op`` — ``A`` announce, ``W`` withdraw, ``T`` tick (period boundary);
* ``t``  — event time: the day index for trace feeds, simulator virtual
  time for live taps;
* ``p``  — the prefix (announce/withdraw only);
* ``o``  — the origin AS the event is about;
* ``m``  — the MOAS list carried by an announcement, as a sorted AS list
  (the §4.1 community encoding, decoded); absent means the footnote-3
  implicit singleton ``{origin}``;
* ``r``  — optional vantage/peer AS (live taps record it; trace diffs
  have no vantage).

Two producers are provided:

* :func:`snapshot_deltas` — diffs consecutive daily snapshots from
  :mod:`repro.measurement.trace` into an update stream (optionally in
  ``refresh`` mode, re-announcing the full table every day the way a
  daily RIB dump replay would);
* :class:`SimulatorTap` — hooks a running :class:`~repro.bgp.speaker.
  BGPSpeaker`'s import/withdrawal extension points and serialises its
  live UPDATE traffic as feed records.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import (
    Any,
    Callable,
    Dict,
    FrozenSet,
    IO,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Tuple,
    Union,
)

from repro.bgp.attributes import PathAttributes
from repro.bgp.speaker import BGPSpeaker
from repro.core.moas_list import extract_moas_list
from repro.net.addresses import Prefix
from repro.net.asn import ASN, validate_asn

#: The feed header, written as the first line of every produced feed.
FEED_FORMAT = "repro-stream-feed"
FEED_VERSION = 1

OP_ANNOUNCE = "A"
OP_WITHDRAW = "W"
OP_TICK = "T"

#: A day's view, as produced by ``TraceGenerator.snapshots()``.
Snapshot = Mapping[Prefix, FrozenSet[ASN]]


class FeedError(ValueError):
    """Raised for malformed feed lines or headers."""


@dataclass(frozen=True)
class FeedRecord:
    """One update-feed event (announce, withdraw, or period tick)."""

    op: str
    time: float
    prefix: Optional[Prefix] = None
    origin: Optional[ASN] = None
    moas: Optional[Tuple[ASN, ...]] = None
    peer: Optional[ASN] = None

    def __post_init__(self) -> None:
        if self.op not in (OP_ANNOUNCE, OP_WITHDRAW, OP_TICK):
            raise FeedError(f"unknown feed op {self.op!r}")
        if self.op == OP_TICK:
            if self.prefix is not None or self.origin is not None:
                raise FeedError("tick records carry no prefix or origin")
            return
        if self.prefix is None:
            raise FeedError(f"{self.op!r} record needs a prefix")
        if self.origin is None:
            raise FeedError(f"{self.op!r} record needs an origin")
        validate_asn(self.origin)
        if self.moas is not None:
            if self.op == OP_WITHDRAW:
                raise FeedError("withdraw records carry no MOAS list")
            if not self.moas:
                raise FeedError("an explicit MOAS list cannot be empty")
            for asn in self.moas:
                validate_asn(asn)
        if self.peer is not None:
            validate_asn(self.peer)

    @property
    def is_tick(self) -> bool:
        return self.op == OP_TICK

    def effective_moas(self) -> Tuple[ASN, ...]:
        """The MOAS list the announcement effectively carries (footnote 3:
        no explicit list means the implicit singleton ``{origin}``)."""
        if self.op != OP_ANNOUNCE:
            raise FeedError(f"{self.op!r} records carry no MOAS list")
        if self.moas is not None:
            return tuple(sorted(set(self.moas)))
        assert self.origin is not None  # enforced in __post_init__
        return (self.origin,)

    def to_json_line(self) -> str:
        """Canonical one-line serialisation (sorted keys, no whitespace)."""
        data: Dict[str, Any] = {"op": self.op, "t": self.time}
        if self.prefix is not None:
            data["p"] = str(self.prefix)
        if self.origin is not None:
            data["o"] = self.origin
        if self.moas is not None:
            data["m"] = sorted(set(self.moas))
        if self.peer is not None:
            data["r"] = self.peer
        return json.dumps(data, sort_keys=True, separators=(",", ":"))


def feed_header_line() -> str:
    return json.dumps(
        {"format": FEED_FORMAT, "version": FEED_VERSION},
        sort_keys=True,
        separators=(",", ":"),
    )


def _require_int(value: Any, what: str) -> int:
    if not isinstance(value, int) or isinstance(value, bool):
        raise FeedError(f"{what} must be an integer, got {value!r}")
    return value


def parse_feed_line(line: str) -> Optional[FeedRecord]:
    """Parse one feed line; returns ``None`` for headers and blank lines."""
    text = line.strip()
    if not text:
        return None
    try:
        data = json.loads(text)
    except json.JSONDecodeError as exc:
        raise FeedError(f"not valid feed JSON: {text[:80]!r}") from exc
    if not isinstance(data, dict):
        raise FeedError(f"feed line must be a JSON object: {text[:80]!r}")
    if "format" in data:
        if data.get("format") != FEED_FORMAT:
            raise FeedError(f"not a {FEED_FORMAT} feed: {data.get('format')!r}")
        version = data.get("version")
        if version != FEED_VERSION:
            raise FeedError(f"unsupported feed version {version!r}")
        return None
    op = data.get("op")
    if not isinstance(op, str):
        raise FeedError(f"feed record missing op: {text[:80]!r}")
    time_value = data.get("t")
    if not isinstance(time_value, (int, float)) or isinstance(time_value, bool):
        raise FeedError(f"feed record missing numeric t: {text[:80]!r}")
    prefix: Optional[Prefix] = None
    if "p" in data:
        raw_prefix = data["p"]
        if not isinstance(raw_prefix, str):
            raise FeedError(f"prefix must be a string, got {raw_prefix!r}")
        prefix = Prefix.parse(raw_prefix)
    origin = _require_int(data["o"], "origin") if "o" in data else None
    moas: Optional[Tuple[ASN, ...]] = None
    if "m" in data:
        raw_moas = data["m"]
        if not isinstance(raw_moas, list):
            raise FeedError(f"MOAS list must be a list, got {raw_moas!r}")
        moas = tuple(_require_int(asn, "MOAS member") for asn in raw_moas)
    peer = _require_int(data["r"], "peer") if "r" in data else None
    return FeedRecord(
        op=op,
        time=float(time_value),
        prefix=prefix,
        origin=origin,
        moas=moas,
        peer=peer,
    )


class FeedWriter:
    """Writes a header plus records to a line-delimited feed file.

    Usable as a context manager.  Lines are flushed per record so a tailing
    service sees them immediately (the FIFO/live-tap case).
    """

    def __init__(self, target: Union[str, Path, IO[str]]) -> None:
        if isinstance(target, (str, Path)):
            self._handle: IO[str] = Path(target).open("w", encoding="utf-8")
            self._owns_handle = True
        else:
            self._handle = target
            self._owns_handle = False
        self.records_written = 0
        self._handle.write(feed_header_line() + "\n")
        self._handle.flush()

    def write(self, record: FeedRecord) -> None:
        self._handle.write(record.to_json_line() + "\n")
        self._handle.flush()
        self.records_written += 1

    def write_all(self, records: Iterable[FeedRecord]) -> int:
        count = 0
        for record in records:
            self.write(record)
            count += 1
        return count

    def close(self) -> None:
        if self._owns_handle and not self._handle.closed:
            self._handle.close()

    def __enter__(self) -> "FeedWriter":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def read_feed(path: Union[str, Path]) -> List[FeedRecord]:
    """Read a complete feed file into memory (small feeds / tests)."""
    records: List[FeedRecord] = []
    with Path(path).open("r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            try:
                record = parse_feed_line(line)
            except FeedError as exc:
                raise FeedError(f"{path}:{lineno}: {exc}") from exc
            if record is not None:
                records.append(record)
    return records


# -- producer 1: snapshot diffing ------------------------------------------


def snapshot_deltas(
    snapshots: Iterable[Tuple[int, Snapshot]],
    refresh: bool = False,
) -> Iterator[FeedRecord]:
    """Diff consecutive daily snapshots into an update stream.

    For each day the producer emits, in deterministic prefix order:

    * for a prefix *born* that day, one announce per origin carrying the
      full origin set as its MOAS list — a coordinated multi-homing
      arrangement where every member attaches the complete list (§4.1);
    * for an origin *added* to an already-live prefix, one announce with
      **no** MOAS list — a unilateral arrival that did not coordinate with
      the incumbents, so footnote 3's implicit ``{origin}`` applies.  This
      is exactly what a fault or hijack looks like in an update stream, and
      it is what lets the online detector raise inconsistent-list alarms on
      the trace's fault spikes (the incumbents' coordinated list is already
      on file as conflicting evidence);
    * a withdraw for every ``(prefix, origin)`` pair that disappeared;
    * one tick closing the day.

    With ``refresh=True`` every live pair instead re-announces the day's
    full origin set every day — the shape of a cooperative daily RIB-dump
    replay, ~2.6M records over the full 1279-day trace — rather than deltas
    only.  Both modes leave a consuming
    :class:`~repro.stream.engine.StreamEngine` holding exactly the day's
    snapshot state at each tick, so daily MOAS counts match the batch
    observer bit for bit (list contents never affect the count).
    """
    previous: Dict[Prefix, FrozenSet[ASN]] = {}
    for day, snapshot in snapshots:
        current = {prefix: frozenset(origins) for prefix, origins in snapshot.items()}
        touched = set(previous) | set(current)
        for prefix in sorted(touched, key=lambda p: p.sort_key):
            old = previous.get(prefix, frozenset())
            new = current.get(prefix, frozenset())
            if new and (refresh or not old):
                # Birth (or cooperative refresh): the members announce the
                # coordinated full list.
                moas = tuple(sorted(new))
                for origin in sorted(new):
                    yield FeedRecord(
                        op=OP_ANNOUNCE,
                        time=float(day),
                        prefix=prefix,
                        origin=origin,
                        moas=moas,
                    )
            else:
                # Unilateral arrivals: no communities, implicit {origin}.
                for origin in sorted(new - old):
                    yield FeedRecord(
                        op=OP_ANNOUNCE,
                        time=float(day),
                        prefix=prefix,
                        origin=origin,
                    )
            for origin in sorted(old - new):
                yield FeedRecord(
                    op=OP_WITHDRAW, time=float(day), prefix=prefix, origin=origin
                )
        yield FeedRecord(op=OP_TICK, time=float(day))
        previous = current


# -- producer 2: live simulator tap ----------------------------------------


class SimulatorTap:
    """Serialises a running speaker's UPDATE traffic as feed records.

    The tap attaches through the speaker's public extension points — an
    import validator that always accepts (it observes every announcement
    surviving import policy) and a withdrawal listener — and reference-counts
    ``(prefix, origin)`` pairs across vantage peers, so the emitted stream
    carries one announce per new origin (or changed MOAS list) and one
    withdraw when the last peer-path to an origin goes away.  Timestamps are
    simulator virtual time, read through the injected ``clock`` (usually
    ``lambda: sim.now``), keeping the tap deterministic.
    """

    def __init__(
        self, sink: Callable[[FeedRecord], None], clock: Callable[[], float]
    ) -> None:
        self._sink = sink
        self._clock = clock
        # (prefix, origin) -> set of peers currently providing the pair.
        self._providers: Dict[Tuple[Prefix, ASN], List[ASN]] = {}
        # (peer, prefix) -> origin that peer last announced.
        self._peer_routes: Dict[Tuple[ASN, Prefix], ASN] = {}
        # (prefix, origin) -> last emitted MOAS list.
        self._last_moas: Dict[Tuple[Prefix, ASN], Tuple[ASN, ...]] = {}
        self.records_emitted = 0

    def attach(self, speaker: BGPSpeaker) -> None:
        """Observe one speaker's imported announcements and withdrawals."""
        speaker.add_import_validator(self._on_announce)
        speaker.add_withdrawal_listener(self._on_withdraw)

    def tick(self) -> None:
        """Emit a period-boundary record at the current virtual time."""
        self._emit(FeedRecord(op=OP_TICK, time=self._clock()))

    def _emit(self, record: FeedRecord) -> None:
        self.records_emitted += 1
        self._sink(record)

    def _on_announce(
        self, peer: ASN, prefix: Prefix, attributes: PathAttributes
    ) -> bool:
        origin = attributes.origin_asn
        moas_list = extract_moas_list(attributes)
        if origin is None or moas_list is None:
            return True  # nothing originated (AS_SET tail); observe only
        moas = tuple(sorted(moas_list.origins))
        self._replace_peer_route(peer, prefix, origin)
        key = (prefix, origin)
        providers = self._providers.setdefault(key, [])
        if peer not in providers:
            providers.append(peer)
        if len(providers) == 1 or self._last_moas.get(key) != moas:
            self._last_moas[key] = moas
            self._emit(
                FeedRecord(
                    op=OP_ANNOUNCE,
                    time=self._clock(),
                    prefix=prefix,
                    origin=origin,
                    moas=moas,
                    peer=peer,
                )
            )
        return True

    def _on_withdraw(self, peer: ASN, prefix: Prefix) -> None:
        self._replace_peer_route(peer, prefix, None)

    def _replace_peer_route(
        self, peer: ASN, prefix: Prefix, new_origin: Optional[ASN]
    ) -> None:
        """Point ``(peer, prefix)`` at ``new_origin``, emitting a withdraw
        when an origin loses its last provider."""
        route_key = (peer, prefix)
        old_origin = self._peer_routes.get(route_key)
        if old_origin == new_origin:
            return
        if old_origin is not None:
            pair = (prefix, old_origin)
            providers = self._providers.get(pair, [])
            if peer in providers:
                providers.remove(peer)
            if not providers:
                self._providers.pop(pair, None)
                self._last_moas.pop(pair, None)
                self._emit(
                    FeedRecord(
                        op=OP_WITHDRAW,
                        time=self._clock(),
                        prefix=prefix,
                        origin=old_origin,
                        peer=peer,
                    )
                )
        if new_origin is None:
            self._peer_routes.pop(route_key, None)
        else:
            self._peer_routes[route_key] = new_origin
