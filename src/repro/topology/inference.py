"""Peering inference from AS paths.

§5.1 of the paper: "we infer BGP peering relations based on the AS Path
attribute in the collected BGP routes.  For example, if a route to a prefix
p has the AS Path 1239 6453 4621, we consider AS 6453 to have two BGP peers,
AS 1239 and AS 4621.  We also mark AS 6453 as a transit AS ...  If an AS
does not appear to be a transit AS in any of the routes, we consider it a
stub AS."

This module reproduces that inference exactly: consecutive ASes on a path
are peers; any AS with a neighbour on *both* sides in some path is transit.
AS_SET segments (from aggregation) are skipped for adjacency purposes —
their internal order is meaningless — matching operational practice.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Sequence, Set, Tuple

from repro.bgp.attributes import AsPath, SegmentType
from repro.net.asn import ASN
from repro.topology.asgraph import ASGraph, ASRole
from repro.topology.routeviews import RouteViewsTable


@dataclass
class InferenceResult:
    """Outcome of peering inference."""

    graph: ASGraph
    transit: FrozenSet[ASN]
    stubs: FrozenSet[ASN]
    paths_used: int = 0
    paths_skipped: int = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"InferenceResult({len(self.graph)} ASes, "
            f"{len(self.transit)} transit, {len(self.stubs)} stub, "
            f"{self.paths_used} paths)"
        )


def _sequence_asns(path: AsPath) -> List[ASN]:
    """The path as a flat ASN list, dropping AS_SET segments and collapsing
    prepending (consecutive repeats of the same ASN)."""
    flat: List[ASN] = []
    for segment in path.segments:
        if segment.kind is not SegmentType.AS_SEQUENCE:
            continue
        for asn in segment.asns:
            if not flat or flat[-1] != asn:
                flat.append(asn)
    return flat


def infer_from_paths(paths: Iterable[AsPath]) -> InferenceResult:
    """Infer the peering graph and transit/stub roles from AS paths."""
    edges: Set[Tuple[ASN, ASN]] = set()
    transit: Set[ASN] = set()
    all_asns: Set[ASN] = set()
    used = 0
    skipped = 0

    for path in paths:
        flat = _sequence_asns(path)
        if len(flat) == 0:
            skipped += 1
            continue
        used += 1
        all_asns.update(flat)
        for left, right in zip(flat, flat[1:]):
            edges.add((min(left, right), max(left, right)))
        # Interior ASes of the path carry traffic between their neighbours.
        for interior in flat[1:-1]:
            transit.add(interior)

    graph = ASGraph()
    for asn in sorted(all_asns):
        graph.add_as(asn, ASRole.TRANSIT if asn in transit else ASRole.STUB)
    for a, b in sorted(edges):
        graph.add_link(a, b)

    stubs = frozenset(all_asns - transit)
    return InferenceResult(
        graph=graph,
        transit=frozenset(transit),
        stubs=stubs,
        paths_used=used,
        paths_skipped=skipped,
    )


def infer_from_table(table: RouteViewsTable) -> InferenceResult:
    """Convenience: inference straight from a parsed table dump."""
    return infer_from_paths(table.all_paths())
