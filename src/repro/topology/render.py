"""Topology rendering: Graphviz DOT and adjacency-list text.

Figure 8 of the paper draws the simulation topologies.  ``to_dot`` emits
standard Graphviz text (render externally with ``dot -Tpng``): transit
ASes as boxes, stubs as circles, so the sampled structure can be eyeballed
against the paper's drawings.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

from repro.net.asn import ASN
from repro.topology.asgraph import ASGraph, ASRole


def to_dot(
    graph: ASGraph,
    name: str = "topology",
    highlight: Iterable[ASN] = (),
    highlight_color: str = "red",
) -> str:
    """Render the AS graph as Graphviz DOT text.

    ``highlight`` marks chosen ASes (e.g. origins or attackers) in colour.
    """
    highlighted = set(highlight)
    lines: List[str] = [f"graph {name} {{"]
    lines.append("  node [fontsize=10];")
    for asn in graph.asns():
        shape = "box" if graph.role(asn) is ASRole.TRANSIT else "ellipse"
        attrs = [f"shape={shape}"]
        if asn in highlighted:
            attrs.append(f"color={highlight_color}")
            attrs.append("penwidth=2")
        lines.append(f'  "{asn}" [{", ".join(attrs)}];')
    for a, b in graph.edges():
        lines.append(f'  "{a}" -- "{b}";')
    lines.append("}")
    return "\n".join(lines) + "\n"


def to_adjacency_text(graph: ASGraph) -> str:
    """A compact plain-text adjacency listing (one AS per line)."""
    lines: List[str] = []
    for asn in graph.asns():
        role = "T" if graph.role(asn) is ASRole.TRANSIT else "S"
        neighbors = " ".join(str(n) for n in graph.neighbors(asn))
        lines.append(f"{asn} [{role}]: {neighbors}")
    return "\n".join(lines) + "\n"
