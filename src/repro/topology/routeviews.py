"""RouteViews-style routing table dumps.

The paper builds its topologies and its MOAS measurements from daily table
dumps of the Oregon RouteViews collector.  We define a plain-text dump
format that carries the same information a ``show ip bgp``-style dump does
for this work: one line per (peer, prefix, AS path), e.g.::

    # routeviews-dump date=1998-04-07 collector=oregon
    192.0.2.0/24 | 6447 | 6447 1239 6453 4621

i.e. ``prefix | peer-AS | AS path`` with the origin AS rightmost.  The
parser tolerates blank lines and ``#`` comments; AS_SET elements are encoded
as ``{1,2,3}``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.bgp.attributes import AsPath, AsPathSegment, SegmentType
from repro.net.addresses import Prefix
from repro.net.asn import ASN


class DumpFormatError(ValueError):
    """Raised on malformed dump text."""


@dataclass(frozen=True)
class RouteViewsEntry:
    """One table row: the view one collector peer gives of one prefix."""

    prefix: Prefix
    peer: ASN
    as_path: AsPath

    @property
    def origin_asns(self) -> FrozenSet[ASN]:
        return self.as_path.origin_asns()


@dataclass
class RouteViewsTable:
    """A full dump: metadata plus entries."""

    date: str = ""
    collector: str = "oregon"
    entries: List[RouteViewsEntry] = field(default_factory=list)

    def add(self, prefix: Prefix, peer: ASN, as_path: AsPath) -> None:
        self.entries.append(RouteViewsEntry(prefix, peer, as_path))

    def prefixes(self) -> List[Prefix]:
        return sorted({e.prefix for e in self.entries}, key=str)

    def entries_for_prefix(self, prefix: Prefix) -> List[RouteViewsEntry]:
        return [e for e in self.entries if e.prefix == prefix]

    def origins_by_prefix(self) -> Dict[Prefix, FrozenSet[ASN]]:
        """Map each prefix to the union of origin ASes seen across peers —
        the raw material of MOAS detection."""
        out: Dict[Prefix, set] = {}
        for entry in self.entries:
            out.setdefault(entry.prefix, set()).update(entry.origin_asns)
        return {p: frozenset(s) for p, s in out.items()}

    def all_paths(self) -> List[AsPath]:
        return [e.as_path for e in self.entries]

    def __len__(self) -> int:
        return len(self.entries)


def _format_as_path(path: AsPath) -> str:
    parts = []
    for segment in path.segments:
        if segment.kind is SegmentType.AS_SEQUENCE:
            parts.extend(str(a) for a in segment.asns)
        else:
            parts.append("{" + ",".join(str(a) for a in segment.asns) + "}")
    return " ".join(parts)


def _parse_as_path(text: str) -> AsPath:
    segments: List[AsPathSegment] = []
    sequence: List[int] = []
    for token in text.split():
        if token.startswith("{"):
            if not token.endswith("}"):
                raise DumpFormatError(f"unterminated AS_SET: {token!r}")
            if sequence:
                segments.append(AsPathSegment(SegmentType.AS_SEQUENCE, sequence))
                sequence = []
            inner = token[1:-1]
            try:
                asns = [int(x) for x in inner.split(",") if x]
            except ValueError:
                raise DumpFormatError(f"bad AS_SET contents: {token!r}")
            segments.append(AsPathSegment(SegmentType.AS_SET, asns))
        else:
            if not token.isdigit():
                raise DumpFormatError(f"bad AS number: {token!r}")
            sequence.append(int(token))
    if sequence:
        segments.append(AsPathSegment(SegmentType.AS_SEQUENCE, sequence))
    if not segments:
        raise DumpFormatError("empty AS path")
    return AsPath(segments)


def render_table_dump(table: RouteViewsTable) -> str:
    """Serialise a table to the dump text format."""
    lines = [f"# routeviews-dump date={table.date} collector={table.collector}"]
    for entry in table.entries:
        lines.append(
            f"{entry.prefix} | {entry.peer} | {_format_as_path(entry.as_path)}"
        )
    return "\n".join(lines) + "\n"


def parse_table_dump(text: str) -> RouteViewsTable:
    """Parse dump text back into a :class:`RouteViewsTable`."""
    table = RouteViewsTable()
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line:
            continue
        if line.startswith("#"):
            for token in line[1:].split():
                if token.startswith("date="):
                    table.date = token[len("date="):]
                elif token.startswith("collector="):
                    table.collector = token[len("collector="):]
            continue
        fields = [f.strip() for f in line.split("|")]
        if len(fields) != 3:
            raise DumpFormatError(f"line {lineno}: expected 3 fields, got {len(fields)}")
        prefix_text, peer_text, path_text = fields
        if not peer_text.isdigit():
            raise DumpFormatError(f"line {lineno}: bad peer AS {peer_text!r}")
        try:
            prefix = Prefix.parse(prefix_text)
        except ValueError as exc:
            raise DumpFormatError(f"line {lineno}: {exc}")
        table.add(prefix, int(peer_text), _parse_as_path(path_text))
    return table
