"""AS-level topology pipeline.

Reproduces the paper's §5.1 methodology end to end:

1. obtain a routing table (we generate synthetic RouteViews-style dumps,
   :mod:`repro.topology.routeviews`);
2. infer BGP peering links and transit/stub roles from AS paths
   (:mod:`repro.topology.inference`);
3. sample x % of the stub ASes, keep their ISP peers, iteratively prune
   transit ASes left with ≤1 peer, and verify connectivity
   (:mod:`repro.topology.sampling`);
4. or generate Internet-like graphs directly
   (:mod:`repro.topology.generators`).
"""

from repro.topology.asgraph import ASGraph, ASRole
from repro.topology.generators import (
    InternetTopologyConfig,
    generate_internet_like,
    generate_paper_topology,
)
from repro.topology.inference import InferenceResult, infer_from_paths, infer_from_table
from repro.topology.routeviews import (
    RouteViewsEntry,
    RouteViewsTable,
    parse_table_dump,
    render_table_dump,
)
from repro.topology.sampling import SamplingError, sample_topology

__all__ = [
    "ASGraph",
    "ASRole",
    "InferenceResult",
    "infer_from_paths",
    "infer_from_table",
    "sample_topology",
    "SamplingError",
    "InternetTopologyConfig",
    "generate_internet_like",
    "generate_paper_topology",
    "RouteViewsEntry",
    "RouteViewsTable",
    "parse_table_dump",
    "render_table_dump",
]
