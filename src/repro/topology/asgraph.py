"""The AS-level graph.

A thin, validated wrapper around an undirected :mod:`networkx` graph whose
nodes are AS numbers and whose node attribute ``role`` marks each AS as
transit or stub — the distinction at the centre of the paper's sampling
procedure and attacker-placement discussion.
"""

from __future__ import annotations

import enum
import hashlib
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Set, Tuple

import networkx as nx

from repro.net.asn import ASN, validate_asn


class ASRole(enum.Enum):
    TRANSIT = "transit"
    STUB = "stub"


class ASGraph:
    """Undirected AS-level peering graph with transit/stub roles."""

    def __init__(self) -> None:
        self._graph = nx.Graph()
        # Content-digest cache, invalidated by bumping the mutation counter
        # in every mutator below.
        self._mutations = 0
        self._digest: Optional[str] = None
        self._digest_mutations = -1

    # -- construction ------------------------------------------------------

    @classmethod
    def from_edges(
        cls,
        edges: Iterable[Tuple[ASN, ASN]],
        transit: Iterable[ASN] = (),
    ) -> "ASGraph":
        """Build a graph from an edge list; ASes in ``transit`` get the
        transit role, everyone else is a stub."""
        graph = cls()
        transit_set = set(transit)
        for a, b in edges:
            graph.add_link(a, b)
        for asn in graph.asns():
            graph.set_role(
                asn, ASRole.TRANSIT if asn in transit_set else ASRole.STUB
            )
        return graph

    def add_as(self, asn: ASN, role: ASRole = ASRole.STUB) -> None:
        validate_asn(asn)
        self._graph.add_node(asn, role=role)
        self._mutations += 1

    def add_link(self, a: ASN, b: ASN) -> None:
        validate_asn(a)
        validate_asn(b)
        if a == b:
            raise ValueError(f"self-loop at AS{a}")
        for asn in (a, b):
            if asn not in self._graph:
                self._graph.add_node(asn, role=ASRole.STUB)
        self._graph.add_edge(a, b)
        self._mutations += 1

    def remove_as(self, asn: ASN) -> None:
        if asn not in self._graph:
            raise KeyError(f"AS{asn} not in graph")
        self._graph.remove_node(asn)
        self._mutations += 1

    def set_role(self, asn: ASN, role: ASRole) -> None:
        if asn not in self._graph:
            raise KeyError(f"AS{asn} not in graph")
        self._graph.nodes[asn]["role"] = role
        self._mutations += 1

    def content_digest(self) -> str:
        """A stable SHA-256 over the sorted node/role and edge sets.

        Two graphs with identical ASes, roles and links share a digest no
        matter how they were constructed, which is what makes the digest
        usable as a warm-start cache key and an executor dedupe key.  The
        digest is cached per instance and recomputed after any mutation.
        """
        if self._digest is not None and self._digest_mutations == self._mutations:
            return self._digest
        hasher = hashlib.sha256()
        for asn in self.asns():
            hasher.update(f"n {asn} {self.role(asn).value}\n".encode("ascii"))
        for a, b in self.edges():
            hasher.update(f"e {a} {b}\n".encode("ascii"))
        self._digest = hasher.hexdigest()
        self._digest_mutations = self._mutations
        return self._digest

    # -- queries -------------------------------------------------------------

    def __contains__(self, asn: ASN) -> bool:
        return asn in self._graph

    def __len__(self) -> int:
        return self._graph.number_of_nodes()

    def asns(self) -> List[ASN]:
        return sorted(self._graph.nodes)

    def edges(self) -> List[Tuple[ASN, ASN]]:
        return sorted((min(a, b), max(a, b)) for a, b in self._graph.edges)

    def num_links(self) -> int:
        return self._graph.number_of_edges()

    def has_link(self, a: ASN, b: ASN) -> bool:
        return self._graph.has_edge(a, b)

    def neighbors(self, asn: ASN) -> List[ASN]:
        if asn not in self._graph:
            raise KeyError(f"AS{asn} not in graph")
        return sorted(self._graph.neighbors(asn))

    def degree(self, asn: ASN) -> int:
        if asn not in self._graph:
            raise KeyError(f"AS{asn} not in graph")
        return self._graph.degree(asn)

    def role(self, asn: ASN) -> ASRole:
        if asn not in self._graph:
            raise KeyError(f"AS{asn} not in graph")
        return self._graph.nodes[asn].get("role", ASRole.STUB)

    def transit_asns(self) -> List[ASN]:
        return sorted(
            asn for asn in self._graph.nodes if self.role(asn) is ASRole.TRANSIT
        )

    def stub_asns(self) -> List[ASN]:
        return sorted(
            asn for asn in self._graph.nodes if self.role(asn) is ASRole.STUB
        )

    def is_connected(self) -> bool:
        if len(self) == 0:
            return True
        return nx.is_connected(self._graph)

    def connected_components(self) -> List[FrozenSet[ASN]]:
        return [frozenset(c) for c in nx.connected_components(self._graph)]

    def largest_component(self) -> FrozenSet[ASN]:
        components = self.connected_components()
        if not components:
            return frozenset()
        return max(components, key=len)

    def subgraph(self, asns: Iterable[ASN]) -> "ASGraph":
        """A new ASGraph induced on ``asns`` (roles preserved)."""
        keep = set(asns)
        out = ASGraph()
        # Sorted so node insertion order (which leaks into networkx's
        # component/adjacency iteration) never depends on set hash order.
        for asn in sorted(keep):
            if asn not in self._graph:
                raise KeyError(f"AS{asn} not in graph")
            out.add_as(asn, self.role(asn))
        for a, b in self._graph.edges:
            if a in keep and b in keep:
                out.add_link(a, b)
        return out

    def copy(self) -> "ASGraph":
        return self.subgraph(self.asns())

    def shortest_path_length(self, a: ASN, b: ASN) -> int:
        return nx.shortest_path_length(self._graph, a, b)

    def average_degree(self) -> float:
        if len(self) == 0:
            return 0.0
        return 2.0 * self.num_links() / len(self)

    def degree_histogram(self) -> Dict[int, int]:
        hist: Dict[int, int] = {}
        for asn in self._graph.nodes:
            degree = self._graph.degree(asn)
            hist[degree] = hist.get(degree, 0) + 1
        return hist

    def to_networkx(self) -> nx.Graph:
        """A copy as a plain networkx graph (for analysis/plotting)."""
        return self._graph.copy()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ASGraph({len(self)} ASes, {self.num_links()} links, "
            f"{len(self.transit_asns())} transit)"
        )
