"""The paper's topology sampling procedure (§5.1).

Given a full inferred AS graph:

1. randomly select ``x`` % of the stub ASes;
2. construct the subgraph containing those stubs **and their ISP (transit)
   peers**, "with the peering relations among all the selected ASes
   completely preserved";
3. if a transit AS has ≤1 peer left after the initial selection, prune it —
   iteratively, since each removal can strand another transit AS;
4. finally verify the topology is a connected graph.

The iteration-to-fixpoint in step 3 and the connectivity check in step 4
are exactly the paper's words.  Stub ASes are exempt from pruning (a stub
with one provider is normal); a disconnected result raises
:class:`SamplingError` so callers can retry with a different seed, which is
what the experiment harness does.
"""

from __future__ import annotations

import random
from typing import Optional, Set

from repro.net.asn import ASN
from repro.topology.asgraph import ASGraph, ASRole


class SamplingError(RuntimeError):
    """Raised when a sample cannot satisfy the paper's constraints."""


def _prune_weak_transit(graph: ASGraph) -> None:
    """Iteratively remove transit ASes with fewer than two remaining peers."""
    changed = True
    while changed:
        changed = False
        for asn in graph.transit_asns():
            if graph.degree(asn) <= 1:
                graph.remove_as(asn)
                changed = True


def _drop_isolated_stubs(graph: ASGraph) -> None:
    """Remove stubs stranded with no peers by transit pruning."""
    for asn in graph.stub_asns():
        if graph.degree(asn) == 0:
            graph.remove_as(asn)


def sample_topology(
    full_graph: ASGraph,
    stub_fraction: float,
    rng: random.Random,
    max_attempts: int = 50,
    target_size: Optional[int] = None,
) -> ASGraph:
    """Sample a simulation topology per the paper's procedure.

    Parameters
    ----------
    full_graph:
        The inferred Internet-scale AS graph.
    stub_fraction:
        Fraction (0, 1] of stub ASes to select.
    rng:
        Source of randomness (callers pass a named stream).
    max_attempts:
        How many times to re-draw if a sample comes out disconnected or
        empty before giving up.
    target_size:
        Optional: keep re-drawing until the sampled topology has at least
        this many ASes (used to hit the paper's 25/46/63 sizes exactly via
        trimming by the caller).
    """
    if not 0 < stub_fraction <= 1:
        raise ValueError(f"stub_fraction must be in (0, 1], got {stub_fraction}")
    stubs = full_graph.stub_asns()
    if not stubs:
        raise SamplingError("full graph has no stub ASes to sample")

    sample_size = max(1, round(stub_fraction * len(stubs)))

    last_error = "no attempts made"
    for _ in range(max_attempts):
        chosen_stubs = set(rng.sample(stubs, sample_size))
        keep: Set[ASN] = set(chosen_stubs)
        # "...containing these stub ASes and their ISP peers"
        for stub in sorted(chosen_stubs):
            for neighbor in full_graph.neighbors(stub):
                if full_graph.role(neighbor) is ASRole.TRANSIT:
                    keep.add(neighbor)

        candidate = full_graph.subgraph(keep)
        _prune_weak_transit(candidate)
        _drop_isolated_stubs(candidate)

        if len(candidate) < 2:
            last_error = "sample collapsed under pruning"
            continue
        if not candidate.is_connected():
            # Keep the largest component if it retains most of the sample;
            # otherwise re-draw.  The paper "inspects the topology to make
            # sure that it is a connected graph".
            component = candidate.largest_component()
            if len(component) >= 0.8 * len(candidate):
                candidate = candidate.subgraph(component)
                _prune_weak_transit(candidate)
                _drop_isolated_stubs(candidate)
                if len(candidate) < 2 or not candidate.is_connected():
                    last_error = "largest component unusable"
                    continue
            else:
                last_error = "sample disconnected"
                continue
        if target_size is not None and len(candidate) < target_size:
            last_error = (
                f"sample too small: {len(candidate)} < target {target_size}"
            )
            continue
        return candidate

    raise SamplingError(
        f"failed to sample a valid topology after {max_attempts} attempts "
        f"({last_error})"
    )
