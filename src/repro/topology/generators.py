"""Synthetic Internet-like AS topology generation.

The paper starts from the real (RouteViews-inferred) AS graph.  We have no
network access, so we generate a graph with the same structural signature
instead — a densely meshed transit core with preferential attachment (the
Internet's AS graph is famously heavy-tailed; cf. the paper's citation of
Huston's growth analysis) and multi-homed stubs at the edge — and then run
the paper's own sampling procedure over it to obtain the 25/46/63-AS
simulation topologies.

The generator is deliberately parameterised so tests can probe invariants
(connectivity, role consistency, degree shape) over a wide config space.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.net.asn import ASN
from repro.topology.asgraph import ASGraph, ASRole
from repro.topology.sampling import SamplingError, sample_topology


@dataclass
class InternetTopologyConfig:
    """Parameters of the synthetic Internet graph.

    Defaults produce a ~1000-AS graph that is stub-heavy with a small,
    densely meshed transit core — the composition a RouteViews-derived
    sample has once the paper's pruning keeps only transit ASes that retain
    two or more peers.
    """

    n_transit: int = 12
    n_stub: int = 988
    tier1_clique: int = 8
    transit_attach_min: int = 2
    transit_attach_max: int = 5
    stub_single_homed_fraction: float = 0.15
    stub_max_providers: int = 4
    first_transit_asn: int = 1
    first_stub_asn: int = 1000

    def validate(self) -> None:
        if self.n_transit < 2:
            raise ValueError("need at least 2 transit ASes")
        if self.tier1_clique < 2 or self.tier1_clique > self.n_transit:
            raise ValueError("tier1_clique must be in [2, n_transit]")
        if self.transit_attach_min < 1:
            raise ValueError("transit_attach_min must be >= 1")
        if self.transit_attach_max < self.transit_attach_min:
            raise ValueError("transit_attach_max < transit_attach_min")
        if not 0 <= self.stub_single_homed_fraction <= 1:
            raise ValueError("stub_single_homed_fraction must be in [0, 1]")
        if self.stub_max_providers < 1:
            raise ValueError("stub_max_providers must be >= 1")
        if self.n_stub < 0:
            raise ValueError("n_stub must be non-negative")


def generate_internet_like(
    config: InternetTopologyConfig, rng: random.Random
) -> ASGraph:
    """Generate a connected Internet-like AS graph.

    Construction:

    1. ``tier1_clique`` transit ASes form a full mesh (the "tier-1" core);
    2. each remaining transit AS attaches to 2-4 existing transit ASes by
       preferential attachment (degree-proportional choice), yielding the
       heavy-tailed core degree distribution;
    3. each stub attaches to 1-3 transit providers, degree-proportionally,
       with ~65 % single-homed (matching the multi-homing rates the MOAS
       measurements in §3 imply).
    """
    config.validate()
    graph = ASGraph()

    transit_asns: List[ASN] = [
        config.first_transit_asn + i for i in range(config.n_transit)
    ]
    stub_asns: List[ASN] = [config.first_stub_asn + i for i in range(config.n_stub)]
    overlap = set(transit_asns) & set(stub_asns)
    if overlap:
        raise ValueError(f"transit and stub ASN ranges overlap: {sorted(overlap)[:5]}")

    for asn in transit_asns:
        graph.add_as(asn, ASRole.TRANSIT)

    # 1. Tier-1 clique.
    core = transit_asns[: config.tier1_clique]
    for i, a in enumerate(core):
        for b in core[i + 1:]:
            graph.add_link(a, b)

    # Repeated-nodes list for degree-proportional (preferential) choice.
    attachment_pool: List[ASN] = []
    for asn in core:
        attachment_pool.extend([asn] * graph.degree(asn))

    # 2. Remaining transit attaches preferentially.
    for asn in transit_asns[config.tier1_clique:]:
        n_links = rng.randint(config.transit_attach_min, config.transit_attach_max)
        targets: set = set()
        while len(targets) < n_links and len(targets) < len(attachment_pool):
            targets.add(rng.choice(attachment_pool))
        for target in sorted(targets):
            graph.add_link(asn, target)
            attachment_pool.append(target)
        attachment_pool.extend([asn] * len(targets))

    # 3. Stubs attach to transit providers.
    for asn in stub_asns:
        graph.add_as(asn, ASRole.STUB)
        if rng.random() < config.stub_single_homed_fraction:
            n_providers = 1
        else:
            n_providers = rng.randint(2, config.stub_max_providers)
        providers: set = set()
        while len(providers) < n_providers:
            providers.add(rng.choice(attachment_pool))
        for provider in sorted(providers):
            graph.add_link(asn, provider)
            attachment_pool.append(provider)

    assert graph.is_connected(), "generator invariant: graph must be connected"
    return graph


def _removable_transit(work: ASGraph) -> List[ASN]:
    """Transit ASes whose removal keeps the graph connected (and keeps all
    stubs attached): non-articulation transit nodes with no stub that depends
    on them alone."""
    import networkx as nx

    g = work.to_networkx()
    articulation = set(nx.articulation_points(g))
    candidates = []
    for asn in work.transit_asns():
        if asn in articulation:
            continue
        # A stub whose only provider this is would be stranded.
        if any(
            work.role(n) is ASRole.STUB and work.degree(n) == 1
            for n in work.neighbors(asn)
        ):
            continue
        candidates.append(asn)
    return candidates


def _trim_to_size(graph: ASGraph, target: int, rng: random.Random) -> Optional[ASGraph]:
    """Remove random ASes until exactly ``target`` remain, preserving the
    sample's stub/transit composition and connectivity.

    Returns ``None`` if pruning cascades overshoot below the target.
    """
    from repro.topology.sampling import _drop_isolated_stubs, _prune_weak_transit

    work = graph.copy()
    if len(work) < target:
        return None
    stub_share = len(work.stub_asns()) / len(work)

    while len(work) > target:
        n_total = len(work)
        stubs = work.stub_asns()
        current_share = len(stubs) / n_total if n_total else 0.0
        prefer_stub = current_share > stub_share

        victim: Optional[ASN] = None
        if prefer_stub and stubs:
            # Prefer stubs whose removal cannot cascade into transit pruning.
            safe = [
                s
                for s in stubs
                if all(
                    work.degree(n) >= 3
                    for n in work.neighbors(s)
                    if work.role(n) is ASRole.TRANSIT
                )
            ]
            victim = rng.choice(safe if safe else stubs)
        else:
            removable = _removable_transit(work)
            if removable:
                victim = rng.choice(removable)
            elif stubs:
                victim = rng.choice(stubs)
            else:
                return None

        work.remove_as(victim)
        _prune_weak_transit(work)
        _drop_isolated_stubs(work)
        if len(work) < target:
            return None
    if len(work) != target or not work.is_connected():
        return None
    return work


def _interpolate(n: float, lo_n: float, hi_n: float, lo_v: float, hi_v: float) -> float:
    if n <= lo_n:
        return lo_v
    if n >= hi_n:
        return hi_v
    fraction = (n - lo_n) / (hi_n - lo_n)
    return lo_v + fraction * (hi_v - lo_v)


def _piecewise(n: float, anchors: Sequence[Tuple[float, float]]) -> float:
    """Piecewise-linear interpolation over sorted ``(n, value)`` anchors."""
    for (lo_n, lo_v), (hi_n, hi_v) in zip(anchors, anchors[1:]):
        if n <= hi_n:
            return _interpolate(n, lo_n, hi_n, lo_v, hi_v)
    return anchors[-1][1]


def config_for_size(n_ases: int) -> InternetTopologyConfig:
    """Size-matched generator config for the paper's sampled topologies.

    The paper's Figure 8 shows its 25-AS sample as visibly sparse and its
    63-AS sample as a rich mesh — small RouteViews samples capture little
    of the Internet's path redundancy, large ones capture much more.  The
    interconnection richness therefore scales with the requested sample
    size, which is what makes Experiment 2's "larger topologies are more
    robust" observation reproducible.  Beyond the paper's 63-AS range the
    richness keeps growing (used by the scaling extension experiment).
    """
    return InternetTopologyConfig(
        n_transit=25,
        n_stub=975,
        tier1_clique=round(_piecewise(n_ases, [(25, 4), (63, 8), (150, 12)])),
        transit_attach_min=2,
        transit_attach_max=round(_piecewise(n_ases, [(25, 3), (63, 5), (150, 7)])),
        stub_single_homed_fraction=_piecewise(
            n_ases, [(25, 0.6), (63, 0.2), (150, 0.08)]
        ),
        stub_max_providers=round(_piecewise(n_ases, [(25, 2), (63, 4), (150, 5)])),
    )


def scale_config_for_size(n_ases: int) -> InternetTopologyConfig:
    """Generator config for Internet-scale benchmark graphs (2k/5k/10k AS).

    :func:`config_for_size` parameterises the *full* synthetic Internet the
    paper-sized topologies are sampled from; this one sizes the generated
    graph itself — ``n_transit + n_stub == n_ases`` exactly, no sampling or
    trimming pass.  Composition follows the same structural signature:
    a few percent of ASes are transit with a densely meshed tier-1 core,
    the rest are mostly multi-homed stubs.
    """
    if n_ases < 50:
        raise ValueError(
            f"scale topologies start at 50 ASes, got {n_ases} "
            "(use generate_paper_topology for the paper's sample sizes)"
        )
    n_transit = max(12, round(n_ases * 0.03))
    return InternetTopologyConfig(
        n_transit=n_transit,
        n_stub=n_ases - n_transit,
        tier1_clique=max(8, min(16, n_transit // 20)) if n_transit >= 8 else n_transit,
        transit_attach_min=2,
        transit_attach_max=5,
        stub_single_homed_fraction=0.35,
        stub_max_providers=3,
        first_transit_asn=1,
        first_stub_asn=n_transit + 1,
    )


def generate_scale_topology(
    n_ases: int,
    seed: int = 0,
    config: Optional[InternetTopologyConfig] = None,
) -> ASGraph:
    """Generate an Internet-like graph of exactly ``n_ases`` ASes directly.

    The whole-graph path for the scaling benchmark and the ROADMAP's
    source-graph study: one :func:`generate_internet_like` pass, no
    sampling.  Deterministic in ``(n_ases, seed, config)``.
    """
    config = config or scale_config_for_size(n_ases)
    config.validate()
    if config.n_transit + config.n_stub != n_ases:
        raise ValueError(
            f"config produces {config.n_transit + config.n_stub} ASes, "
            f"but {n_ases} were requested"
        )
    return generate_internet_like(config, random.Random(seed))


def generate_paper_topology(
    n_ases: int,
    seed: int = 0,
    config: Optional[InternetTopologyConfig] = None,
    max_attempts: int = 40,
) -> ASGraph:
    """Produce a connected topology of exactly ``n_ases`` ASes following the
    paper's methodology: full Internet-like graph → stub sampling → pruning
    → trim to size.

    Used for the 25-, 46- and 63-AS topologies of Figures 8-11.  Without an
    explicit ``config``, a size-matched one is used (:func:`config_for_size`).
    """
    if n_ases < 5:
        raise ValueError(f"topology size must be at least 5, got {n_ases}")
    config = config or config_for_size(n_ases)
    rng = random.Random(seed)
    full_graph = generate_internet_like(config, rng)

    # Each sampled stub pulls in its transit providers, roughly doubling the
    # node count, so start from about half the target and adapt: heavy
    # trimming would erode stub multi-homing (removing a provider of a
    # dual-homed stub leaves it single-homed), so we want the sample to land
    # only slightly above the target.
    stub_count = len(full_graph.stub_asns())
    fraction = min(1.0, max(2.0 / stub_count, (n_ases * 0.5) / stub_count))

    for attempt in range(max_attempts):
        attempt_rng = random.Random(seed * 1_000_003 + attempt)
        try:
            sampled = sample_topology(
                full_graph, fraction, attempt_rng, target_size=n_ases
            )
        except SamplingError:
            fraction = min(1.0, fraction * 1.3)
            continue
        if len(sampled) > 1.35 * n_ases:
            fraction = max(2.0 / stub_count, fraction * 0.8)
            continue
        trimmed = _trim_to_size(sampled, n_ases, attempt_rng)
        if trimmed is not None:
            return trimmed
        fraction = min(1.0, fraction * 1.1)

    raise SamplingError(
        f"could not produce a {n_ases}-AS topology in {max_attempts} attempts"
    )
