"""repro — a reproduction of "Detection of Invalid Routing Announcement in
the Internet" (Zhao et al., DSN 2002).

The package implements, from scratch:

* a deterministic discrete-event BGP-4 simulator (:mod:`repro.eventsim`,
  :mod:`repro.net`, :mod:`repro.bgp`);
* the AS-topology pipeline: RouteViews-style dumps, AS-path peering
  inference and the paper's sampling procedure (:mod:`repro.topology`);
* the §3 MOAS measurement study (:mod:`repro.measurement`);
* **the paper's contribution**: the MOAS-list scheme — community-attribute
  encoding, consistency checking, alarms, deployment models and DNS-backed
  origin verification (:mod:`repro.core`, :mod:`repro.dnssub`);
* attacker and fault models (:mod:`repro.attack`);
* the §5 experiments reproducing Figures 9, 10 and 11
  (:mod:`repro.experiments`).

Quick start::

    from repro import (
        ASGraph, Network, Prefix, DeploymentPlan, GroundTruthOracle,
        PrefixOriginRegistry, moas_communities,
    )

    graph = ASGraph.from_edges([(1, 3), (2, 3), (3, 4)], transit=[3])
    prefix = Prefix.parse("10.0.0.0/16")
    registry = PrefixOriginRegistry()
    registry.register(prefix, [1, 2])

    network = Network(graph)
    DeploymentPlan.full(graph.asns()).apply(
        network, GroundTruthOracle(registry)
    )
    network.establish_sessions()
    network.originate(1, prefix, communities=moas_communities([1, 2]))
    network.originate(2, prefix, communities=moas_communities([1, 2]))
    network.run_to_convergence()
"""

from repro.bgp.network import Network
from repro.bgp.speaker import BGPSpeaker, SpeakerConfig
from repro.core import (
    MLVAL,
    Alarm,
    AlarmKind,
    AlarmLog,
    CheckerMode,
    DeploymentPlan,
    DnsOracle,
    GroundTruthOracle,
    MoasChecker,
    MoasList,
    OfflineMonitor,
    PrefixOriginRegistry,
    extract_moas_list,
    moas_communities,
)
from repro.eventsim import RandomStreams, Simulator
from repro.net import ASN, Link, Prefix
from repro.topology import ASGraph, ASRole, generate_paper_topology

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "Network",
    "BGPSpeaker",
    "SpeakerConfig",
    "Simulator",
    "RandomStreams",
    "Prefix",
    "ASN",
    "Link",
    "ASGraph",
    "ASRole",
    "generate_paper_topology",
    "MLVAL",
    "MoasList",
    "moas_communities",
    "extract_moas_list",
    "MoasChecker",
    "CheckerMode",
    "Alarm",
    "AlarmKind",
    "AlarmLog",
    "DeploymentPlan",
    "PrefixOriginRegistry",
    "GroundTruthOracle",
    "DnsOracle",
    "OfflineMonitor",
]
