"""Network substrate: IPv4 prefixes, AS numbers and point-to-point links."""

from repro.net.addresses import Prefix, PrefixError, aggregate_adjacent, covers
from repro.net.asn import (
    ASN,
    PRIVATE_AS_MAX,
    PRIVATE_AS_MIN,
    AsnError,
    is_private_asn,
    validate_asn,
)
from repro.net.link import Link, LinkState

__all__ = [
    "Prefix",
    "PrefixError",
    "aggregate_adjacent",
    "covers",
    "ASN",
    "AsnError",
    "PRIVATE_AS_MIN",
    "PRIVATE_AS_MAX",
    "is_private_asn",
    "validate_asn",
    "Link",
    "LinkState",
]
