"""Autonomous System numbers.

At the time of the paper AS numbers were 16-bit values; the private range
64512-65534 is significant because the paper's §3.2 discusses *AS number
Substitution on Egress* (ASE): organisations peering with a private ASN whose
providers strip it, producing valid MOAS.  We model ASNs as plain ints with
validation helpers rather than a wrapper class — they key dictionaries on
the hottest paths in the simulator.
"""

from __future__ import annotations

from typing import Iterable, List

ASN = int

AS_MIN = 1
AS_MAX = 65535
PRIVATE_AS_MIN = 64512
PRIVATE_AS_MAX = 65534
AS_TRANS_RESERVED = 23456  # reserved by RFC 4893 for 4-byte AS transition


class AsnError(ValueError):
    """Raised for out-of-range or otherwise invalid AS numbers."""


def validate_asn(asn: int) -> ASN:
    """Return ``asn`` if it is a legal 16-bit AS number, else raise."""
    if not isinstance(asn, int) or isinstance(asn, bool):
        raise AsnError(f"AS number must be an int, got {type(asn).__name__}")
    if not AS_MIN <= asn <= AS_MAX:
        raise AsnError(f"AS number out of range [{AS_MIN}, {AS_MAX}]: {asn}")
    return asn


def is_private_asn(asn: int) -> bool:
    """True for ASNs in the RFC 1930 / RFC 6996 private range."""
    return PRIVATE_AS_MIN <= asn <= PRIVATE_AS_MAX


def strip_private_asns(path: Iterable[int]) -> List[int]:
    """Remove private ASNs from an AS path.

    This is what a provider does on egress when a customer peers with a
    private ASN (the paper's ASE scenario): the private number disappears
    from the announcement and the provider itself shows up as origin.
    """
    return [asn for asn in path if not is_private_asn(asn)]
