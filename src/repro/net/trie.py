"""A binary prefix trie (radix tree) for longest-match lookups.

Forwarding tables answer "which installed prefix most specifically covers
this destination?" — the operation routers do per packet.  The naive
linear scan in :func:`repro.net.addresses.covers` is O(n); this trie does
O(32) per lookup regardless of table size, the textbook structure behind
real FIBs (and the reason de-aggregation faults are so effective: a
more-specific entry always wins the descent).

Values are arbitrary; the routing layer stores RIB entries.
"""

from __future__ import annotations

from typing import Generic, Iterator, List, Optional, Tuple, TypeVar

from repro.net.addresses import Prefix, PrefixError

V = TypeVar("V")


class _Node(Generic[V]):
    __slots__ = ("children", "value", "has_value")

    def __init__(self) -> None:
        self.children: List[Optional["_Node[V]"]] = [None, None]
        self.value: Optional[V] = None
        self.has_value = False


class PrefixTrie(Generic[V]):
    """Maps prefixes to values with longest-prefix-match lookup."""

    def __init__(self) -> None:
        self._root: _Node[V] = _Node()
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def __bool__(self) -> bool:
        return self._size > 0

    @staticmethod
    def _bits(prefix: Prefix) -> Iterator[int]:
        for position in range(prefix.length):
            yield (prefix.network >> (31 - position)) & 1

    # -- mutation ----------------------------------------------------------

    def insert(self, prefix: Prefix, value: V) -> Optional[V]:
        """Set ``prefix`` → ``value``; returns the value it replaced."""
        node = self._root
        for bit in self._bits(prefix):
            child = node.children[bit]
            if child is None:
                child = _Node()
                node.children[bit] = child
            node = child
        previous = node.value if node.has_value else None
        if not node.has_value:
            self._size += 1
        node.value = value
        node.has_value = True
        return previous

    def remove(self, prefix: Prefix) -> Optional[V]:
        """Delete ``prefix``; returns its value, or None if absent.

        Emptied branches are pruned so the trie does not leak nodes under
        churn (route flaps insert and remove constantly).
        """
        path: List[Tuple[_Node[V], int]] = []
        node = self._root
        for bit in self._bits(prefix):
            child = node.children[bit]
            if child is None:
                return None
            path.append((node, bit))
            node = child
        if not node.has_value:
            return None
        value = node.value
        node.value = None
        node.has_value = False
        self._size -= 1
        # Prune upward.
        for parent, bit in reversed(path):
            child = parent.children[bit]
            assert child is not None
            if child.has_value or any(child.children):
                break
            parent.children[bit] = None
        return value

    def clear(self) -> None:
        self._root = _Node()
        self._size = 0

    # -- lookup ---------------------------------------------------------------

    def exact(self, prefix: Prefix) -> Optional[V]:
        node = self._root
        for bit in self._bits(prefix):
            child = node.children[bit]
            if child is None:
                return None
            node = child
        return node.value if node.has_value else None

    def longest_match(self, address: int) -> Optional[Tuple[Prefix, V]]:
        """The most specific entry covering ``address``."""
        if not 0 <= address <= (1 << 32) - 1:
            raise PrefixError(f"address out of range: {address}")
        best: Optional[Tuple[int, V]] = None  # (depth, value)
        node = self._root
        if node.has_value:
            best = (0, node.value)  # the default route, if present
        for position in range(32):
            bit = (address >> (31 - position)) & 1
            child = node.children[bit]
            if child is None:
                break
            node = child
            if node.has_value:
                best = (position + 1, node.value)
        if best is None:
            return None
        depth, value = best
        mask = ((1 << depth) - 1) << (32 - depth) if depth else 0
        return Prefix(address & mask, depth), value

    def covering(self, prefix: Prefix) -> Optional[Tuple[Prefix, V]]:
        """The most specific entry covering all of ``prefix`` (itself
        included)."""
        best: Optional[Tuple[int, V]] = None
        node = self._root
        if node.has_value:
            best = (0, node.value)
        depth = 0
        for bit in self._bits(prefix):
            child = node.children[bit]
            if child is None:
                break
            node = child
            depth += 1
            if node.has_value:
                best = (depth, node.value)
        if best is None:
            return None
        found_depth, value = best
        mask = ((1 << found_depth) - 1) << (32 - found_depth) if found_depth else 0
        return Prefix(prefix.network & mask, found_depth), value

    # -- iteration --------------------------------------------------------------

    def items(self) -> Iterator[Tuple[Prefix, V]]:
        """All (prefix, value) pairs in network/length order."""

        def walk(node: _Node[V], network: int, depth: int) -> Iterator[Tuple[Prefix, V]]:
            if node.has_value:
                yield Prefix(network, depth), node.value
            for bit in (0, 1):
                child = node.children[bit]
                if child is not None:
                    child_network = network | (bit << (31 - depth))
                    yield from walk(child, child_network, depth + 1)

        yield from walk(self._root, 0, 0)

    def prefixes(self) -> Iterator[Prefix]:
        for prefix, _ in self.items():
            yield prefix
